//! Theory cross-check: measured success rates vs the exact Binomial
//! prediction and the Chernoff lower bound (Theorem 3.1).
//!
//! A reproduction can overfit to itself; this experiment can't. For each
//! policy and frequency it reports, side by side: the success rate
//! *measured* by constructing indexes, the *exact* probability computed
//! from the Binomial law, and Theorem 3.1's analytic lower bound. The
//! three must agree (measured ≈ exact ≥ bound ≥ γ for the Chernoff
//! policy).

use crate::report::{f3, Table};
use eppi_core::analysis::{chernoff_lower_bound, exact_success_probability};
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::Epsilon;
use eppi_core::policy::{BetaPolicy, PolicyKind};
use eppi_core::privacy::success_ratio;
use eppi_workload::collections::{fixed_epsilons, pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the theory cross-check.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryConfig {
    /// Number of providers.
    pub providers: usize,
    /// Owners per cohort (sample size of the measured rate).
    pub cohort: usize,
    /// ε for every owner.
    pub epsilon: f64,
    /// Chernoff target γ.
    pub gamma: f64,
    /// Identity frequencies checked.
    pub frequencies: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl TheoryConfig {
    /// Default: 5,000 providers, 200-owner cohorts.
    pub fn paper() -> Self {
        TheoryConfig {
            providers: 5000,
            cohort: 200,
            epsilon: 0.5,
            gamma: 0.9,
            frequencies: vec![10, 50, 250],
            seed: 0x7e0,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        TheoryConfig {
            providers: 600,
            cohort: 80,
            epsilon: 0.5,
            gamma: 0.9,
            frequencies: vec![6, 30],
            seed: 0x7e0,
        }
    }
}

/// Runs the cross-check for the basic and Chernoff policies.
pub fn theory_check(cfg: &TheoryConfig) -> Table {
    let mut table = Table::new(
        format!(
            "Theory check — measured vs exact vs Theorem 3.1 (m={}, ε={}, γ={})",
            cfg.providers, cfg.epsilon, cfg.gamma
        ),
        vec![
            "policy".into(),
            "frequency".into(),
            "measured".into(),
            "exact".into(),
            "chernoff bound".into(),
        ],
    );
    let eps = Epsilon::saturating(cfg.epsilon);
    let policies = [PolicyKind::Basic, PolicyKind::Chernoff { gamma: cfg.gamma }];
    for policy in policies {
        for &freq in &cfg.frequencies {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (freq as u64) << 8);
            let matrix = pinned_cohorts(
                cfg.providers,
                &[Cohort {
                    owners: cfg.cohort,
                    frequency: freq,
                }],
                &mut rng,
            );
            let epsilons = fixed_epsilons(cfg.cohort, eps);
            let built = construct(
                &matrix,
                &epsilons,
                ConstructionConfig {
                    policy,
                    mixing: true,
                },
                &mut rng,
            )
            .expect("construction");
            let measured = success_ratio(&matrix, &built.index, &epsilons, true);

            let beta = policy.beta(freq as f64 / cfg.providers as f64, eps, cfg.providers);
            let exact = exact_success_probability(cfg.providers as u64, freq as u64, eps, beta);
            let bound = chernoff_lower_bound(cfg.providers as u64, freq as u64, eps, beta);
            table.push_row(vec![
                policy.name().into(),
                freq.to_string(),
                f3(measured),
                f3(exact),
                f3(bound),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tracks_exact_prediction() {
        let cfg = TheoryConfig::quick();
        let t = theory_check(&cfg);
        for row in &t.rows {
            let measured: f64 = row[2].parse().unwrap();
            let exact: f64 = row[3].parse().unwrap();
            let bound: f64 = row[4].parse().unwrap();
            // Sampling noise over an 80-owner cohort: generous tolerance.
            assert!(
                (measured - exact).abs() < 0.15,
                "measured {measured} far from exact {exact}: {row:?}"
            );
            assert!(bound <= exact + 1e-9, "bound above exact: {row:?}");
        }
        // Chernoff rows: exact ≥ γ.
        for row in t.rows.iter().filter(|r| r[0] == "chernoff") {
            let exact: f64 = row[3].parse().unwrap();
            assert!(exact >= cfg.gamma, "chernoff exact {exact} < γ: {row:?}");
        }
    }
}
