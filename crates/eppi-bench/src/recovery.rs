//! Crash-recovery benchmark: warm boot from the durability store.
//!
//! Sweeps the write-ahead log length (deltas journaled since the last
//! checkpoint) and, for each point, builds a store, drops it cold and
//! measures [`DurableStore::open`] — the full recovery walk: newest
//! checkpoint, log replay through `construct_delta`, tail truncation.
//! Each row reports the recovery wall, the records replayed, the log
//! size scanned and the durability fsync counts of the write phase; the
//! report also carries the wall of one full `construct_distributed`
//! rebuild at the same scale, the cost the store's warm boot avoids.
//!
//! Results land in `results/BENCH_recovery.json` (override with
//! `EPPI_RECOVERY_OUT`); `EPPI_SCALE=quick` selects the smoke
//! configuration.
//!
//! The expected shape at paper scale (64 × 4096): recovery wall grows
//! linearly with the log length (each replayed record re-runs one
//! O(k)-column construction) and stays far below the full rebuild even
//! at the longest log — checkpoints exist to bound the left term, not
//! to make recovery viable at all.

use crate::report::Table;
use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_durability::DurableStore;
use eppi_protocol::construct::{construct_distributed_with_registry, ProtocolConfig};
use eppi_protocol::epoch::construct_epoch_with_registry;
use eppi_telemetry::json::JsonValue;
use eppi_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of one recovery benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryBenchConfig {
    /// Providers `m`.
    pub providers: usize,
    /// Owners `n`.
    pub owners: usize,
    /// Log lengths to sweep: deltas journaled since the checkpoint
    /// (each yields one row).
    pub wal_lengths: Vec<usize>,
    /// Membership bits flipped per journaled delta.
    pub flips_per_column: usize,
    /// Base RNG seed (also the protocol seed).
    pub seed: u64,
}

impl RecoveryBenchConfig {
    /// Paper-scale sweep: the evaluation's index dimensions with log
    /// lengths from an empty log (pure checkpoint load) up to 64
    /// journaled deltas.
    pub fn paper() -> Self {
        RecoveryBenchConfig {
            providers: 64,
            owners: 4096,
            wal_lengths: vec![0, 4, 16, 64],
            flips_per_column: 3,
            seed: 0xd04a11,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        RecoveryBenchConfig {
            providers: 16,
            owners: 128,
            wal_lengths: vec![0, 2, 8],
            flips_per_column: 2,
            seed: 0xd04a11,
        }
    }
}

/// One log length's measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRow {
    /// Deltas journaled since the checkpoint.
    pub wal_records: usize,
    /// Log bytes scanned by recovery.
    pub wal_bytes: u64,
    /// Wall time of [`DurableStore::open`] — checkpoint load plus
    /// replay.
    pub recovery_wall: Duration,
    /// Records replayed through `construct_delta` (must equal
    /// `wal_records`).
    pub replayed: usize,
    /// Epoch number of the recovered head (must equal `wal_records`).
    pub head_epoch: u64,
    /// Durability fsyncs issued while writing the store (create +
    /// one per journaled delta).
    pub write_fsyncs: u64,
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The configuration that ran.
    pub config: RecoveryBenchConfig,
    /// Wall of one full `construct_distributed` at the same scale —
    /// the rebuild a warm boot avoids.
    pub full_rebuild_wall: Duration,
    /// One entry per swept log length.
    pub rows: Vec<RecoveryRow>,
}

impl RecoveryReport {
    /// Rebuild-avoidance factor for one row (`> 1` = warm boot wins).
    pub fn rebuild_speedup(&self, row: &RecoveryRow) -> f64 {
        self.full_rebuild_wall.as_secs_f64() / row.recovery_wall.as_secs_f64().max(1e-9)
    }
}

/// A random base network, same shape as the refresh benchmark's.
fn build_base(config: &RecoveryBenchConfig, rng: &mut StdRng) -> (MembershipMatrix, Vec<Epsilon>) {
    let mut matrix = MembershipMatrix::new(config.providers, config.owners);
    for owner in matrix.owner_ids() {
        let freq = rng.gen_range(1..config.providers.max(2));
        for i in 0..freq {
            matrix.set(
                ProviderId(((i * 7 + owner.index()) % config.providers) as u32),
                owner,
                true,
            );
        }
    }
    let epsilons = (0..config.owners)
        .map(|_| Epsilon::saturating(rng.gen_range(0.1..0.9)))
        .collect();
    (matrix, epsilons)
}

/// Churns one column in place, returning the single-entry change batch.
fn churn_one(
    matrix: &mut MembershipMatrix,
    owner: OwnerId,
    flips: usize,
    rng: &mut StdRng,
) -> IndexDelta {
    for _ in 0..flips {
        let p = ProviderId(rng.gen_range(0..matrix.providers()) as u32);
        matrix.set(p, owner, !matrix.get(p, owner));
    }
    let mut delta = IndexDelta::new(matrix.owners());
    delta.record(DeltaEntry {
        owner,
        change: ColumnChange::Changed,
        epsilon: Epsilon::saturating(rng.gen_range(0.1..0.9)),
    });
    delta
}

/// A scratch store directory unique to this process and row.
fn scratch_dir(tag: usize) -> PathBuf {
    std::env::temp_dir().join(format!("eppi-bench-recovery-{}-{tag}", std::process::id()))
}

fn bench_length(config: &RecoveryBenchConfig, length: usize) -> RecoveryRow {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (length as u64).wrapping_mul(0x9e37));
    let (mut matrix, epsilons) = build_base(config, &mut rng);
    let proto = ProtocolConfig {
        seed: config.seed,
        ..ProtocolConfig::default()
    };
    let dir = scratch_dir(length);
    let _ = std::fs::remove_dir_all(&dir);

    // Write phase: anchor checkpoint + `length` journaled deltas.
    let write_registry = Registry::new();
    let epoch0 = construct_epoch_with_registry(&matrix, &epsilons, &proto, &write_registry)
        .expect("epoch 0 construction");
    let mut store =
        DurableStore::create_with_registry(&dir, &epoch0, &write_registry).expect("create store");
    for i in 0..length {
        // Evenly-spread distinct owners, one column per delta.
        let owner = OwnerId(((i * config.owners) / length.max(1)) as u32);
        let delta = churn_one(&mut matrix, owner, config.flips_per_column, &mut rng);
        store
            .advance_with_registry(&matrix, &delta, &write_registry)
            .expect("journal delta");
    }
    let wal_bytes = store.wal_bytes().expect("log length");
    let write_fsyncs = write_registry.counter("durability.fsyncs", &[]).get();
    drop(store);

    // Crash-and-boot phase: cold open measures the full recovery walk.
    let recover_registry = Registry::new();
    let (recovered, recovery) =
        DurableStore::open_with_registry(&dir, &recover_registry).expect("recover store");
    assert_eq!(recovery.replayed, length, "every journaled record replays");
    assert!(recovery.tail_defect.is_none(), "clean log recovers cleanly");
    let head_epoch = recovered.head().epoch();
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryRow {
        wal_records: length,
        wal_bytes,
        recovery_wall: recovery.wall,
        replayed: recovery.replayed,
        head_epoch,
        write_fsyncs,
    }
}

/// Runs the whole log-length sweep plus the rebuild reference.
pub fn run(config: &RecoveryBenchConfig) -> RecoveryReport {
    // The rebuild a warm boot avoids: one full distributed
    // construction at the same scale.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (matrix, epsilons) = build_base(config, &mut rng);
    let proto = ProtocolConfig {
        seed: config.seed,
        ..ProtocolConfig::default()
    };
    let full = construct_distributed_with_registry(&matrix, &epsilons, &proto, &Registry::new())
        .expect("full construction");

    let rows = config
        .wal_lengths
        .iter()
        .map(|&length| bench_length(config, length))
        .collect();
    RecoveryReport {
        config: config.clone(),
        full_rebuild_wall: full.report.wall,
        rows,
    }
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &RecoveryReport) -> Table {
    let mut table = Table::new(
        format!(
            "crash recovery vs full rebuild — {} providers, {} owners, rebuild {:.2} ms",
            report.config.providers,
            report.config.owners,
            report.full_rebuild_wall.as_secs_f64() * 1e3
        ),
        [
            "wal records",
            "wal KiB",
            "recovery ms",
            "replayed",
            "head epoch",
            "vs rebuild",
        ]
        .map(String::from)
        .to_vec(),
    );
    for row in &report.rows {
        table.push_row(vec![
            row.wal_records.to_string(),
            format!("{:.1}", row.wal_bytes as f64 / 1024.0),
            format!("{:.3}", row.recovery_wall.as_secs_f64() * 1e3),
            row.replayed.to_string(),
            row.head_epoch.to_string(),
            format!("{:.0}x", report.rebuild_speedup(row)),
        ]);
    }
    table
}

/// Serializes the report to the `BENCH_recovery.json` schema.
pub fn to_json(report: &RecoveryReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let rows = report
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                (
                    "wal_records".into(),
                    JsonValue::UInt(row.wal_records as u64),
                ),
                ("wal_bytes".into(), JsonValue::UInt(row.wal_bytes)),
                (
                    "recovery_ms".into(),
                    JsonValue::Float(row.recovery_wall.as_secs_f64() * 1e3),
                ),
                ("replayed".into(), JsonValue::UInt(row.replayed as u64)),
                ("head_epoch".into(), JsonValue::UInt(row.head_epoch)),
                ("write_fsyncs".into(), JsonValue::UInt(row.write_fsyncs)),
                (
                    "rebuild_speedup".into(),
                    JsonValue::Float(report.rebuild_speedup(row)),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("recovery".into())),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "machine".into(),
            JsonValue::Object(vec![
                ("os".into(), JsonValue::Str(std::env::consts::OS.into())),
                ("arch".into(), JsonValue::Str(std::env::consts::ARCH.into())),
                ("hardware_threads".into(), JsonValue::UInt(threads as u64)),
            ]),
        ),
        (
            "config".into(),
            JsonValue::Object(vec![
                (
                    "providers".into(),
                    JsonValue::UInt(report.config.providers as u64),
                ),
                (
                    "owners".into(),
                    JsonValue::UInt(report.config.owners as u64),
                ),
                (
                    "flips_per_column".into(),
                    JsonValue::UInt(report.config.flips_per_column as u64),
                ),
                ("seed".into(), JsonValue::UInt(report.config.seed)),
            ]),
        ),
        (
            "full_rebuild_ms".into(),
            JsonValue::Float(report.full_rebuild_wall.as_secs_f64() * 1e3),
        ),
        ("rows".into(), JsonValue::Array(rows)),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_replays_every_journaled_record() {
        let config = RecoveryBenchConfig {
            owners: 64,
            wal_lengths: vec![0, 3],
            ..RecoveryBenchConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.rows.len(), 2);
        for (row, &length) in report.rows.iter().zip(&config.wal_lengths) {
            assert_eq!(row.wal_records, length);
            assert_eq!(row.replayed, length);
            assert_eq!(row.head_epoch, length as u64);
        }
        // An empty log carries no bytes; a journaled one does, and each
        // advance costs exactly one fsync over the create baseline.
        assert_eq!(report.rows[0].wal_bytes, 0);
        assert!(report.rows[1].wal_bytes > 0);
        assert_eq!(report.rows[1].write_fsyncs - report.rows[0].write_fsyncs, 3);

        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("BENCH_recovery.json must parse");
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("recovery")
        );
        for key in [
            "\"rows\"",
            "\"wal_records\"",
            "\"recovery_ms\"",
            "\"replayed\"",
            "\"full_rebuild_ms\"",
            "\"rebuild_speedup\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("recovery ms"));
    }
}
