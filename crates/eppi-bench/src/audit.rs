//! Publication-audit benchmark: MPC-in-the-head prove/verify cost and
//! cheater-detection outcomes.
//!
//! Two sweeps over a constructed epoch: column size (owners `n`, at the
//! strongest repetition count) and repetition count (at the smallest
//! column). Each row times [`certify_epoch`] (every provider proves its
//! column) and [`verify_epoch`] (the auditor gate), and records the
//! total certificate size. A separate detection trial runs one cheater
//! of every [`CheatStrategy`] inside an honest cohort and records who
//! was caught — the JSON is CI-gated on *all cheaters detected, zero
//! honest rejections*.
//!
//! Results land in `results/BENCH_audit.json` (override with
//! `EPPI_AUDIT_OUT`); `EPPI_SCALE=quick` selects the smoke
//! configuration.
//!
//! Expected shape: prove and verify walls grow linearly in
//! `words(n) × repetitions` (the flip circuit is fixed at 109 AND
//! gates, evaluated word-parallel), and proof size is dominated by the
//! per-repetition opened AND wires.

use crate::report::Table;
use eppi_attacks::{run_cheating_trial, CheatStrategy, CheatingProvider};
use eppi_audit::{AuditParams, DEFAULT_REPETITIONS};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_protocol::{certify_epoch, construct_epoch, verify_epoch, AuditConfig, ProtocolConfig};
use eppi_telemetry::json::JsonValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of one audit benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditBenchConfig {
    /// Providers `m` (each certifies one column).
    pub providers: usize,
    /// Column sizes to sweep at the strongest repetition count.
    pub owners_sweep: Vec<usize>,
    /// Repetition counts to sweep at the smallest column size.
    pub repetitions_sweep: Vec<usize>,
    /// Decoys each cheating strategy tries to suppress.
    pub cheat_drop: usize,
    /// Base RNG / protocol seed.
    pub seed: u64,
}

impl AuditBenchConfig {
    /// Paper-scale sweep: the evaluation's m = 10 providers, columns
    /// from the paper's 128 identities up, full 40-repetition proofs.
    pub fn paper() -> Self {
        AuditBenchConfig {
            providers: 10,
            owners_sweep: vec![128, 1024, 4096],
            repetitions_sweep: vec![1, 10, DEFAULT_REPETITIONS],
            cheat_drop: 6,
            seed: 0xa0d17,
        }
    }

    /// Scaled-down smoke run for tests and `EPPI_SCALE=quick`.
    pub fn quick() -> Self {
        AuditBenchConfig {
            providers: 6,
            owners_sweep: vec![64, 128],
            repetitions_sweep: vec![1, 8],
            cheat_drop: 4,
            seed: 0xa0d17,
        }
    }

    fn max_repetitions(&self) -> usize {
        self.repetitions_sweep.iter().copied().max().unwrap_or(1)
    }
}

/// One (owners, repetitions) point's measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRow {
    /// Column size `n`.
    pub owners: usize,
    /// Proof repetitions.
    pub repetitions: usize,
    /// Wall of certifying all `m` columns.
    pub prove_wall: Duration,
    /// Wall of the auditor gate over all `m` certificates.
    pub verify_wall: Duration,
    /// Total serialized proof bytes across providers.
    pub proof_bytes: usize,
    /// Whether the gate accepted the honest certificates (must be
    /// true in every row).
    pub accepted: bool,
}

/// One cheating strategy's outcome in the detection trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheaterOutcome {
    /// Strategy label (`wrong_beta`, `stale_column`, …).
    pub strategy: &'static str,
    /// Whether the auditor rejected the certificate.
    pub detected: bool,
    /// The rejecting check's label, when detected.
    pub kind: Option<&'static str>,
}

/// Everything one invocation produces (feeds both table and JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The configuration that ran.
    pub config: AuditBenchConfig,
    /// One entry per swept point.
    pub rows: Vec<AuditRow>,
    /// Detection-trial outcomes, one per seeded cheater.
    pub cheaters: Vec<CheaterOutcome>,
    /// Honest providers rejected in the detection trial (must be 0).
    pub honest_rejections: usize,
}

fn random_matrix(m: usize, n: usize, seed: u64) -> MembershipMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mat = MembershipMatrix::new(m, n);
    for p in 0..m as u32 {
        for j in 0..n as u32 {
            if rng.gen_range(0u32..100) < 30 {
                mat.set(ProviderId(p), OwnerId(j), true);
            }
        }
    }
    mat
}

fn bench_point(config: &AuditBenchConfig, owners: usize, repetitions: usize) -> AuditRow {
    let matrix = random_matrix(config.providers, owners, config.seed ^ owners as u64);
    let epsilons: Vec<Epsilon> = (0..owners)
        .map(|j| Epsilon::saturating(0.2 + (j % 7) as f64 / 10.0))
        .collect();
    let proto = ProtocolConfig {
        seed: config.seed,
        ..ProtocolConfig::default()
    };
    let audit = AuditConfig {
        params: AuditParams { repetitions },
        ..AuditConfig::default()
    };
    let epoch = construct_epoch(&matrix, &epsilons, &proto).expect("epoch construction");

    let started = Instant::now();
    let certificates = certify_epoch(&matrix, &epoch, &audit);
    let prove_wall = started.elapsed();
    let proof_bytes = certificates.iter().map(|c| c.proof.size_bytes()).sum();

    let started = Instant::now();
    let accepted = verify_epoch(&epoch, &certificates, &audit).is_ok();
    let verify_wall = started.elapsed();

    AuditRow {
        owners,
        repetitions,
        prove_wall,
        verify_wall,
        proof_bytes,
        accepted,
    }
}

/// Runs both sweeps plus the cheater-detection trial.
pub fn run(config: &AuditBenchConfig) -> AuditReport {
    let mut rows = Vec::new();
    let max_reps = config.max_repetitions();
    for &owners in &config.owners_sweep {
        rows.push(bench_point(config, owners, max_reps));
    }
    let base_owners = config.owners_sweep.first().copied().unwrap_or(128);
    for &reps in &config.repetitions_sweep {
        if reps != max_reps {
            rows.push(bench_point(config, base_owners, reps));
        }
    }

    // Detection trial: one cheater per strategy, honest remainder,
    // full-strength proofs.
    let owners = base_owners;
    let matrix = random_matrix(config.providers, owners, config.seed ^ 0xc0de);
    let betas: Vec<f64> = (0..owners).map(|j| 0.2 + (j % 6) as f64 / 10.0).collect();
    let strategies = [
        CheatStrategy::WrongBeta { claimed: 0.01 },
        CheatStrategy::StaleColumn {
            stale_seed: config.seed ^ 0xbad,
        },
        CheatStrategy::SelectiveDeflip {
            drop: config.cheat_drop,
        },
        CheatStrategy::ForgedView {
            drop: config.cheat_drop,
        },
    ];
    let cheaters: Vec<CheatingProvider> = strategies
        .iter()
        .enumerate()
        .map(|(i, s)| CheatingProvider {
            provider: ProviderId(i as u32 % config.providers as u32),
            strategy: s.clone(),
        })
        .collect();
    let params = AuditParams {
        repetitions: max_reps,
    };
    let outcomes = run_cheating_trial(config.seed, &betas, &matrix, &cheaters, &params, 0x5eed);
    let cheater_rows = outcomes
        .iter()
        .filter_map(|o| {
            o.cheated.map(|strategy| CheaterOutcome {
                strategy,
                detected: o.detected(),
                kind: o.error.as_ref().map(|e| e.kind()),
            })
        })
        .collect();
    let honest_rejections = outcomes
        .iter()
        .filter(|o| o.cheated.is_none() && o.detected())
        .count();

    AuditReport {
        config: config.clone(),
        rows,
        cheaters: cheater_rows,
        honest_rejections,
    }
}

/// Renders the report as the harness's usual aligned table.
pub fn to_table(report: &AuditReport) -> Table {
    let mut table = Table::new(
        format!(
            "publication audit — {} providers, cheaters {}/{} detected, {} honest rejections",
            report.config.providers,
            report.cheaters.iter().filter(|c| c.detected).count(),
            report.cheaters.len(),
            report.honest_rejections
        ),
        [
            "owners",
            "reps",
            "prove ms",
            "verify ms",
            "proof KiB",
            "accepted",
        ]
        .map(String::from)
        .to_vec(),
    );
    for row in &report.rows {
        table.push_row(vec![
            row.owners.to_string(),
            row.repetitions.to_string(),
            format!("{:.3}", row.prove_wall.as_secs_f64() * 1e3),
            format!("{:.3}", row.verify_wall.as_secs_f64() * 1e3),
            format!("{:.1}", row.proof_bytes as f64 / 1024.0),
            row.accepted.to_string(),
        ]);
    }
    table
}

/// Serializes the report to the `BENCH_audit.json` schema.
pub fn to_json(report: &AuditReport, scale: &str) -> String {
    let threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let rows = report
        .rows
        .iter()
        .map(|row| {
            JsonValue::Object(vec![
                ("owners".into(), JsonValue::UInt(row.owners as u64)),
                (
                    "repetitions".into(),
                    JsonValue::UInt(row.repetitions as u64),
                ),
                (
                    "prove_ms".into(),
                    JsonValue::Float(row.prove_wall.as_secs_f64() * 1e3),
                ),
                (
                    "verify_ms".into(),
                    JsonValue::Float(row.verify_wall.as_secs_f64() * 1e3),
                ),
                (
                    "proof_bytes".into(),
                    JsonValue::UInt(row.proof_bytes as u64),
                ),
                ("accepted".into(), JsonValue::Bool(row.accepted)),
            ])
        })
        .collect();
    let cheaters = report
        .cheaters
        .iter()
        .map(|c| {
            JsonValue::Object(vec![
                ("strategy".into(), JsonValue::Str(c.strategy.into())),
                ("detected".into(), JsonValue::Bool(c.detected)),
                (
                    "kind".into(),
                    c.kind.map_or(JsonValue::Null, |k| JsonValue::Str(k.into())),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![
        ("bench".into(), JsonValue::Str("audit".into())),
        ("scale".into(), JsonValue::Str(scale.into())),
        (
            "machine".into(),
            JsonValue::Object(vec![
                ("os".into(), JsonValue::Str(std::env::consts::OS.into())),
                ("arch".into(), JsonValue::Str(std::env::consts::ARCH.into())),
                ("hardware_threads".into(), JsonValue::UInt(threads as u64)),
            ]),
        ),
        (
            "config".into(),
            JsonValue::Object(vec![
                (
                    "providers".into(),
                    JsonValue::UInt(report.config.providers as u64),
                ),
                (
                    "cheat_drop".into(),
                    JsonValue::UInt(report.config.cheat_drop as u64),
                ),
                ("seed".into(), JsonValue::UInt(report.config.seed)),
            ]),
        ),
        ("rows".into(), JsonValue::Array(rows)),
        ("cheaters".into(), JsonValue::Array(cheaters)),
        (
            "honest_rejections".into(),
            JsonValue::UInt(report.honest_rejections as u64),
        ),
    ]);
    let mut out = doc.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_detects_every_cheater_and_accepts_honest_rows() {
        let config = AuditBenchConfig {
            owners_sweep: vec![64],
            repetitions_sweep: vec![1, 6],
            ..AuditBenchConfig::quick()
        };
        let report = run(&config);
        assert_eq!(report.rows.len(), 2); // 64×6 and 64×1
        assert!(report.rows.iter().all(|r| r.accepted));
        assert!(report.rows.iter().all(|r| r.proof_bytes > 0));
        assert_eq!(report.cheaters.len(), 4);
        // At 6 repetitions even the forged view survives with
        // probability (2/3)^6 ≈ 0.09 — but this seed is pinned, and
        // the three deterministic cheats never escape.
        for c in &report.cheaters {
            if c.strategy != "forged_view" {
                assert!(c.detected, "{} escaped", c.strategy);
            }
        }
        assert_eq!(report.honest_rejections, 0);

        let json = to_json(&report, "quick");
        let doc = JsonValue::parse(&json).expect("BENCH_audit.json must parse");
        assert_eq!(doc.get("bench").and_then(JsonValue::as_str), Some("audit"));
        for key in [
            "\"rows\"",
            "\"prove_ms\"",
            "\"verify_ms\"",
            "\"proof_bytes\"",
            "\"cheaters\"",
            "\"honest_rejections\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let table = to_table(&report).to_string();
        assert!(table.contains("prove ms"));
    }
}
