//! Ablation: the collusion-tolerance parameter `c`.
//!
//! DESIGN.md calls out `c` as the central design knob of the MPC-reduced
//! protocol: larger `c` tolerates more colluding providers but grows the
//! generic-MPC part (circuit size, traffic, time). This sweep quantifies
//! that trade-off — the paper fixes `c = 3` and this table shows why
//! that is a sweet spot.

use crate::report::{ms, Table};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_protocol::construct::{construct_distributed, ProtocolConfig};
use eppi_protocol::countbelow::Backend;

/// Configuration of the `c` ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationConfig {
    /// Number of providers.
    pub providers: usize,
    /// Number of identities.
    pub identities: usize,
    /// The `c` values swept.
    pub cs: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Default sweep: c ∈ {2, 3, 4, 5, 6} over a 24-provider network.
    pub fn paper() -> Self {
        AblationConfig {
            providers: 24,
            identities: 16,
            cs: vec![2, 3, 4, 5, 6],
            seed: 0xab1a,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        AblationConfig {
            providers: 9,
            identities: 4,
            cs: vec![2, 3],
            seed: 0xab1a,
        }
    }
}

/// Runs the `c` sweep.
pub fn ablation_c(cfg: &AblationConfig) -> Table {
    let mut matrix = MembershipMatrix::new(cfg.providers, cfg.identities);
    for j in 0..cfg.identities {
        for p in 0..(cfg.providers / 3).max(1) {
            matrix.set(
                ProviderId(((p + j) % cfg.providers) as u32),
                OwnerId(j as u32),
                true,
            );
        }
    }
    let epsilons = vec![Epsilon::saturating(0.5); cfg.identities];

    let mut table = Table::new(
        format!(
            "Ablation — collusion tolerance c (m={}, n={})",
            cfg.providers, cfg.identities
        ),
        vec![
            "c".into(),
            "circuit gates".into(),
            "MPC KiB".into(),
            "SecSum msgs".into(),
            "wall ms".into(),
        ],
    );
    for &c in &cfg.cs {
        let proto = ProtocolConfig {
            c,
            backend: Backend::InProcess,
            seed: cfg.seed ^ c as u64,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&matrix, &epsilons, &proto).expect("construction");
        let bytes = out.report.count_stage.bytes + out.report.mix_stage.bytes;
        table.push_row(vec![
            c.to_string(),
            out.report.circuit_size().to_string(),
            format!("{:.1}", bytes as f64 / 1024.0),
            out.report.secsum.messages.to_string(),
            ms(out.report.wall),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_c_costs_more_mpc() {
        let t = ablation_c(&AblationConfig::quick());
        let g2: usize = t.rows[0][1].parse().unwrap();
        let g3: usize = t.rows[1][1].parse().unwrap();
        assert!(g3 > g2, "c=3 circuit must exceed c=2: {t}");
    }
}
