//! Fig. 5 — comparing the three β-calculation policies.
//!
//! Paper setting (§V-A.2): Δ = 0.02 for the incremented-expectation
//! policy, γ = 0.9 for the Chernoff policy, default ε = 0.5.
//!
//! * **Fig. 5a** — success rate `p_p` vs identity frequency (0–500 of
//!   10,000 providers);
//! * **Fig. 5b** — success rate vs number of providers (8–8192) at
//!   relative frequency 0.1.
//!
//! Expected shape: Chernoff ≈ 1.0 (≥ γ) everywhere; basic ≈ 0.5;
//! inc-exp in between, degrading for high frequencies (5a) and few
//! providers (5b).

use crate::report::{f3, Table};
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::Epsilon;
use eppi_core::policy::PolicyKind;
use eppi_core::privacy::success_ratio;
use eppi_workload::collections::{fixed_epsilons, pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the Fig. 5 sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Config {
    /// Number of providers for Fig. 5a.
    pub providers: usize,
    /// Owners per cohort.
    pub cohort: usize,
    /// Samples averaged per point.
    pub samples: usize,
    /// The common ε.
    pub epsilon: f64,
    /// Δ of the incremented-expectation policy.
    pub delta: f64,
    /// γ of the Chernoff policy.
    pub gamma: f64,
    /// Frequency x-axis of Fig. 5a.
    pub frequencies: Vec<usize>,
    /// Provider-count x-axis of Fig. 5b.
    pub provider_counts: Vec<usize>,
    /// Relative identity frequency for Fig. 5b.
    pub sigma_for_5b: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Fig5Config {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Fig5Config {
            providers: 10_000,
            cohort: 100,
            samples: 5,
            epsilon: 0.5,
            delta: 0.02,
            gamma: 0.9,
            frequencies: vec![1, 50, 100, 200, 300, 400, 500],
            provider_counts: vec![8, 32, 128, 512, 2048, 8192],
            sigma_for_5b: 0.1,
            seed: 0x55a,
        }
    }

    /// A scaled-down configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Fig5Config {
            providers: 800,
            cohort: 40,
            samples: 3,
            epsilon: 0.5,
            delta: 0.02,
            gamma: 0.9,
            frequencies: vec![4, 20, 40],
            provider_counts: vec![8, 64, 512],
            sigma_for_5b: 0.1,
            seed: 0x55a,
        }
    }

    fn policies(&self) -> [PolicyKind; 3] {
        [
            PolicyKind::Basic,
            PolicyKind::Incremented { delta: self.delta },
            PolicyKind::Chernoff { gamma: self.gamma },
        ]
    }
}

fn measure(providers: usize, frequency: usize, cfg: &Fig5Config, seed: u64) -> [f64; 3] {
    let eps = Epsilon::saturating(cfg.epsilon);
    let mut out = [0.0f64; 3];
    for s in 0..cfg.samples {
        let seed = seed ^ (s as u64) << 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix = pinned_cohorts(
            providers,
            &[Cohort {
                owners: cfg.cohort,
                frequency,
            }],
            &mut rng,
        );
        let epsilons = fixed_epsilons(cfg.cohort, eps);
        for (k, policy) in cfg.policies().into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (k as u64 + 1) << 20);
            let c = construct(
                &matrix,
                &epsilons,
                ConstructionConfig {
                    policy,
                    mixing: true,
                },
                &mut rng,
            )
            .expect("valid construction");
            out[k] += success_ratio(&matrix, &c.index, &epsilons, true);
        }
    }
    for v in &mut out {
        *v /= cfg.samples as f64;
    }
    out
}

fn headers() -> Vec<String> {
    vec![
        "x".to_string(),
        "basic".to_string(),
        "inc-exp".to_string(),
        "chernoff".to_string(),
    ]
}

/// Runs Fig. 5a: success rate vs identity frequency.
pub fn fig5a(cfg: &Fig5Config) -> Table {
    let mut headers = headers();
    headers[0] = "frequency".to_string();
    let mut table = Table::new(
        format!(
            "Fig. 5a — success rate vs identity frequency (m={}, ε={}, Δ={}, γ={})",
            cfg.providers, cfg.epsilon, cfg.delta, cfg.gamma
        ),
        headers,
    );
    for &freq in &cfg.frequencies {
        let vals = measure(cfg.providers, freq, cfg, cfg.seed ^ (freq as u64) << 24);
        let mut row = vec![freq.to_string()];
        row.extend(vals.iter().map(|&v| f3(v)));
        table.push_row(row);
    }
    table
}

/// Runs Fig. 5b: success rate vs number of providers at fixed relative
/// frequency.
pub fn fig5b(cfg: &Fig5Config) -> Table {
    let mut headers = headers();
    headers[0] = "providers".to_string();
    let mut table = Table::new(
        format!(
            "Fig. 5b — success rate vs providers (σ={}, ε={}, Δ={}, γ={})",
            cfg.sigma_for_5b, cfg.epsilon, cfg.delta, cfg.gamma
        ),
        headers,
    );
    for &m in &cfg.provider_counts {
        let freq = ((m as f64 * cfg.sigma_for_5b).round() as usize).max(1);
        let vals = measure(m, freq, cfg, cfg.seed ^ (m as u64) << 24);
        let mut row = vec![m.to_string()];
        row.extend(vals.iter().map(|&v| f3(v)));
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_dominates_and_basic_hovers_at_half() {
        let cfg = Fig5Config::quick();
        let t = fig5a(&cfg);
        for row in &t.rows {
            let basic: f64 = row[1].parse().unwrap();
            let chernoff: f64 = row[3].parse().unwrap();
            assert!(chernoff >= 0.85, "chernoff {chernoff} below γ: {row:?}");
            assert!(
                (0.2..=0.8).contains(&basic),
                "basic {basic} should hover near 0.5: {row:?}"
            );
            assert!(chernoff >= basic, "chernoff must dominate basic: {row:?}");
        }
    }

    #[test]
    fn fig5b_has_one_row_per_provider_count() {
        let cfg = Fig5Config::quick();
        let t = fig5b(&cfg);
        assert_eq!(t.rows.len(), cfg.provider_counts.len());
        // Chernoff stays high even at the smallest network.
        let first = &t.rows[0];
        let chernoff: f64 = first[3].parse().unwrap();
        assert!(chernoff >= 0.8, "chernoff {chernoff} at m=8");
    }
}
