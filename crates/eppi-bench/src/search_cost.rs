//! Supplementary experiment: the search overhead privacy buys.
//!
//! The paper states that "the high-level privacy preservation of the
//! Chernoff bound policy comes with reasonable search overhead" and
//! defers the numbers to its technical report. This experiment produces
//! them: for each policy and ε, the average `QueryPPI` answer size and
//! the false-hit overhead a searcher pays during `AuthSearch`.

use crate::report::{f3, Table};
use eppi_baselines::grouping::GroupingPpi;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::{Epsilon, OwnerId};
use eppi_core::policy::PolicyKind;
use eppi_workload::collections::{fixed_epsilons, pinned_cohorts, Cohort};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the search-cost experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCostConfig {
    /// Number of providers.
    pub providers: usize,
    /// Owners in the measured cohort.
    pub cohort: usize,
    /// Identity frequency of the cohort.
    pub frequency: usize,
    /// ε values swept.
    pub epsilons: Vec<f64>,
    /// Group counts of the grouping comparators (their answer size is
    /// ε-independent — the paper's "query broadcasting" critique).
    pub group_counts: Vec<usize>,
    /// Seed.
    pub seed: u64,
}

impl SearchCostConfig {
    /// Default: 2,000 providers, frequency 20.
    pub fn paper() -> Self {
        SearchCostConfig {
            providers: 2000,
            cohort: 50,
            frequency: 20,
            epsilons: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            group_counts: vec![100, 400],
            seed: 0x5c05,
        }
    }

    /// Scaled-down configuration for tests.
    pub fn quick() -> Self {
        SearchCostConfig {
            providers: 300,
            cohort: 20,
            frequency: 6,
            epsilons: vec![0.3, 0.7],
            group_counts: vec![30],
            seed: 0x5c05,
        }
    }
}

/// Runs the search-cost sweep: average QueryPPI answer size per policy
/// and ε (the true-positive count is `frequency`, so the rest is
/// overhead).
pub fn search_cost(cfg: &SearchCostConfig) -> Table {
    let mut table = Table::new(
        format!(
            "Search cost — mean QueryPPI answer size (m={}, true positives={})",
            cfg.providers, cfg.frequency
        ),
        {
            let mut h = vec![
                "epsilon".to_string(),
                "basic".to_string(),
                "inc-exp(0.02)".to_string(),
                "chernoff(0.9)".to_string(),
            ];
            for &g in &cfg.group_counts {
                h.push(format!("grouping-{g}"));
            }
            h.push("broadcast".to_string());
            h
        },
    );
    let policies = [
        PolicyKind::Basic,
        PolicyKind::Incremented { delta: 0.02 },
        PolicyKind::Chernoff { gamma: 0.9 },
    ];
    for &e in &cfg.epsilons {
        let eps = Epsilon::saturating(e);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (e * 100.0) as u64);
        let matrix = pinned_cohorts(
            cfg.providers,
            &[Cohort {
                owners: cfg.cohort,
                frequency: cfg.frequency,
            }],
            &mut rng,
        );
        let epsilons = fixed_epsilons(cfg.cohort, eps);
        let mut row = vec![format!("{e:.1}")];
        for policy in policies {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (e * 1000.0) as u64);
            let c = construct(
                &matrix,
                &epsilons,
                ConstructionConfig {
                    policy,
                    mixing: true,
                },
                &mut rng,
            )
            .expect("valid construction");
            let mean: f64 = (0..cfg.cohort)
                .map(|j| c.index.query(OwnerId(j as u32)).len() as f64)
                .sum::<f64>()
                / cfg.cohort as f64;
            row.push(f3(mean));
        }
        // Grouping baselines: the answer is the union of claiming
        // groups, independent of ε — no per-owner tuning is possible.
        for &groups in &cfg.group_counts {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x96 ^ groups as u64);
            let ppi = GroupingPpi::construct(&matrix, groups.min(cfg.providers), &mut rng);
            let mean: f64 = (0..cfg.cohort)
                .map(|j| ppi.index().query(OwnerId(j as u32)).len() as f64)
                .sum::<f64>()
                / cfg.cohort as f64;
            row.push(f3(mean));
        }
        row.push(cfg.providers.to_string());
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_epsilon_and_stays_below_broadcast() {
        let cfg = SearchCostConfig::quick();
        let t = search_cost(&cfg);
        let first_chernoff: f64 = t.rows[0][3].parse().unwrap();
        let last_chernoff: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last_chernoff > first_chernoff, "higher ε must cost more");
        assert!(
            last_chernoff <= cfg.providers as f64,
            "cannot exceed broadcast"
        );
        // Every answer contains at least the true positives.
        assert!(first_chernoff >= cfg.frequency as f64);
        // Grouping's cost is flat across ε (it cannot be tuned per
        // owner); the matrices are resampled per row, so allow sampling
        // noise.
        let g_first: f64 = t.rows[0][4].parse().unwrap();
        let g_last: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            (g_first - g_last).abs() < 0.1 * g_first.max(1.0),
            "grouping cost must be ε-independent: {g_first} vs {g_last}"
        );
    }
}
