//! Benchmarks of the service path: `QueryPPI` evaluation, the two-phase
//! search, and the privacy metrics the evaluation sweeps hammer.

use criterion::{criterion_group, criterion_main, Criterion};
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::{Epsilon, OwnerId};
use eppi_core::privacy::{owner_privacy, success_ratio};
use eppi_index::access::{AccessPolicy, SearcherId};
use eppi_index::search::{LocatorService, ProviderEndpoint};
use eppi_index::server::PpiServer;
use eppi_index::store::LocalStore;
use eppi_workload::collections::{uniform_epsilons, CollectionTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query_path(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let matrix = CollectionTable::new(1000, 300)
        .max_frequency(30)
        .build(&mut rng);
    let epsilons = uniform_epsilons(300, &mut rng);
    let built = construct(&matrix, &epsilons, ConstructionConfig::default(), &mut rng)
        .expect("construction");

    let endpoints: Vec<ProviderEndpoint> = matrix
        .provider_ids()
        .map(|p| {
            let mut store = LocalStore::new(p);
            for owner in matrix.owner_ids() {
                if matrix.get(p, owner) {
                    store.delegate(owner, epsilons[owner.index()], "payload");
                }
            }
            ProviderEndpoint {
                store,
                policy: AccessPolicy::Open,
            }
        })
        .collect();
    let service = LocatorService::new(PpiServer::new(built.index.clone()), endpoints);

    c.bench_function("query/query_ppi", |b| {
        b.iter(|| service.server().query(std::hint::black_box(OwnerId(17))))
    });
    c.bench_function("query/two_phase_search", |b| {
        b.iter(|| service.search(SearcherId(1), std::hint::black_box(OwnerId(17))))
    });
    c.bench_function("metrics/owner_privacy", |b| {
        b.iter(|| owner_privacy(&matrix, &built.index, std::hint::black_box(OwnerId(17))))
    });
    c.bench_function("metrics/success_ratio_1000x300", |b| {
        b.iter(|| success_ratio(&matrix, &built.index, &epsilons, true))
    });

    // A skewed query stream against the server (popularity Zipf 1.0).
    let workload = eppi_workload::queries::QueryWorkload::new(300, 1.0, &mut rng);
    c.bench_function("query/zipf_stream_1000_lookups", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1000 {
                total += service.server().query(workload.sample(&mut rng)).len();
            }
            total
        })
    });
    let _ = Epsilon::saturating(0.0);
}

criterion_group!(query, bench_query_path);
criterion_main!(query);
