//! Benchmarks of the MPC substrate: circuit compilation, in-process GMW
//! evaluation, threaded evaluation, and the SecSumShare protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use eppi_core::model::{LocalVector, OwnerId, ProviderId};
use eppi_mpc::circuits::CountBelowCircuit;
use eppi_mpc::field::Modulus;
use eppi_mpc::gmw;
use eppi_mpc::share::split;
use eppi_net::sim::LinkModel;
use eppi_protocol::secsum::secsumshare_sim;
use eppi_protocol::threaded_gmw::execute_threaded;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn shares_for(freqs: &[u64], c: usize, width: usize) -> Vec<Vec<u64>> {
    let q = Modulus::pow2(width as u32);
    let mut rng = StdRng::seed_from_u64(7);
    let mut per = vec![vec![0u64; freqs.len()]; c];
    for (j, &f) in freqs.iter().enumerate() {
        let s = split(f, c, q, &mut rng);
        for (k, &v) in s.values().iter().enumerate() {
            per[k][j] = v;
        }
    }
    per
}

fn bench_circuit_build(c: &mut Criterion) {
    let thresholds = vec![100u64; 16];
    c.bench_function("mpc/build_countbelow_c3_n16_w14", |b| {
        b.iter(|| CountBelowCircuit::build(3, &thresholds, 14))
    });
}

fn bench_gmw(c: &mut Criterion) {
    let thresholds = vec![100u64; 8];
    let cc = CountBelowCircuit::build(3, &thresholds, 10);
    let freqs = vec![50u64; 8];
    let shares = shares_for(&freqs, 3, 10);
    let inputs: Vec<Vec<bool>> = shares.iter().map(|s| cc.encode_party_input(s)).collect();
    c.bench_function("mpc/gmw_countbelow_c3_n8", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| gmw::execute(cc.circuit(), cc.layout(), &inputs, &mut rng))
    });
    c.bench_function("mpc/threaded_countbelow_c3_n8", |b| {
        b.iter(|| execute_threaded(cc.circuit(), cc.layout(), &inputs, 9))
    });
}

fn bench_secsum(c: &mut Criterion) {
    let m = 1000usize;
    let n = 32usize;
    let vectors: Vec<LocalVector> = (0..m)
        .map(|i| {
            let mut v = LocalVector::new(ProviderId(i as u32), n);
            for j in 0..n {
                if (i + j) % 10 == 0 {
                    v.set(OwnerId(j as u32), true);
                }
            }
            v
        })
        .collect();
    c.bench_function("mpc/secsumshare_sim_1000x32_c3", |b| {
        b.iter(|| secsumshare_sim(&vectors, 3, Modulus::pow2(16), LinkModel::LAN, 1))
    });
}

fn bench_offline_phase(c: &mut Criterion) {
    c.bench_function("mpc/ot_transfer", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| eppi_mpc::ot::transfer(0xAAAA, 0x5555, true, &mut rng))
    });
    c.bench_function("mpc/ot_triples_3party_x8", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| eppi_mpc::triples::generate_triples(3, 8, &mut rng))
    });
}

fn bench_naive_circuit(c: &mut Criterion) {
    use eppi_mpc::circuits::{FixedPoint, NaiveConstructionCircuit};
    let fp = FixedPoint { frac_bits: 8 };
    let a_fp = fp.encode(1.0);
    let l_fp = fp.encode(std::f64::consts::LN_10);
    c.bench_function("mpc/build_naive_beta_circuit_m9", |b| {
        b.iter(|| NaiveConstructionCircuit::build(9, &[a_fp], l_fp, fp, 8, 0))
    });
    let nc = NaiveConstructionCircuit::build(5, &[a_fp], l_fp, fp, 4, 0);
    let mut rng = StdRng::seed_from_u64(13);
    let inputs: Vec<Vec<bool>> = (0..5)
        .map(|p| nc.encode_party_input(&[p < 3], &[7]))
        .collect();
    let _ = &mut rng;
    c.bench_function("mpc/eval_naive_beta_cleartext_m5", |b| {
        let flat = nc.layout().flatten(&inputs);
        b.iter(|| nc.circuit().eval(&flat))
    });
}

fn bench_garbled(c: &mut Criterion) {
    use eppi_mpc::garble::{evaluate, garble};
    let thresholds = vec![100u64; 8];
    let cc = CountBelowCircuit::build(2, &thresholds, 10);
    c.bench_function("mpc/garble_countbelow_c2_n8", |b| {
        let mut rng = StdRng::seed_from_u64(21);
        b.iter(|| garble(cc.circuit(), &mut rng))
    });
    let mut rng = StdRng::seed_from_u64(22);
    let (garbled, labels) = garble(cc.circuit(), &mut rng);
    let encoded: Vec<u64> = (0..cc.circuit().inputs())
        .map(|w| labels.encode(w, w % 3 == 0))
        .collect();
    c.bench_function("mpc/evaluate_garbled_countbelow", |b| {
        b.iter(|| evaluate(cc.circuit(), &garbled, &encoded))
    });
}

fn bench_arith(c: &mut Criterion) {
    use eppi_mpc::arith::{execute_arith, ArithBuilder};
    let q = Modulus::new(1_000_003);
    let mut ab = ArithBuilder::new(q);
    let xs: Vec<usize> = (0..16).map(|_| ab.input()).collect();
    // Inner product with itself: 16 secret multiplications.
    let prods: Vec<usize> = xs.iter().map(|&x| ab.mul(x, x)).collect();
    let total = ab.sum(&prods);
    let circuit = ab.finish(vec![total]);
    let mut rng = StdRng::seed_from_u64(23);
    let shares: Vec<Vec<u64>> = {
        let values: Vec<u64> = (0..16).map(|i| i * 31).collect();
        let mut per = vec![vec![0u64; 16]; 3];
        for (w, &v) in values.iter().enumerate() {
            let s = split(v, 3, q, &mut rng);
            for (p, &sv) in s.values().iter().enumerate() {
                per[p][w] = sv;
            }
        }
        per
    };
    c.bench_function("mpc/arith_inner_product_3party_x16", |b| {
        let mut rng = StdRng::seed_from_u64(24);
        b.iter(|| execute_arith(&circuit, &shares, &mut rng))
    });
}

criterion_group!(
    mpc,
    bench_circuit_build,
    bench_gmw,
    bench_secsum,
    bench_offline_phase,
    bench_naive_circuit,
    bench_garbled,
    bench_arith
);
criterion_main!(mpc);
