//! Benchmarks of full index constructions: centralized ε-PPI,
//! the distributed trusted-party-free protocol, the pure-MPC baseline,
//! and the grouping comparator.

use criterion::{criterion_group, criterion_main, Criterion};
use eppi_baselines::grouping::GroupingPpi;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_protocol::construct::{construct_distributed, ProtocolConfig};
use eppi_protocol::pure_mpc::{construct_pure_mpc, PureMpcConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn network(m: usize, n: usize) -> (MembershipMatrix, Vec<Epsilon>) {
    let mut matrix = MembershipMatrix::new(m, n);
    for j in 0..n {
        for k in 0..(m / 20).max(1) {
            matrix.set(
                ProviderId(((j * 31 + k * 7) % m) as u32),
                OwnerId(j as u32),
                true,
            );
        }
    }
    (matrix, vec![Epsilon::saturating(0.5); n])
}

fn bench_centralized(c: &mut Criterion) {
    let (matrix, eps) = network(2000, 200);
    c.bench_function("construct/centralized_2000x200", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| construct(&matrix, &eps, ConstructionConfig::default(), &mut rng).unwrap())
    });
}

fn bench_distributed(c: &mut Criterion) {
    let (matrix, eps) = network(60, 8);
    let cfg = ProtocolConfig::default();
    c.bench_function("construct/distributed_60x8_c3", |b| {
        b.iter(|| construct_distributed(&matrix, &eps, &cfg).unwrap())
    });
}

fn bench_pure_mpc(c: &mut Criterion) {
    let (matrix, eps) = network(9, 2);
    let cfg = PureMpcConfig::default();
    c.bench_function("construct/pure_mpc_9x2", |b| {
        b.iter(|| construct_pure_mpc(&matrix, &eps, &cfg).unwrap())
    });
}

fn bench_grouping(c: &mut Criterion) {
    let (matrix, _) = network(2000, 200);
    c.bench_function("construct/grouping_2000x200_g100", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| GroupingPpi::construct(&matrix, 100, &mut rng))
    });
}

criterion_group!(
    construction,
    bench_centralized,
    bench_distributed,
    bench_pure_mpc,
    bench_grouping
);
criterion_main!(construction);
