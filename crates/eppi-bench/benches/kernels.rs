//! Micro-benchmarks of the computational kernels underlying the
//! construction: secret sharing, β policies, randomized publication,
//! and workload synthesis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi_core::policy::{BetaPolicy, ChernoffPolicy};
use eppi_core::publish::publish_matrix;
use eppi_mpc::field::Modulus;
use eppi_mpc::share::{recombine, split};
use eppi_workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_secret_sharing(c: &mut Criterion) {
    let q = Modulus::pow2(32);
    c.bench_function("share/split_c3", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| split(12345, 3, q, &mut rng))
    });
    c.bench_function("share/split_recombine_c5", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let s = split(999, 5, q, &mut rng);
            recombine(&s)
        })
    });
}

fn bench_beta_policies(c: &mut Criterion) {
    let chernoff = ChernoffPolicy::new(0.9).expect("valid gamma");
    let eps = Epsilon::saturating(0.5);
    c.bench_function("policy/chernoff_beta", |b| {
        b.iter(|| chernoff.raw_beta(std::hint::black_box(0.01), eps, 10_000))
    });
    c.bench_function("policy/chernoff_sigma_threshold", |b| {
        b.iter(|| chernoff.sigma_threshold(eps, 10_000))
    });
}

fn bench_publication(c: &mut Criterion) {
    let mut matrix = MembershipMatrix::new(1000, 100);
    for j in 0..100u32 {
        for k in 0..10u32 {
            matrix.set(ProviderId((j * 7 + k * 13) % 1000), OwnerId(j), true);
        }
    }
    let betas = vec![0.05; 100];
    c.bench_function("publish/1000x100_beta0.05", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| publish_matrix(&matrix, &betas, &mut rng))
    });
    c.bench_function("matrix/frequencies_1000x100", |b| {
        b.iter(|| matrix.frequencies())
    });
}

fn bench_workload(c: &mut Criterion) {
    let zipf = Zipf::new(500, 1.0);
    c.bench_function("workload/zipf_sample", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| zipf.sample(&mut rng))
    });
    c.bench_function("workload/collection_table_500x200", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(5),
            |mut rng| {
                eppi_workload::collections::CollectionTable::new(500, 200)
                    .max_frequency(25)
                    .build(&mut rng)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    kernels,
    bench_secret_sharing,
    bench_beta_policies,
    bench_publication,
    bench_workload
);
criterion_main!(kernels);
