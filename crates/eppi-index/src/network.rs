//! The information network as one object: the paper's four operations.
//!
//! §II-A formulates the system through exactly four interactions —
//! [`delegate`](InformationNetwork::delegate) (`Delegate(⟨t_j, ε_j⟩, p_i)`),
//! [`construct_ppi`](InformationNetwork::construct_ppi) (`ConstructPPI({ε_j})`),
//! [`query_ppi`](InformationNetwork::query_ppi) (`QueryPPI(t_j) → {p_i}`) and
//! [`auth_search`](InformationNetwork::auth_search) (`AuthSearch(s, {p_i}, t_j)`).
//! This module packages them over the provider endpoints, tracking
//! staleness: delegations after the last construction are not visible in
//! the index until `ConstructPPI` runs again. Between constructions the
//! network aggregates the providers' per-store dirty sets into an
//! [`IndexDelta`] via
//! [`pending_delta`](InformationNetwork::pending_delta), feeding the
//! epoch lifecycle (`eppi-protocol::epoch`) that refreshes only the
//! changed columns without reopening the re-publication attack of
//! `eppi-attacks::refresh`.
//!
//! Construction here uses the trusted in-memory constructor; production
//! deployments run the trusted-party-free protocol from `eppi-protocol`
//! and install its (statistically identical) output via
//! [`install_index`](InformationNetwork::install_index).

use crate::access::{AccessPolicy, SearcherId};
use crate::search::{LocatorService, ProviderEndpoint, SearchOutcome};
use crate::server::PpiServer;
use crate::store::LocalStore;
use eppi_core::construct::{construct, ConstructionConfig};
use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::error::EppiError;
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use rand::Rng;
use std::collections::{BTreeSet, HashMap};

/// A whole information network: providers, delegated records, and the
/// (possibly stale) published index.
#[derive(Debug)]
pub struct InformationNetwork {
    endpoints: Vec<ProviderEndpoint>,
    epsilons: HashMap<OwnerId, Epsilon>,
    config: ConstructionConfig,
    index: Option<PublishedIndex>,
    /// Per-owner frequencies at the last construction — used to decide
    /// whether the incremental extension path is sound.
    old_frequencies: Vec<usize>,
    /// Owner count covered by the currently installed index — the base
    /// of the next [`pending_delta`](Self::pending_delta).
    indexed_owners: usize,
    dirty: bool,
    /// Set when the construction configuration changed: thresholds are
    /// global, so a column-wise delta cannot express the change and the
    /// next refresh must be a full construction.
    config_dirty: bool,
}

impl InformationNetwork {
    /// Creates a network of `providers` providers with open admission
    /// policies and the default construction configuration.
    ///
    /// # Panics
    ///
    /// Panics if `providers == 0`.
    pub fn new(providers: usize) -> Self {
        assert!(providers >= 1, "at least one provider required");
        InformationNetwork {
            endpoints: (0..providers)
                .map(|i| ProviderEndpoint {
                    store: LocalStore::new(ProviderId(i as u32)),
                    policy: AccessPolicy::Open,
                })
                .collect(),
            epsilons: HashMap::new(),
            config: ConstructionConfig::default(),
            index: None,
            old_frequencies: Vec::new(),
            indexed_owners: 0,
            dirty: false,
            config_dirty: false,
        }
    }

    /// Overrides the construction configuration (policy, mixing).
    pub fn set_config(&mut self, config: ConstructionConfig) -> &mut Self {
        self.config = config;
        self.dirty = true;
        self.config_dirty = true;
        self
    }

    /// Sets one provider's admission policy.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn set_policy(&mut self, provider: ProviderId, policy: AccessPolicy) -> &mut Self {
        self.endpoints[provider.index()].policy = policy;
        self
    }

    /// Number of providers `m`.
    pub fn providers(&self) -> usize {
        self.endpoints.len()
    }

    /// One provider's endpoint (store + policy).
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn endpoint(&self, provider: ProviderId) -> &ProviderEndpoint {
        &self.endpoints[provider.index()]
    }

    /// Number of distinct owners seen so far.
    pub fn owners(&self) -> usize {
        self.epsilons
            .keys()
            .map(|o| o.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The paper's `Delegate(⟨t_j, ε_j⟩, p_i)`: stores a record for
    /// `owner` at `provider` with the owner's privacy degree. A later
    /// delegation may raise or lower the owner's ε; the latest value
    /// wins at the next construction.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn delegate(
        &mut self,
        owner: OwnerId,
        eps: Epsilon,
        provider: ProviderId,
        payload: impl Into<String>,
    ) {
        self.endpoints[provider.index()]
            .store
            .delegate(owner, eps, payload);
        self.epsilons.insert(owner, eps);
        self.dirty = true;
    }

    /// Withdraws `owner`'s records from `provider` (the inverse of
    /// `Delegate`). The index becomes stale; because an existing owner's
    /// column changed, the next refresh performs a full reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn withdraw(&mut self, owner: OwnerId, provider: ProviderId) -> usize {
        let removed = self.endpoints[provider.index()].store.withdraw(owner);
        if removed > 0 {
            self.dirty = true;
        }
        removed
    }

    /// Whether records were delegated (or configuration changed) after
    /// the last construction — i.e. the published index is stale.
    pub fn is_stale(&self) -> bool {
        self.dirty || self.index.is_none()
    }

    /// Aggregates the providers' per-store dirty sets into the change
    /// batch bridging the installed index and the current delegations —
    /// the input to `eppi-protocol`'s `construct_delta`.
    ///
    /// Returns `None` when there is no installed index to delta from,
    /// or when the construction configuration changed (thresholds are
    /// global; only a full construction can apply them). An up-to-date
    /// network yields `Some(empty delta)`.
    ///
    /// Owner ids are append-only and columns dense: every id between
    /// the indexed owner count and the current one enters the batch as
    /// `Added`, delegated-to or not. Dirty pre-existing owners are
    /// `Changed` while some endpoint still holds them and `Withdrawn`
    /// once none does.
    pub fn pending_delta(&self) -> Option<IndexDelta> {
        if self.config_dirty {
            return None;
        }
        self.index.as_ref()?;
        let base = self.indexed_owners;
        let mut delta = IndexDelta::new(base);
        for j in base..self.owners() {
            let owner = OwnerId(j as u32);
            delta.record(DeltaEntry {
                owner,
                change: ColumnChange::Added,
                epsilon: self.epsilons.get(&owner).copied().unwrap_or(Epsilon::ZERO),
            });
        }
        let mut touched: BTreeSet<OwnerId> = BTreeSet::new();
        for endpoint in &self.endpoints {
            touched.extend(endpoint.store.dirty_owners());
        }
        for owner in touched {
            if owner.index() >= base {
                continue; // already in the batch as Added
            }
            let held = self.endpoints.iter().any(|e| e.store.holds(owner));
            delta.record(DeltaEntry {
                owner,
                change: if held {
                    ColumnChange::Changed
                } else {
                    ColumnChange::Withdrawn
                },
                epsilon: self.epsilons.get(&owner).copied().unwrap_or(Epsilon::ZERO),
            });
        }
        Some(delta)
    }

    /// Empties every store's dirty set after its changes were folded
    /// into an installed index.
    fn drain_dirty(&mut self) {
        for endpoint in &mut self.endpoints {
            endpoint.store.take_dirty();
        }
    }

    /// Derives the private membership matrix `M` from the providers'
    /// stores (this never leaves the trusted constructor).
    pub fn membership_matrix(&self) -> MembershipMatrix {
        let n = self.owners();
        let mut matrix = MembershipMatrix::new(self.providers(), n);
        for endpoint in &self.endpoints {
            let provider = endpoint.store.provider();
            for owner in endpoint.store.owners() {
                matrix.set(provider, owner, true);
            }
        }
        matrix
    }

    /// The per-owner ε assignment (owners never seen default to ε = 0).
    pub fn epsilon_assignment(&self) -> Vec<Epsilon> {
        let n = self.owners();
        let mut eps = vec![Epsilon::ZERO; n];
        for (&owner, &e) in &self.epsilons {
            eps[owner.index()] = e;
        }
        eps
    }

    /// The paper's `ConstructPPI({ε_j})`: (re)builds the published index
    /// from the current delegations.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (invalid policy parameters); a
    /// network with no delegations yields an empty index error-free only
    /// when at least one owner exists.
    pub fn construct_ppi<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<&PublishedIndex, EppiError> {
        let matrix = self.membership_matrix();
        let epsilons = self.epsilon_assignment();
        if epsilons.is_empty() {
            return Err(EppiError::DimensionMismatch {
                what: "owners",
                expected: 1,
                actual: 0,
            });
        }
        let built = construct(&matrix, &epsilons, self.config, rng)?;
        self.old_frequencies = matrix.frequencies();
        self.indexed_owners = matrix.owners();
        self.index = Some(built.index);
        self.dirty = false;
        self.config_dirty = false;
        self.drain_dirty();
        Ok(self.index.as_ref().expect("just set"))
    }

    /// Incrementally refreshes the index after delegations: when only
    /// *new* owners arrived since the last construction, extends the
    /// index with [`eppi_core::construct::extend_construction`] (old
    /// rows stay bit-for-bit identical, avoiding the re-publication
    /// intersection attack); otherwise falls back to a full
    /// [`construct_ppi`](Self::construct_ppi).
    ///
    /// Returns `true` when the cheap extension path was taken.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn refresh_ppi<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<bool, EppiError> {
        let prev = match (&self.index, self.dirty) {
            (Some(index), true) => index.clone(),
            _ => {
                self.construct_ppi(rng)?;
                return Ok(false);
            }
        };
        let old_n = prev.matrix().owners();
        let matrix = self.membership_matrix();
        // Extension is sound only if the old columns are untouched.
        let old_unchanged = prev.matrix().owner_ids().all(|o| {
            matrix.frequency(o)
                == self
                    .old_frequencies
                    .get(o.index())
                    .copied()
                    .unwrap_or(usize::MAX)
        });
        if matrix.owners() > old_n && old_unchanged {
            let epsilons = self.epsilon_assignment();
            let extended = eppi_core::construct::extend_construction(
                &prev,
                &matrix,
                &epsilons,
                self.config,
                rng,
            )?;
            self.old_frequencies = matrix.frequencies();
            self.indexed_owners = matrix.owners();
            self.index = Some(extended);
            self.dirty = false;
            self.drain_dirty();
            Ok(true)
        } else {
            self.construct_ppi(rng)?;
            Ok(false)
        }
    }

    /// Installs an index constructed elsewhere (e.g. by the distributed
    /// trusted-party-free protocol in `eppi-protocol`).
    ///
    /// # Panics
    ///
    /// Panics if the index's provider count disagrees with the network.
    pub fn install_index(&mut self, index: PublishedIndex) {
        assert_eq!(
            index.matrix().providers(),
            self.providers(),
            "index provider count must match the network"
        );
        self.old_frequencies = self.membership_matrix().frequencies();
        self.indexed_owners = index.matrix().owners();
        self.index = Some(index);
        self.dirty = false;
        self.config_dirty = false;
        self.drain_dirty();
    }

    /// The paper's `QueryPPI(t_j)`: the candidate provider list from the
    /// published index. Empty until an index is constructed.
    pub fn query_ppi(&self, owner: OwnerId) -> Vec<ProviderId> {
        match &self.index {
            Some(index) if owner.index() < index.matrix().owners() => index.query(owner),
            _ => Vec::new(),
        }
    }

    /// The paper's two-phase search: `QueryPPI` followed by
    /// `AuthSearch(s, {p_i}, t_j)` against every candidate.
    pub fn auth_search(&self, searcher: SearcherId, owner: OwnerId) -> SearchOutcome {
        let service = LocatorService::new(
            PpiServer::new(self.index.clone().unwrap_or_else(|| {
                PublishedIndex::new(MembershipMatrix::new(self.providers(), 0), Vec::new())
            })),
            self.endpoints.clone(),
        );
        // Owners outside the index produce an empty candidate list.
        if owner.index() >= self.index.as_ref().map_or(0, |i| i.matrix().owners()) {
            return SearchOutcome {
                records: Vec::new(),
                providers_contacted: 0,
                true_hits: 0,
                false_hits: 0,
                denied: 0,
            };
        }
        service.search(searcher, owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::saturating(v)
    }

    #[test]
    fn four_operations_flow() {
        let mut net = InformationNetwork::new(50);
        // Delegate.
        net.delegate(OwnerId(0), eps(0.8), ProviderId(3), "r1");
        net.delegate(OwnerId(0), eps(0.8), ProviderId(17), "r2");
        net.delegate(OwnerId(1), eps(0.2), ProviderId(5), "r3");
        assert!(net.is_stale());
        assert_eq!(net.owners(), 2);

        // ConstructPPI.
        let mut rng = StdRng::seed_from_u64(1);
        net.construct_ppi(&mut rng).expect("construction");
        assert!(!net.is_stale());

        // QueryPPI: recall for both owners.
        let a = net.query_ppi(OwnerId(0));
        assert!(a.contains(&ProviderId(3)) && a.contains(&ProviderId(17)));

        // AuthSearch: all records found.
        let out = net.auth_search(SearcherId(1), OwnerId(0));
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.true_hits, 2);
    }

    #[test]
    fn delegation_after_construction_marks_stale() {
        let mut net = InformationNetwork::new(10);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(0), "r");
        let mut rng = StdRng::seed_from_u64(2);
        net.construct_ppi(&mut rng).expect("construction");
        assert!(!net.is_stale());
        net.delegate(OwnerId(1), eps(0.5), ProviderId(1), "r2");
        assert!(net.is_stale());
        // The stale index doesn't know the new owner yet.
        assert!(net.query_ppi(OwnerId(1)).is_empty());
        net.construct_ppi(&mut rng).expect("reconstruction");
        assert!(net.query_ppi(OwnerId(1)).contains(&ProviderId(1)));
    }

    #[test]
    fn query_before_construction_is_empty() {
        let mut net = InformationNetwork::new(5);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(0), "r");
        assert!(net.query_ppi(OwnerId(0)).is_empty());
        let out = net.auth_search(SearcherId(0), OwnerId(0));
        assert_eq!(out.providers_contacted, 0);
    }

    #[test]
    fn empty_network_construction_errors() {
        let mut net = InformationNetwork::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(net.construct_ppi(&mut rng).is_err());
    }

    #[test]
    fn denied_providers_block_auth_search() {
        let mut net = InformationNetwork::new(4);
        net.delegate(OwnerId(0), eps(0.0), ProviderId(2), "secret");
        net.set_policy(ProviderId(2), AccessPolicy::Deny);
        let mut rng = StdRng::seed_from_u64(3);
        net.construct_ppi(&mut rng).expect("construction");
        let out = net.auth_search(SearcherId(9), OwnerId(0));
        assert_eq!(out.denied, 1);
        assert!(out.records.is_empty());
    }

    #[test]
    fn install_external_index() {
        let mut net = InformationNetwork::new(4);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(1), "r");
        let mut published = MembershipMatrix::new(4, 1);
        published.set(ProviderId(1), OwnerId(0), true);
        published.set(ProviderId(3), OwnerId(0), true);
        net.install_index(PublishedIndex::new(published, vec![0.5]));
        assert!(!net.is_stale());
        assert_eq!(net.query_ppi(OwnerId(0)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "must match the network")]
    fn install_mismatched_index_panics() {
        let mut net = InformationNetwork::new(4);
        net.install_index(PublishedIndex::new(MembershipMatrix::new(2, 1), vec![0.0]));
    }

    #[test]
    fn refresh_takes_extension_path_for_new_owners_only() {
        let mut net = InformationNetwork::new(60);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(3), "a");
        let mut rng = StdRng::seed_from_u64(8);
        net.construct_ppi(&mut rng).expect("construction");
        let old_row = net.query_ppi(OwnerId(0));

        // A brand-new owner: cheap extension, old row untouched.
        net.delegate(OwnerId(1), eps(0.5), ProviderId(9), "b");
        let extended = net.refresh_ppi(&mut rng).expect("refresh");
        assert!(extended, "new-owner-only delta must extend");
        assert_eq!(net.query_ppi(OwnerId(0)), old_row, "old row re-randomized");
        assert!(net.query_ppi(OwnerId(1)).contains(&ProviderId(9)));

        // A delegation touching an existing owner: full rebuild.
        net.delegate(OwnerId(0), eps(0.5), ProviderId(20), "c");
        let extended = net.refresh_ppi(&mut rng).expect("refresh");
        assert!(!extended, "existing-owner delta needs a full rebuild");
        assert!(net.query_ppi(OwnerId(0)).contains(&ProviderId(20)));
    }

    #[test]
    fn refresh_on_clean_or_empty_network_falls_back() {
        let mut net = InformationNetwork::new(10);
        net.delegate(OwnerId(0), eps(0.3), ProviderId(1), "r");
        let mut rng = StdRng::seed_from_u64(9);
        // First refresh = first construction.
        assert!(!net.refresh_ppi(&mut rng).expect("refresh"));
        // Nothing changed: refresh reconstructs (no-op path).
        assert!(!net.refresh_ppi(&mut rng).expect("refresh"));
    }

    #[test]
    fn withdraw_forces_full_rebuild() {
        let mut net = InformationNetwork::new(30);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(2), "a");
        net.delegate(OwnerId(0), eps(0.5), ProviderId(9), "b");
        let mut rng = StdRng::seed_from_u64(12);
        net.construct_ppi(&mut rng).expect("construction");
        assert_eq!(net.withdraw(OwnerId(0), ProviderId(9)), 1);
        assert!(net.is_stale());
        let extended = net.refresh_ppi(&mut rng).expect("refresh");
        assert!(!extended, "withdrawal must trigger a full rebuild");
        // The withdrawn provider may still appear as a *decoy*, but the
        // record is gone from its store.
        assert!(!net.endpoint(ProviderId(9)).store.holds(OwnerId(0)));
        // The remaining true provider is always in the answer.
        assert!(net.query_ppi(OwnerId(0)).contains(&ProviderId(2)));
    }

    #[test]
    fn pending_delta_tracks_changed_added_and_withdrawn_columns() {
        let mut net = InformationNetwork::new(12);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(1), "a");
        net.delegate(OwnerId(1), eps(0.3), ProviderId(2), "b");
        net.delegate(OwnerId(1), eps(0.3), ProviderId(7), "b2");
        // No index yet: nothing to delta from.
        assert!(net.pending_delta().is_none());
        let mut rng = StdRng::seed_from_u64(21);
        net.construct_ppi(&mut rng).expect("construction");
        // Up to date: empty batch.
        let d = net.pending_delta().expect("delta");
        assert!(d.is_empty());
        assert_eq!((d.base_owners(), d.owners()), (2, 2));

        // Owner 0 gains a provider (Changed), owner 1 withdraws from one
        // of two providers (still held ⇒ Changed), owner 2 is new.
        net.delegate(OwnerId(0), eps(0.5), ProviderId(4), "a2");
        net.withdraw(OwnerId(1), ProviderId(7));
        net.delegate(OwnerId(2), eps(0.9), ProviderId(0), "c");
        let d = net.pending_delta().expect("delta");
        assert_eq!((d.base_owners(), d.owners()), (2, 3));
        let changes: Vec<_> = d.entries().map(|e| (e.owner, e.change)).collect();
        assert_eq!(
            changes,
            vec![
                (OwnerId(0), ColumnChange::Changed),
                (OwnerId(1), ColumnChange::Changed),
                (OwnerId(2), ColumnChange::Added),
            ]
        );

        // Withdrawing everywhere flips the column to Withdrawn.
        net.withdraw(OwnerId(1), ProviderId(2));
        let d = net.pending_delta().expect("delta");
        assert!(d
            .entries()
            .any(|e| e.owner == OwnerId(1) && e.change == ColumnChange::Withdrawn));

        // Re-construction drains the batch.
        net.construct_ppi(&mut rng).expect("reconstruction");
        assert!(net.pending_delta().expect("delta").is_empty());
    }

    #[test]
    fn config_change_disables_the_delta_path() {
        let mut net = InformationNetwork::new(6);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(0), "r");
        let mut rng = StdRng::seed_from_u64(22);
        net.construct_ppi(&mut rng).expect("construction");
        net.set_config(ConstructionConfig::default());
        assert!(
            net.pending_delta().is_none(),
            "global thresholds changed: only a full construction applies them"
        );
        net.construct_ppi(&mut rng).expect("reconstruction");
        assert!(net.pending_delta().is_some());
    }

    #[test]
    fn install_index_drains_the_pending_batch() {
        let mut net = InformationNetwork::new(4);
        net.delegate(OwnerId(0), eps(0.5), ProviderId(1), "r");
        let mut rng = StdRng::seed_from_u64(23);
        net.construct_ppi(&mut rng).expect("construction");
        net.delegate(OwnerId(1), eps(0.2), ProviderId(3), "s");
        assert_eq!(net.pending_delta().expect("delta").len(), 1);
        // Install an externally constructed two-owner index: the batch
        // is considered folded in.
        let mut published = MembershipMatrix::new(4, 2);
        published.set(ProviderId(1), OwnerId(0), true);
        published.set(ProviderId(3), OwnerId(1), true);
        net.install_index(PublishedIndex::new(published, vec![0.5, 0.2]));
        let d = net.pending_delta().expect("delta");
        assert!(d.is_empty());
        assert_eq!(d.base_owners(), 2);
    }

    #[test]
    fn latest_epsilon_wins() {
        let mut net = InformationNetwork::new(8);
        net.delegate(OwnerId(0), eps(0.2), ProviderId(0), "a");
        net.delegate(OwnerId(0), eps(0.9), ProviderId(1), "b");
        assert_eq!(net.epsilon_assignment()[0], eps(0.9));
    }
}
