//! The third-party PPI server.
//!
//! Hosts the published (obscured) index `M'` and answers
//! `QueryPPI(t_j)` lookups. The server is *untrusted*: everything it
//! stores is public, so all privacy must already be baked into the
//! published index — which is exactly what the ε-PPI construction
//! guarantees.

use eppi_core::model::{OwnerId, ProviderId, PublishedIndex};
use std::collections::BTreeMap;

/// The locator-service index server.
#[derive(Debug, Clone, Default)]
pub struct PpiServer {
    index: Option<PublishedIndex>,
}

impl PpiServer {
    /// Installs a constructed index on the server.
    pub fn new(index: PublishedIndex) -> Self {
        PpiServer { index: Some(index) }
    }

    /// Number of providers in the installed index (0 when empty).
    pub fn providers(&self) -> usize {
        self.index.as_ref().map_or(0, |i| i.matrix().providers())
    }

    /// Number of owners in the installed index (0 when empty).
    pub fn owners(&self) -> usize {
        self.index.as_ref().map_or(0, |i| i.matrix().owners())
    }

    /// Evaluates `QueryPPI(owner)`: the candidate provider list. Query
    /// evaluation is trivial (§II-A) — a row lookup in the published
    /// matrix.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        self.index
            .as_ref()
            .map_or_else(Vec::new, |i| i.query(owner))
    }

    /// Evaluates a batch of `QueryPPI` lookups; `result[i]` answers
    /// `owners[i]`. Semantically identical to mapping
    /// [`query`](Self::query) over the slice — the batched entry point
    /// exists so callers (and the `eppi-serve` engine) can amortize
    /// per-request overhead. Duplicate owners in the batch are
    /// coalesced: each unique row is resolved once and cloned into
    /// every position asking for it.
    pub fn query_batch(&self, owners: &[OwnerId]) -> Vec<Vec<ProviderId>> {
        let mut cache: BTreeMap<OwnerId, Vec<ProviderId>> = BTreeMap::new();
        owners
            .iter()
            .map(|&o| cache.entry(o).or_insert_with(|| self.query(o)).clone())
            .collect()
    }

    /// The installed index, if any — public data by design.
    pub fn index(&self) -> Option<&PublishedIndex> {
        self.index.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::MembershipMatrix;

    #[test]
    fn query_returns_published_row() {
        let mut m = MembershipMatrix::new(3, 2);
        m.set(ProviderId(0), OwnerId(1), true);
        m.set(ProviderId(2), OwnerId(1), true);
        let server = PpiServer::new(PublishedIndex::new(m, vec![0.0, 0.5]));
        assert_eq!(server.query(OwnerId(1)), vec![ProviderId(0), ProviderId(2)]);
        assert!(server.query(OwnerId(0)).is_empty());
        assert_eq!(server.providers(), 3);
        assert_eq!(server.owners(), 2);
    }

    #[test]
    fn query_batch_matches_single_queries() {
        let mut m = MembershipMatrix::new(4, 3);
        m.set(ProviderId(1), OwnerId(0), true);
        m.set(ProviderId(3), OwnerId(2), true);
        m.set(ProviderId(0), OwnerId(2), true);
        let server = PpiServer::new(PublishedIndex::new(m, vec![0.0; 3]));
        let owners = [OwnerId(2), OwnerId(0), OwnerId(1), OwnerId(2)];
        let batched = server.query_batch(&owners);
        assert_eq!(batched.len(), owners.len());
        for (o, row) in owners.iter().zip(&batched) {
            assert_eq!(row, &server.query(*o));
        }
        assert_eq!(batched[0], vec![ProviderId(0), ProviderId(3)]);
        assert!(PpiServer::default()
            .query_batch(&owners)
            .iter()
            .all(Vec::is_empty));
    }

    #[test]
    fn query_batch_coalesces_duplicate_owners() {
        let mut m = MembershipMatrix::new(5, 4);
        m.set(ProviderId(0), OwnerId(1), true);
        m.set(ProviderId(4), OwnerId(1), true);
        m.set(ProviderId(2), OwnerId(3), true);
        let server = PpiServer::new(PublishedIndex::new(m, vec![0.0; 4]));
        // Heavily duplicated batch with the duplicates interleaved.
        let owners = [
            OwnerId(1),
            OwnerId(3),
            OwnerId(1),
            OwnerId(0),
            OwnerId(3),
            OwnerId(0),
            OwnerId(1),
        ];
        let batched = server.query_batch(&owners);
        assert_eq!(batched.len(), owners.len());
        for (o, row) in owners.iter().zip(&batched) {
            assert_eq!(row, &server.query(*o), "owner {o}");
        }
        // Every duplicate position carries the identical coalesced row.
        assert_eq!(batched[0], batched[2]);
        assert_eq!(batched[2], batched[6]);
        assert_eq!(batched[1], batched[4]);
        assert!(batched[3].is_empty() && batched[5].is_empty());
    }

    #[test]
    fn empty_server_answers_nothing() {
        let server = PpiServer::default();
        assert!(server.query(OwnerId(0)).is_empty());
        assert_eq!(server.providers(), 0);
        assert!(server.index().is_none());
    }
}
