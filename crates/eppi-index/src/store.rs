//! Provider-side record repositories.
//!
//! Each provider keeps an access-controlled local store of the personal
//! records delegated to it (§II-A: `Delegate(⟨t_j, ε_j⟩, p_i)`). The
//! stores are the ground truth that the second search phase
//! (`AuthSearch`) queries after the locator service has produced its
//! candidate provider list.

use eppi_core::model::{Epsilon, OwnerId, ProviderId};
use std::collections::{BTreeSet, HashMap};

/// One personal record delegated by an owner to a provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The owner the record belongs to.
    pub owner: OwnerId,
    /// Opaque record payload (e.g. an encounter summary in the HIE
    /// example).
    pub payload: String,
}

/// A provider's local, access-controlled record repository.
#[derive(Debug, Clone)]
pub struct LocalStore {
    provider: ProviderId,
    records: HashMap<OwnerId, Vec<Record>>,
    epsilons: HashMap<OwnerId, Epsilon>,
    /// Owners whose local membership bit may have flipped since the
    /// last time the delta was drained — the provider-side half of the
    /// epoch lifecycle's change batch (DESIGN.md §10).
    dirty: BTreeSet<OwnerId>,
}

impl LocalStore {
    /// Creates an empty store for `provider`.
    pub fn new(provider: ProviderId) -> Self {
        LocalStore {
            provider,
            records: HashMap::new(),
            epsilons: HashMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// The provider owning this store.
    pub fn provider(&self) -> ProviderId {
        self.provider
    }

    /// The `Delegate` operation: stores a record for `owner` together
    /// with the owner's privacy degree.
    pub fn delegate(&mut self, owner: OwnerId, eps: Epsilon, payload: impl Into<String>) {
        self.records.entry(owner).or_default().push(Record {
            owner,
            payload: payload.into(),
        });
        self.epsilons.insert(owner, eps);
        self.dirty.insert(owner);
    }

    /// Withdraws all of `owner`'s records (e.g. the owner revokes the
    /// delegation or transfers care). Returns how many records were
    /// removed.
    pub fn withdraw(&mut self, owner: OwnerId) -> usize {
        self.epsilons.remove(&owner);
        let removed = self.records.remove(&owner).map_or(0, |r| r.len());
        if removed > 0 {
            self.dirty.insert(owner);
        }
        removed
    }

    /// Whether the store holds any records of `owner` (the provider's
    /// membership bit `M(i, j)`).
    pub fn holds(&self, owner: OwnerId) -> bool {
        self.records.contains_key(&owner)
    }

    /// Local search for an owner's records (only reachable after
    /// authorization).
    pub fn search(&self, owner: OwnerId) -> &[Record] {
        self.records.get(&owner).map_or(&[], Vec::as_slice)
    }

    /// The privacy degree the owner attached when delegating, if any.
    pub fn epsilon_of(&self, owner: OwnerId) -> Option<Epsilon> {
        self.epsilons.get(&owner).copied()
    }

    /// The owners with records here.
    pub fn owners(&self) -> impl Iterator<Item = OwnerId> + '_ {
        self.records.keys().copied()
    }

    /// Total number of records stored.
    pub fn len(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The owners touched (delegated to or withdrawn from) since the
    /// dirty set was last drained, in ascending order.
    pub fn dirty_owners(&self) -> impl Iterator<Item = OwnerId> + '_ {
        self.dirty.iter().copied()
    }

    /// Whether any delegation or withdrawal happened since the last
    /// [`take_dirty`](Self::take_dirty).
    pub fn has_changes(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Drains and returns the dirty set (ascending) — called when the
    /// change batch is folded into a constructed index.
    pub fn take_dirty(&mut self) -> Vec<OwnerId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::saturating(v)
    }

    #[test]
    fn withdraw_removes_all_records() {
        let mut s = LocalStore::new(ProviderId(1));
        s.delegate(OwnerId(4), eps(0.5), "a");
        s.delegate(OwnerId(4), eps(0.5), "b");
        assert_eq!(s.withdraw(OwnerId(4)), 2);
        assert!(!s.holds(OwnerId(4)));
        assert_eq!(s.epsilon_of(OwnerId(4)), None);
        assert_eq!(s.withdraw(OwnerId(4)), 0, "idempotent");
    }

    #[test]
    fn delegate_and_search() {
        let mut s = LocalStore::new(ProviderId(3));
        assert!(s.is_empty());
        s.delegate(OwnerId(1), eps(0.5), "visit 2026-01-02");
        s.delegate(OwnerId(1), eps(0.5), "visit 2026-03-04");
        s.delegate(OwnerId(2), eps(0.9), "lab result");
        assert_eq!(s.len(), 3);
        assert!(s.holds(OwnerId(1)));
        assert!(!s.holds(OwnerId(7)));
        assert_eq!(s.search(OwnerId(1)).len(), 2);
        assert_eq!(s.search(OwnerId(7)), &[]);
        assert_eq!(s.epsilon_of(OwnerId(2)), Some(eps(0.9)));
        assert_eq!(s.epsilon_of(OwnerId(9)), None);
        let mut owners: Vec<_> = s.owners().collect();
        owners.sort();
        assert_eq!(owners, vec![OwnerId(1), OwnerId(2)]);
    }

    #[test]
    fn dirty_tracking_records_touched_owners() {
        let mut s = LocalStore::new(ProviderId(0));
        assert!(!s.has_changes());
        s.delegate(OwnerId(3), eps(0.5), "a");
        s.delegate(OwnerId(1), eps(0.5), "b");
        s.delegate(OwnerId(3), eps(0.5), "c");
        assert!(s.has_changes());
        assert_eq!(
            s.dirty_owners().collect::<Vec<_>>(),
            vec![OwnerId(1), OwnerId(3)]
        );
        assert_eq!(s.take_dirty(), vec![OwnerId(1), OwnerId(3)]);
        assert!(!s.has_changes());
        // A no-op withdraw doesn't resurrect the dirty bit…
        assert_eq!(s.withdraw(OwnerId(9)), 0);
        assert!(!s.has_changes());
        // …but a real withdrawal does.
        assert_eq!(s.withdraw(OwnerId(1)), 1);
        assert_eq!(s.take_dirty(), vec![OwnerId(1)]);
    }
}
