//! Per-provider authentication/authorization for `AuthSearch`.
//!
//! The paper assumes "each provider has already set up its local access
//! control subsystem for authorized access to the private personal
//! records" (§II-A). This module models that subsystem: a searcher must
//! be admitted by a provider's policy before it may run a local search.

use eppi_core::model::OwnerId;
use std::collections::HashSet;
use std::fmt;

/// Identifier of a data searcher (e.g. the emergency-room physician of
/// the paper's motivating HIE scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SearcherId(pub u32);

impl fmt::Display for SearcherId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A provider's admission policy for searchers.
#[derive(Debug, Clone, Default)]
pub enum AccessPolicy {
    /// Admit every authenticated searcher (e.g. break-glass emergency
    /// access).
    #[default]
    Open,
    /// Admit only enrolled searchers.
    Allowlist(HashSet<SearcherId>),
    /// Admit enrolled searchers, and only for specific owners (e.g. a
    /// treating physician for their patient).
    PerOwner(HashSet<(SearcherId, OwnerId)>),
    /// Reject everyone (provider offline or out of network).
    Deny,
}

impl AccessPolicy {
    /// Whether `searcher` may search for `owner`'s records.
    pub fn authorize(&self, searcher: SearcherId, owner: OwnerId) -> bool {
        match self {
            AccessPolicy::Open => true,
            AccessPolicy::Allowlist(set) => set.contains(&searcher),
            AccessPolicy::PerOwner(set) => set.contains(&(searcher, owner)),
            AccessPolicy::Deny => false,
        }
    }

    /// Convenience constructor for an allowlist.
    pub fn allowing(searchers: impl IntoIterator<Item = SearcherId>) -> Self {
        AccessPolicy::Allowlist(searchers.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_admits_everyone() {
        assert!(AccessPolicy::Open.authorize(SearcherId(1), OwnerId(2)));
    }

    #[test]
    fn deny_rejects_everyone() {
        assert!(!AccessPolicy::Deny.authorize(SearcherId(1), OwnerId(2)));
    }

    #[test]
    fn allowlist_checks_searcher() {
        let p = AccessPolicy::allowing([SearcherId(1), SearcherId(2)]);
        assert!(p.authorize(SearcherId(1), OwnerId(0)));
        assert!(!p.authorize(SearcherId(3), OwnerId(0)));
    }

    #[test]
    fn per_owner_checks_pair() {
        let p = AccessPolicy::PerOwner([(SearcherId(1), OwnerId(5))].into_iter().collect());
        assert!(p.authorize(SearcherId(1), OwnerId(5)));
        assert!(!p.authorize(SearcherId(1), OwnerId(6)));
        assert!(!p.authorize(SearcherId(2), OwnerId(5)));
    }

    #[test]
    fn searcher_display() {
        assert_eq!(SearcherId(9).to_string(), "s9");
    }
}
