//! The two-phase search procedure (§II-A, Fig. 1).
//!
//! Phase 1 (`QueryPPI`): the searcher asks the untrusted PPI server for
//! the candidate provider list of an owner. Phase 2 (`AuthSearch`): the
//! searcher contacts each candidate, gets authorized, and searches the
//! provider's local repository. False positives in the index cost extra
//! provider contacts — the *search overhead* that privacy buys.

use crate::access::{AccessPolicy, SearcherId};
use crate::server::PpiServer;
use crate::store::{LocalStore, Record};
use eppi_core::model::{OwnerId, ProviderId};

/// A provider endpoint visible to searchers: repository + admission
/// policy.
#[derive(Debug, Clone)]
pub struct ProviderEndpoint {
    /// The provider's record repository.
    pub store: LocalStore,
    /// The provider's admission policy.
    pub policy: AccessPolicy,
}

/// Outcome of one two-phase search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// All records found for the owner.
    pub records: Vec<Record>,
    /// Providers returned by `QueryPPI` (phase-1 answer size = search
    /// cost).
    pub providers_contacted: usize,
    /// Contacts that found records (true positives).
    pub true_hits: usize,
    /// Contacts that found nothing (the index's false positives).
    pub false_hits: usize,
    /// Contacts rejected by the provider's access control.
    pub denied: usize,
}

impl SearchOutcome {
    /// The fraction of contacted providers that were false positives —
    /// what the searcher pays for the owner's privacy.
    pub fn overhead(&self) -> f64 {
        if self.providers_contacted == 0 {
            0.0
        } else {
            self.false_hits as f64 / self.providers_contacted as f64
        }
    }
}

/// The full locator-service deployment: the PPI server plus every
/// provider endpoint.
#[derive(Debug, Default)]
pub struct LocatorService {
    server: PpiServer,
    endpoints: Vec<ProviderEndpoint>,
}

impl LocatorService {
    /// Assembles the service.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint count differs from the index's provider
    /// count.
    pub fn new(server: PpiServer, endpoints: Vec<ProviderEndpoint>) -> Self {
        assert_eq!(
            server.providers(),
            endpoints.len(),
            "one endpoint per indexed provider required"
        );
        LocatorService { server, endpoints }
    }

    /// The PPI server.
    pub fn server(&self) -> &PpiServer {
        &self.server
    }

    /// A provider endpoint.
    pub fn endpoint(&self, provider: ProviderId) -> &ProviderEndpoint {
        &self.endpoints[provider.index()]
    }

    /// Runs the two-phase search: `QueryPPI(owner)` followed by
    /// `AuthSearch` against every candidate provider.
    pub fn search(&self, searcher: SearcherId, owner: OwnerId) -> SearchOutcome {
        let candidates = self.server.query(owner);
        let mut outcome = SearchOutcome {
            records: Vec::new(),
            providers_contacted: candidates.len(),
            true_hits: 0,
            false_hits: 0,
            denied: 0,
        };
        for provider in candidates {
            let endpoint = &self.endpoints[provider.index()];
            if !endpoint.policy.authorize(searcher, owner) {
                outcome.denied += 1;
                continue;
            }
            let found = endpoint.store.search(owner);
            if found.is_empty() {
                outcome.false_hits += 1;
            } else {
                outcome.true_hits += 1;
                outcome.records.extend_from_slice(found);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{Epsilon, MembershipMatrix, PublishedIndex};

    /// Network: p0 and p1 truly hold t0; index additionally (falsely)
    /// lists p2.
    fn service(policy2: AccessPolicy) -> LocatorService {
        let mut published = MembershipMatrix::new(4, 1);
        for p in [0u32, 1, 2] {
            published.set(ProviderId(p), OwnerId(0), true);
        }
        let server = PpiServer::new(PublishedIndex::new(published, vec![0.5]));

        let mut endpoints: Vec<ProviderEndpoint> = (0..4)
            .map(|i| ProviderEndpoint {
                store: LocalStore::new(ProviderId(i)),
                policy: AccessPolicy::Open,
            })
            .collect();
        endpoints[0]
            .store
            .delegate(OwnerId(0), Epsilon::saturating(0.5), "rec-a");
        endpoints[1]
            .store
            .delegate(OwnerId(0), Epsilon::saturating(0.5), "rec-b");
        endpoints[2].policy = policy2;
        LocatorService::new(server, endpoints)
    }

    #[test]
    fn search_finds_all_records_with_full_recall() {
        let svc = service(AccessPolicy::Open);
        let out = svc.search(SearcherId(1), OwnerId(0));
        assert_eq!(out.providers_contacted, 3);
        assert_eq!(out.true_hits, 2);
        assert_eq!(out.false_hits, 1);
        assert_eq!(out.denied, 0);
        assert_eq!(out.records.len(), 2);
        assert!((out.overhead() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn denied_contact_is_counted_separately() {
        let svc = service(AccessPolicy::Deny);
        let out = svc.search(SearcherId(1), OwnerId(0));
        assert_eq!(out.denied, 1);
        assert_eq!(out.false_hits, 0, "denied contact is not a false hit");
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn unknown_owner_searches_nothing() {
        let mut published = MembershipMatrix::new(2, 2);
        published.set(ProviderId(0), OwnerId(0), true);
        let server = PpiServer::new(PublishedIndex::new(published, vec![0.0, 0.0]));
        let endpoints = (0..2)
            .map(|i| ProviderEndpoint {
                store: LocalStore::new(ProviderId(i)),
                policy: AccessPolicy::Open,
            })
            .collect();
        let svc = LocatorService::new(server, endpoints);
        let out = svc.search(SearcherId(0), OwnerId(1));
        assert_eq!(out.providers_contacted, 0);
        assert_eq!(out.overhead(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one endpoint per indexed provider")]
    fn endpoint_count_validated() {
        let published = MembershipMatrix::new(2, 1);
        let server = PpiServer::new(PublishedIndex::new(published, vec![0.0]));
        LocatorService::new(server, vec![]);
    }
}
