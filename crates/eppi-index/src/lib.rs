//! # eppi-index — the privacy-preserving locator service
//!
//! The service layer of the ε-PPI reproduction (§II-A, Fig. 1 of the
//! paper): an untrusted third-party [`server::PpiServer`] hosting the
//! published index, per-provider record repositories
//! ([`store::LocalStore`]) with access control ([`access`]), and the
//! two-phase search procedure ([`search::LocatorService`]):
//! `QueryPPI(t_j)` followed by `AuthSearch(s, {p_i}, t_j)`.
//!
//! ```
//! use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
//! use eppi_index::access::{AccessPolicy, SearcherId};
//! use eppi_index::search::{LocatorService, ProviderEndpoint};
//! use eppi_index::server::PpiServer;
//! use eppi_index::store::LocalStore;
//!
//! // One provider holds the owner's record; the published index also
//! // (falsely) lists a second provider for privacy.
//! let mut published = MembershipMatrix::new(2, 1);
//! published.set(ProviderId(0), OwnerId(0), true);
//! published.set(ProviderId(1), OwnerId(0), true);
//! let server = PpiServer::new(PublishedIndex::new(published, vec![0.5]));
//!
//! let mut store0 = LocalStore::new(ProviderId(0));
//! store0.delegate(OwnerId(0), Epsilon::new(0.5)?, "medical history");
//! let endpoints = vec![
//!     ProviderEndpoint { store: store0, policy: AccessPolicy::Open },
//!     ProviderEndpoint { store: LocalStore::new(ProviderId(1)), policy: AccessPolicy::Open },
//! ];
//! let service = LocatorService::new(server, endpoints);
//!
//! let outcome = service.search(SearcherId(1), OwnerId(0));
//! assert_eq!(outcome.records.len(), 1);   // found everything (100% recall)
//! assert_eq!(outcome.false_hits, 1);      // paid one extra contact for privacy
//! # Ok::<(), eppi_core::error::EppiError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod codec;
pub mod network;
pub mod search;
pub mod server;
pub mod store;

pub use access::{AccessPolicy, SearcherId};
pub use codec::{
    crc32, decode as decode_index, decode_epoch_record, decode_serve_snapshot,
    encode as encode_index, encode_epoch_record, encode_serve_snapshot, CodecError, ConfigRecord,
    EpochRecord, ServeShardRecord, ServeSnapshotRecord, ShardRowsRecord,
};
pub use network::InformationNetwork;
pub use search::{LocatorService, ProviderEndpoint, SearchOutcome};
pub use server::PpiServer;
pub use store::{LocalStore, Record};
