//! Compact binary serialization of the published index and of full
//! epoch snapshots.
//!
//! A real locator service persists and ships the index: the PPI server
//! loads it at boot, providers can mirror it, auditors archive it. The
//! allowed dependency set has no serialization backend, so the format is
//! hand-rolled: a fixed little-endian header, the row-major matrix
//! bitmap, then the per-owner β values — versioned and fully validated
//! on load (truncated, oversized or inconsistent input is rejected, not
//! trusted).
//!
//! **Version 1** serializes a bare [`PublishedIndex`]:
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        = 1
//! providers u32, owners u32
//! bitmap  ⌈providers·owners / 8⌉ bytes, row-major, LSB-first
//! betas   owners × f64 (little-endian bits)
//! ```
//!
//! **Version 2** serializes a full epoch snapshot ([`EpochRecord`]):
//! the published index plus the retained protocol state a delta
//! construction resumes from — mix decisions, thresholds, ε's, the
//! coordinator share vectors, λ, the common-identity count and the
//! lineage configuration — CRC-32 checksummed so on-disk corruption is
//! detected, not served:
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        = 2
//! epoch u64, lambda f64, common_count u64
//! coordinators u32
//! policy_tag u8, policy_param f64, coin_bits u32
//! link_latency_us f64, link_bandwidth f64
//! backend_tag u8, seed u64
//! providers u32, owners u32
//! bitmap      ⌈providers·owners / 8⌉ bytes (as v1)
//! betas       owners × f64
//! decisions   ⌈owners / 8⌉ bytes, LSB-first
//! thresholds  owners × u64
//! epsilons    owners × f64
//! shares      coordinators × owners × u64
//! crc32 u32          (IEEE, over every preceding byte)
//! ```
//!
//! **Version 3** serializes a *serving layout* ([`ServeSnapshotRecord`]):
//! the sharded, physically laid-out form a serve node boots from — the
//! extendable shard-map manifest plus each shard's owner list and its
//! row block in the backend it was built with (flat dense words, or the
//! EWAH-style compressed token stream and offset table of
//! `eppi_core::rowstore::CompressedRows`) — CRC-32 checksummed like v2:
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        = 3
//! snapshot_version u64
//! backend_tag u8     (0 = dense, 1 = compressed)
//! providers u32, owners u32
//! base_shards u32, base_owners u32, append_capacity u32
//! shard_count u32
//! betas   owners × f64
//! per shard:
//!   owner_count u32
//!   owners      owner_count × u32
//!   dense:      owner_count · words_per_row × u64
//!   compressed: token_count u32,
//!               offsets (owner_count + 1) × u32,
//!               stream  token_count × u64
//! crc32 u32          (IEEE, over every preceding byte)
//! ```
//!
//! **Compatibility rule (v1 → v2):** v2 is a strict superset — the
//! matrix bitmap and β block keep their v1 layout byte for byte — but
//! the two versions are *not* interchangeable on the wire. [`decode`]
//! accepts only version 1 and rejects a v2 snapshot with
//! [`CodecError::UnsupportedVersion`], so a plain serve node can never
//! mistake a coordinator checkpoint (which carries share vectors) for a
//! public index; [`decode_epoch_record`] likewise accepts only version
//! 2, and [`decode_serve_snapshot`] only version 3. Readers of any
//! version reject the others loudly instead of guessing.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi_core::rows::row_words;
use eppi_core::rowstore::RowBackend;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"EPPI";
const VERSION: u16 = 1;
const VERSION_EPOCH: u16 = 2;
const VERSION_SERVE: u16 = 3;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding v2 epoch records
/// and the durability layer's write-ahead log frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Errors raised when decoding a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer is shorter than the declared content.
    Truncated {
        /// Bytes expected at minimum.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The magic header is missing.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A β value decoded outside `\[0, 1\]` or non-finite.
    InvalidBeta {
        /// The offending owner index.
        owner: u32,
    },
    /// Trailing bytes after the declared content.
    TrailingBytes(usize),
    /// The CRC-32 stored in a v2 record disagrees with the content.
    BadChecksum {
        /// Checksum declared by the record.
        stored: u32,
        /// Checksum recomputed over the content.
        computed: u32,
    },
    /// A scalar field decoded outside its valid domain.
    InvalidField {
        /// The offending field, e.g. `"lambda"`.
        field: &'static str,
    },
    /// An ε decoded outside `\[0, 1\]` or non-finite.
    InvalidEpsilon {
        /// The offending owner index.
        owner: u32,
    },
    /// An enum tag (policy or backend) has no known meaning.
    UnknownTag {
        /// Which tag field, e.g. `"policy"`.
        field: &'static str,
        /// The unknown tag value.
        tag: u8,
    },
    /// A serve-snapshot shard failed structural validation.
    InvalidShard {
        /// The offending shard index.
        shard: u32,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated index: need at least {expected} bytes, got {actual}"
                )
            }
            CodecError::BadMagic => write!(f, "missing EPPI magic header"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            CodecError::InvalidBeta { owner } => {
                write!(f, "invalid β for owner {owner}: not a probability")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after index content"),
            CodecError::BadChecksum { stored, computed } => write!(
                f,
                "checksum mismatch: record declares {stored:#010x}, content is {computed:#010x}"
            ),
            CodecError::InvalidField { field } => {
                write!(f, "field {field} decoded outside its valid domain")
            }
            CodecError::InvalidEpsilon { owner } => {
                write!(f, "invalid ε for owner {owner}: not in [0, 1]")
            }
            CodecError::UnknownTag { field, tag } => {
                write!(f, "unknown {field} tag {tag}")
            }
            CodecError::InvalidShard { shard, reason } => {
                write!(f, "invalid shard {shard}: {reason}")
            }
        }
    }
}

impl Error for CodecError {}

/// Packs the matrix as the shared row-major LSB-first bitmap (the
/// layout both format versions use).
fn pack_matrix(matrix: &MembershipMatrix) -> Vec<u8> {
    let (m, n) = (matrix.providers(), matrix.owners());
    let mut bitmap = vec![0u8; (m * n).div_ceil(8)];
    for p in 0..m {
        for o in 0..n {
            if matrix.get(ProviderId(p as u32), OwnerId(o as u32)) {
                let bit = p * n + o;
                bitmap[bit / 8] |= 1 << (bit % 8);
            }
        }
    }
    bitmap
}

/// Rebuilds a matrix from the shared bitmap layout. `bitmap` must hold
/// exactly `⌈m·n/8⌉` bytes (the caller has already length-checked).
fn unpack_matrix(bitmap: &[u8], m: usize, n: usize) -> MembershipMatrix {
    let mut matrix = MembershipMatrix::new(m, n);
    for p in 0..m {
        for o in 0..n {
            let bit = p * n + o;
            if bitmap[bit / 8] & (1 << (bit % 8)) != 0 {
                matrix.set(ProviderId(p as u32), OwnerId(o as u32), true);
            }
        }
    }
    matrix
}

/// Serializes a published index to the versioned binary format.
pub fn encode(index: &PublishedIndex) -> Vec<u8> {
    let matrix = index.matrix();
    let (m, n) = (matrix.providers(), matrix.owners());
    let bitmap = pack_matrix(matrix);
    let mut out = Vec::with_capacity(4 + 2 + 8 + bitmap.len() + n * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&bitmap);
    for &beta in index.betas() {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    out
}

/// Deserializes an index, validating structure and every β.
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input; never panics on
/// untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<PublishedIndex, CodecError> {
    let need_header = 4 + 2 + 8;
    if bytes.len() < need_header {
        return Err(CodecError::Truncated {
            expected: need_header,
            actual: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let m = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    let n = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes")) as usize;
    let bitmap_len = (m * n).div_ceil(8);
    let total = need_header + bitmap_len + n * 8;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            expected: total,
            actual: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes(bytes.len() - total));
    }

    let matrix = unpack_matrix(&bytes[need_header..need_header + bitmap_len], m, n);

    let mut betas = Vec::with_capacity(n);
    let beta_bytes = &bytes[need_header + bitmap_len..];
    for (o, chunk) in beta_bytes.chunks_exact(8).enumerate() {
        let beta = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }
    Ok(PublishedIndex::new(matrix, betas))
}

/// The lineage configuration of a v2 epoch record, as plain tagged
/// scalars.
///
/// The codec layer stores protocol configuration structurally (tags
/// plus parameters) rather than by type, so this crate stays free of a
/// protocol dependency; the durability layer maps these fields onto the
/// real `ProtocolConfig` and rejects tags it does not know.
/// Tag meanings: policy `0` = basic, `1` = incremented (`param` = Δ),
/// `2` = Chernoff (`param` = γ); backend `0` = in-process, `1` =
/// threaded, `2` = simulated, low-bits `3` = pipelined with the worker
/// count in the high five bits (which must then be non-zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigRecord {
    /// Coordinator count `c`.
    pub coordinators: u32,
    /// β-policy discriminant (0, 1 or 2 — see the type docs).
    pub policy_tag: u8,
    /// The policy's parameter (Δ or γ; 0 for the basic policy).
    pub policy_param: f64,
    /// Bits per Bernoulli(λ) mixing coin.
    pub coin_bits: u32,
    /// Link latency in µs (traffic accounting model).
    pub link_latency_us: f64,
    /// Link bandwidth in bytes/µs.
    pub link_bandwidth: f64,
    /// MPC backend discriminant (low bits 0–3 — see the type docs; the
    /// pipelined backend packs its worker count into the high bits).
    pub backend_tag: u8,
    /// The lineage seed keying every publication and mix coin.
    pub seed: u64,
}

/// A full epoch snapshot: everything a crashed coordinator set needs to
/// resume the delta lineage without a rebuild (DESIGN.md §10–11).
///
/// ε's are carried as raw `f64` here; the protocol layer re-wraps them
/// (the codec still validates the `\[0, 1\]` range on load).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The published, obscured index.
    pub index: PublishedIndex,
    /// Per-owner mix decisions (`true` ⇒ published with β = 1).
    pub decisions: Vec<bool>,
    /// The mixing probability λ of the epoch.
    pub lambda: f64,
    /// The exact common-identity count.
    pub common_count: u64,
    /// The epoch number in the lineage.
    pub epoch: u64,
    /// Public per-owner frequency thresholds.
    pub thresholds: Vec<u64>,
    /// Per-owner privacy degrees.
    pub epsilons: Vec<f64>,
    /// `shares[k][j]`: coordinator `k`'s additive frequency share of
    /// owner `j`.
    pub shares: Vec<Vec<u64>>,
    /// The lineage configuration.
    pub config: ConfigRecord,
}

/// Fixed byte length of the v2 header (everything before the bitmap).
const EPOCH_HEADER: usize = 4 + 2 + 8 + 8 + 8 + 4 + 1 + 8 + 4 + 8 + 8 + 1 + 8 + 4 + 4;

/// Serializes an epoch snapshot to the version-2 format, CRC-32
/// checksummed.
///
/// # Panics
///
/// Panics if the record's vector lengths are inconsistent with its
/// index dimensions (`decisions`, `thresholds`, `epsilons` and every
/// share vector must have one entry per owner) — an `EpochRecord`
/// assembled from a live `IndexEpoch` always satisfies this.
pub fn encode_epoch_record(record: &EpochRecord) -> Vec<u8> {
    let matrix = record.index.matrix();
    let (m, n) = (matrix.providers(), matrix.owners());
    assert_eq!(record.decisions.len(), n, "decisions per owner");
    assert_eq!(record.thresholds.len(), n, "thresholds per owner");
    assert_eq!(record.epsilons.len(), n, "epsilons per owner");
    for shares in &record.shares {
        assert_eq!(shares.len(), n, "share vector per owner");
    }
    assert_eq!(
        record.shares.len(),
        record.config.coordinators as usize,
        "one share vector per coordinator"
    );

    let bitmap = pack_matrix(matrix);
    let decisions_len = n.div_ceil(8);
    let shares_len = record.shares.len() * n * 8;
    let mut out =
        Vec::with_capacity(EPOCH_HEADER + bitmap.len() + decisions_len + n * 24 + shares_len + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_EPOCH.to_le_bytes());
    out.extend_from_slice(&record.epoch.to_le_bytes());
    out.extend_from_slice(&record.lambda.to_le_bytes());
    out.extend_from_slice(&record.common_count.to_le_bytes());
    out.extend_from_slice(&record.config.coordinators.to_le_bytes());
    out.push(record.config.policy_tag);
    out.extend_from_slice(&record.config.policy_param.to_le_bytes());
    out.extend_from_slice(&record.config.coin_bits.to_le_bytes());
    out.extend_from_slice(&record.config.link_latency_us.to_le_bytes());
    out.extend_from_slice(&record.config.link_bandwidth.to_le_bytes());
    out.push(record.config.backend_tag);
    out.extend_from_slice(&record.config.seed.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&bitmap);
    for &beta in record.index.betas() {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    let mut decisions = vec![0u8; decisions_len];
    for (o, &mixed) in record.decisions.iter().enumerate() {
        if mixed {
            decisions[o / 8] |= 1 << (o % 8);
        }
    }
    out.extend_from_slice(&decisions);
    for &t in &record.thresholds {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &e in &record.epsilons {
        out.extend_from_slice(&e.to_le_bytes());
    }
    for shares in &record.shares {
        for &s in shares {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A little-endian cursor over untrusted bytes; every read is
/// length-checked so malformed input surfaces as [`CodecError`], never
/// as a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(len).ok_or(CodecError::Truncated {
            expected: usize::MAX,
            actual: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated {
                expected: end,
                actual: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// `value` must be a finite probability, else `field` is invalid.
fn check_unit(value: f64, field: &'static str) -> Result<f64, CodecError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(CodecError::InvalidField { field })
    }
}

/// Deserializes a version-2 epoch snapshot, validating the checksum,
/// the structure and every scalar domain.
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input — wrong magic or
/// version, truncation, trailing bytes, checksum mismatch, out-of-range
/// β/ε/λ, non-finite configuration scalars, or unknown policy/backend
/// tags. Never panics on untrusted bytes, and performs no allocation
/// sized beyond the supplied buffer.
pub fn decode_epoch_record(bytes: &[u8]) -> Result<EpochRecord, CodecError> {
    let mut cur = Cursor { bytes, at: 0 };
    if cur.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = cur.u16()?;
    if version != VERSION_EPOCH {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let epoch = cur.u64()?;
    let lambda = check_unit(cur.f64()?, "lambda")?;
    let common_count = cur.u64()?;
    let coordinators = cur.u32()?;
    let policy_tag = cur.u8()?;
    if policy_tag > 2 {
        return Err(CodecError::UnknownTag {
            field: "policy",
            tag: policy_tag,
        });
    }
    let policy_param = cur.f64()?;
    if !policy_param.is_finite() {
        return Err(CodecError::InvalidField {
            field: "policy_param",
        });
    }
    let coin_bits = cur.u32()?;
    let link_latency_us = cur.f64()?;
    let link_bandwidth = cur.f64()?;
    if !link_latency_us.is_finite() || link_latency_us < 0.0 {
        return Err(CodecError::InvalidField {
            field: "link_latency_us",
        });
    }
    if !link_bandwidth.is_finite() || link_bandwidth <= 0.0 {
        return Err(CodecError::InvalidField {
            field: "link_bandwidth",
        });
    }
    let backend_tag = cur.u8()?;
    // Plain discriminants 0–2, or the pipelined packing: low bits 3
    // with a non-zero worker count above them (see [`ConfigRecord`]).
    let pipelined = backend_tag & 0x07 == 3 && backend_tag >> 3 > 0;
    if backend_tag > 2 && !pipelined {
        return Err(CodecError::UnknownTag {
            field: "backend",
            tag: backend_tag,
        });
    }
    let seed = cur.u64()?;
    let m = cur.u32()? as usize;
    let n = cur.u32()? as usize;

    // Sizes come from untrusted bytes: length-check against the buffer
    // (wide arithmetic, immune to overflow) *before* any allocation, so
    // a corrupted dimension field cannot drive an over-allocation.
    let bitmap_len = (m as u128 * n as u128).div_ceil(8);
    let decisions_len = (n as u128).div_ceil(8);
    let body = bitmap_len + decisions_len + (n as u128) * 24 + coordinators as u128 * n as u128 * 8;
    let total = EPOCH_HEADER as u128 + body + 4;
    if total > bytes.len() as u128 {
        return Err(CodecError::Truncated {
            expected: usize::try_from(total).unwrap_or(usize::MAX),
            actual: bytes.len(),
        });
    }
    if (bytes.len() as u128) > total {
        return Err(CodecError::TrailingBytes(bytes.len() - total as usize));
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }

    let matrix = unpack_matrix(cur.take(bitmap_len as usize)?, m, n);
    let mut betas = Vec::with_capacity(n);
    for o in 0..n {
        let beta = cur.f64()?;
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }
    let decision_bytes = cur.take(decisions_len as usize)?;
    let decisions: Vec<bool> = (0..n)
        .map(|o| decision_bytes[o / 8] & (1 << (o % 8)) != 0)
        .collect();
    let mut thresholds = Vec::with_capacity(n);
    for _ in 0..n {
        thresholds.push(cur.u64()?);
    }
    let mut epsilons = Vec::with_capacity(n);
    for o in 0..n {
        let eps = cur.f64()?;
        if !eps.is_finite() || !(0.0..=1.0).contains(&eps) {
            return Err(CodecError::InvalidEpsilon { owner: o as u32 });
        }
        epsilons.push(eps);
    }
    let mut shares = Vec::with_capacity(coordinators as usize);
    for _ in 0..coordinators {
        let mut vector = Vec::with_capacity(n);
        for _ in 0..n {
            vector.push(cur.u64()?);
        }
        shares.push(vector);
    }

    Ok(EpochRecord {
        index: PublishedIndex::new(matrix, betas),
        decisions,
        lambda,
        common_count,
        epoch,
        thresholds,
        epsilons,
        shares,
        config: ConfigRecord {
            coordinators,
            policy_tag,
            policy_param,
            coin_bits,
            link_latency_us,
            link_bandwidth,
            backend_tag,
            seed,
        },
    })
}

/// One shard's rows in their physical serving layout.
///
/// The variant must agree with the snapshot's declared backend: a v3
/// record never mixes layouts, so a serve node knows from the header
/// alone whether the snapshot may back PIR replicas (dense only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRowsRecord {
    /// Flat packed words, `words_per_row` per owner slot.
    Dense(Vec<u64>),
    /// EWAH-style token stream plus the per-slot offset table
    /// (`owner_count + 1` entries tiling the stream).
    Compressed {
        /// The shared fill/literal token stream.
        stream: Vec<u64>,
        /// Token offsets; entry `s` starts slot `s`, last entry =
        /// stream length.
        offsets: Vec<u32>,
    },
}

/// One shard of a serve snapshot: which owners it holds (slot order)
/// and their rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeShardRecord {
    /// Global owner ids, in slot order.
    pub owners: Vec<u32>,
    /// The shard's row block.
    pub rows: ShardRowsRecord,
}

/// A version-3 serving-layout snapshot: the shard-map manifest plus
/// every shard's owners and physical rows, in the backend the snapshot
/// was built with. This is what a serve node persists to boot warm
/// without re-sharding the published index (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshotRecord {
    /// The snapshot's epoch version in the serve lineage.
    pub snapshot_version: u64,
    /// Physical row backend of every shard.
    pub backend: RowBackend,
    /// Provider universe size (fixes `words_per_row`).
    pub providers: u32,
    /// Per-owner β values, indexed by global owner id.
    pub betas: Vec<f64>,
    /// Shard-map manifest: shards the base owners hash across.
    pub base_shards: u32,
    /// Shard-map manifest: owners covered by the base hash.
    pub base_owners: u32,
    /// Shard-map manifest: owners per append shard.
    pub append_capacity: u32,
    /// Every shard, base then append, in shard order.
    pub shards: Vec<ServeShardRecord>,
}

fn backend_to_tag(backend: RowBackend) -> u8 {
    match backend {
        RowBackend::Dense => 0,
        RowBackend::Compressed => 1,
    }
}

/// Serializes a serving-layout snapshot to the version-3 format,
/// CRC-32 checksummed.
///
/// # Panics
///
/// Panics if the record is structurally inconsistent — a shard's row
/// variant disagreeing with the declared backend, a dense block not
/// holding exactly `owner_count · words_per_row` words, or a compressed
/// offset table not tiling its stream with `owner_count + 1` entries.
/// Records assembled from a live `ShardedIndex` always satisfy this.
pub fn encode_serve_snapshot(record: &ServeSnapshotRecord) -> Vec<u8> {
    let wpr = row_words(record.providers as usize);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_SERVE.to_le_bytes());
    out.extend_from_slice(&record.snapshot_version.to_le_bytes());
    out.push(backend_to_tag(record.backend));
    out.extend_from_slice(&record.providers.to_le_bytes());
    out.extend_from_slice(&(record.betas.len() as u32).to_le_bytes());
    out.extend_from_slice(&record.base_shards.to_le_bytes());
    out.extend_from_slice(&record.base_owners.to_le_bytes());
    out.extend_from_slice(&record.append_capacity.to_le_bytes());
    out.extend_from_slice(&(record.shards.len() as u32).to_le_bytes());
    for &beta in &record.betas {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    for shard in &record.shards {
        let slots = shard.owners.len();
        out.extend_from_slice(&(slots as u32).to_le_bytes());
        for &o in &shard.owners {
            out.extend_from_slice(&o.to_le_bytes());
        }
        match (&shard.rows, record.backend) {
            (ShardRowsRecord::Dense(words), RowBackend::Dense) => {
                assert_eq!(words.len(), slots * wpr, "dense block sized to its slots");
                for &w in words {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            (ShardRowsRecord::Compressed { stream, offsets }, RowBackend::Compressed) => {
                assert_eq!(offsets.len(), slots + 1, "one offset per slot plus end");
                assert_eq!(
                    offsets.last().copied().unwrap_or(0) as usize,
                    stream.len(),
                    "offsets tile the stream"
                );
                out.extend_from_slice(&(stream.len() as u32).to_le_bytes());
                for &off in offsets {
                    out.extend_from_slice(&off.to_le_bytes());
                }
                for &t in stream {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
            _ => panic!("shard row variant disagrees with the snapshot backend"),
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Deserializes a version-3 serving-layout snapshot, validating the
/// checksum, every β, and each shard's structure (dense blocks sized to
/// their slots; compressed offset tables tiling their streams).
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input — wrong magic or
/// version, truncation, trailing bytes, checksum mismatch, an unknown
/// backend tag, out-of-range βs, or a structurally inconsistent shard.
/// Never panics on untrusted bytes; the checksum is verified before any
/// length field is trusted, so corrupted counts cannot drive
/// allocations.
pub fn decode_serve_snapshot(bytes: &[u8]) -> Result<ServeSnapshotRecord, CodecError> {
    let min = 4 + 2 + 8 + 1 + 4 + 4 + 4 + 4 + 4 + 4 + 4;
    if bytes.len() < min {
        return Err(CodecError::Truncated {
            expected: min,
            actual: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION_SERVE {
        return Err(CodecError::UnsupportedVersion(version));
    }
    // Checksum first: every length field below is then known-good
    // (matching what the encoder wrote) before it sizes a read.
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }

    let mut cur = Cursor {
        bytes: &bytes[..bytes.len() - 4],
        at: 6,
    };
    let snapshot_version = cur.u64()?;
    let backend_tag = cur.u8()?;
    let backend = match backend_tag {
        0 => RowBackend::Dense,
        1 => RowBackend::Compressed,
        tag => {
            return Err(CodecError::UnknownTag {
                field: "row backend",
                tag,
            })
        }
    };
    let providers = cur.u32()?;
    let owners = cur.u32()? as usize;
    let base_shards = cur.u32()?;
    let base_owners = cur.u32()?;
    let append_capacity = cur.u32()?;
    let shard_count = cur.u32()? as usize;
    let wpr = row_words(providers as usize);

    let mut betas = Vec::with_capacity(owners.min(cur.bytes.len() / 8));
    for o in 0..owners {
        let beta = cur.f64()?;
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }

    let mut shards = Vec::with_capacity(shard_count.min(1024));
    for s in 0..shard_count {
        let slots = cur.u32()? as usize;
        let owner_bytes = cur.take(slots * 4)?;
        let owners: Vec<u32> = owner_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let rows = match backend {
            RowBackend::Dense => {
                let words_bytes = cur.take(slots * wpr * 8)?;
                ShardRowsRecord::Dense(
                    words_bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                )
            }
            RowBackend::Compressed => {
                let tokens = cur.u32()? as usize;
                let offset_bytes = cur.take((slots + 1) * 4)?;
                let offsets: Vec<u32> = offset_bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                if offsets.first() != Some(&0)
                    || offsets.last().copied().unwrap_or(u32::MAX) as usize != tokens
                    || offsets.windows(2).any(|w| w[0] > w[1])
                {
                    return Err(CodecError::InvalidShard {
                        shard: s as u32,
                        reason: "offset table does not tile its token stream",
                    });
                }
                let stream_bytes = cur.take(tokens * 8)?;
                ShardRowsRecord::Compressed {
                    stream: stream_bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                    offsets,
                }
            }
        };
        shards.push(ServeShardRecord { owners, rows });
    }
    if cur.at < cur.bytes.len() {
        return Err(CodecError::TrailingBytes(cur.bytes.len() - cur.at));
    }

    Ok(ServeSnapshotRecord {
        snapshot_version,
        backend,
        providers,
        betas,
        base_shards,
        base_owners,
        append_capacity,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> PublishedIndex {
        let mut m = MembershipMatrix::new(9, 5);
        for (p, o) in [(0u32, 0u32), (3, 2), (8, 4), (5, 0), (2, 3)] {
            m.set(ProviderId(p), OwnerId(o), true);
        }
        PublishedIndex::new(m, vec![0.0, 0.25, 0.5, 0.75, 1.0])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let bytes = encode(&index);
        let back = decode(&bytes).expect("roundtrip");
        assert_eq!(&back, &index);
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        assert_eq!(decode(&encode(&index)).unwrap(), index);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_index());
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(CodecError::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[4] = 9;
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(9)));
    }

    #[test]
    fn invalid_beta_rejected() {
        let mut bytes = encode(&sample_index());
        let n = bytes.len();
        // Overwrite the last β with NaN.
        bytes[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
        // And with an out-of-range value.
        bytes[n - 8..].copy_from_slice(&2.5f64.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample_index());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    fn sample_epoch_record() -> EpochRecord {
        let index = sample_index();
        let n = index.matrix().owners();
        EpochRecord {
            decisions: (0..n).map(|o| o % 2 == 0).collect(),
            lambda: 0.375,
            common_count: 3,
            epoch: 17,
            thresholds: (0..n as u64).map(|o| o * 3 + 1).collect(),
            epsilons: vec![0.0, 0.2, 0.4, 0.8, 1.0],
            shares: (0..3u64)
                .map(|c| (0..n as u64).map(|o| c * 1000 + o * 7).collect())
                .collect(),
            config: ConfigRecord {
                coordinators: 3,
                policy_tag: 2,
                policy_param: 0.9,
                coin_bits: 16,
                link_latency_us: 200.0,
                link_bandwidth: 125.0,
                backend_tag: 0,
                seed: 0xfeed_beef,
            },
            index,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn epoch_record_roundtrips() {
        let record = sample_epoch_record();
        let bytes = encode_epoch_record(&record);
        let back = decode_epoch_record(&bytes).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn epoch_record_truncation_is_detected() {
        let bytes = encode_epoch_record(&sample_epoch_record());
        for cut in [0usize, 3, 5, 40, 81, bytes.len() - 5, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_epoch_record(&bytes[..cut]),
                    Err(CodecError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn epoch_record_flipped_byte_fails_checksum() {
        let clean = encode_epoch_record(&sample_epoch_record());
        // Flip one byte in the body (past the header fields with their
        // own domain checks): the CRC must catch it.
        let mut bytes = clean.clone();
        bytes[EPOCH_HEADER + 1] ^= 0x10;
        assert!(matches!(
            decode_epoch_record(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn epoch_record_rejects_v1_and_vice_versa() {
        let index = sample_index();
        assert_eq!(
            decode_epoch_record(&encode(&index)),
            Err(CodecError::UnsupportedVersion(1))
        );
        let bytes = encode_epoch_record(&sample_epoch_record());
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(2)));
    }

    #[test]
    fn epoch_record_rejects_unknown_tags_and_bad_scalars() {
        let record = sample_epoch_record();
        let mut tagged = record.clone();
        tagged.config.policy_tag = 9;
        let bytes = encode_epoch_record(&tagged);
        assert_eq!(
            decode_epoch_record(&bytes),
            Err(CodecError::UnknownTag {
                field: "policy",
                tag: 9
            })
        );
        let mut backend = record.clone();
        backend.config.backend_tag = 7;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&backend)),
            Err(CodecError::UnknownTag {
                field: "backend",
                tag: 7
            })
        );
        // The pipelined packing (low bits 3, workers above) is in
        // domain; a bare 3 with zero workers is not.
        let mut pipelined = record.clone();
        pipelined.config.backend_tag = 3 | (2 << 3);
        assert!(decode_epoch_record(&encode_epoch_record(&pipelined)).is_ok());
        let mut bare = record.clone();
        bare.config.backend_tag = 3;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&bare)),
            Err(CodecError::UnknownTag {
                field: "backend",
                tag: 3
            })
        );
        let mut lambda = record.clone();
        lambda.lambda = f64::NAN;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&lambda)),
            Err(CodecError::InvalidField { field: "lambda" })
        );
        let mut eps = record.clone();
        eps.epsilons[1] = 3.0;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&eps)),
            Err(CodecError::InvalidEpsilon { owner: 1 })
        );
    }

    #[test]
    fn epoch_record_rejects_trailing_bytes() {
        let mut bytes = encode_epoch_record(&sample_epoch_record());
        bytes.push(0);
        assert_eq!(
            decode_epoch_record(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn epoch_record_huge_dimensions_do_not_allocate() {
        // Corrupt the owner-count field to u32::MAX: the decoder must
        // answer Truncated from the length check, not attempt a
        // 32-GiB allocation (and the CRC would catch it anyway).
        let mut bytes = encode_epoch_record(&sample_epoch_record());
        bytes[EPOCH_HEADER - 4..EPOCH_HEADER].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_epoch_record(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    /// A small two-shard serve snapshot: providers = 70 (⇒ 2 words per
    /// row), three owners split 2/1, in the requested backend.
    fn sample_serve_snapshot(backend: RowBackend) -> ServeSnapshotRecord {
        let dense: [Vec<u64>; 2] = [vec![0b1011, 0, u64::MAX, 0x3f], vec![0, 1 << 63]];
        let shards = dense
            .iter()
            .enumerate()
            .map(|(s, words)| ServeShardRecord {
                owners: if s == 0 { vec![0, 2] } else { vec![1] },
                rows: match backend {
                    RowBackend::Dense => ShardRowsRecord::Dense(words.clone()),
                    RowBackend::Compressed => {
                        let rows = eppi_core::rowstore::CompressedRows::from_dense_words(words, 70);
                        ShardRowsRecord::Compressed {
                            stream: rows.stream().to_vec(),
                            offsets: rows.offsets().to_vec(),
                        }
                    }
                },
            })
            .collect();
        ServeSnapshotRecord {
            snapshot_version: 9,
            backend,
            providers: 70,
            betas: vec![0.25, 0.5, 1.0],
            base_shards: 2,
            base_owners: 3,
            append_capacity: 8192,
            shards,
        }
    }

    #[test]
    fn serve_snapshot_roundtrips_in_both_backends() {
        for backend in [RowBackend::Dense, RowBackend::Compressed] {
            let record = sample_serve_snapshot(backend);
            let bytes = encode_serve_snapshot(&record);
            let back = decode_serve_snapshot(&bytes).expect("roundtrip");
            assert_eq!(back, record, "{backend}");
        }
    }

    #[test]
    fn serve_snapshot_rejects_other_versions_and_vice_versa() {
        assert_eq!(
            decode_serve_snapshot(&encode(&sample_index())),
            Err(CodecError::UnsupportedVersion(1))
        );
        assert_eq!(
            decode_serve_snapshot(&encode_epoch_record(&sample_epoch_record())),
            Err(CodecError::UnsupportedVersion(2))
        );
        let bytes = encode_serve_snapshot(&sample_serve_snapshot(RowBackend::Dense));
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(3)));
        assert_eq!(
            decode_epoch_record(&bytes),
            Err(CodecError::UnsupportedVersion(3))
        );
    }

    #[test]
    fn serve_snapshot_corruption_and_truncation_are_detected() {
        let clean = encode_serve_snapshot(&sample_serve_snapshot(RowBackend::Compressed));
        // Cuts inside the fixed header surface as truncation; cuts past
        // it shift the checksum bytes and surface as corruption. Either
        // way no truncated prefix ever decodes.
        for cut in [0usize, 5, 20, clean.len() - 5, clean.len() - 1] {
            assert!(
                matches!(
                    decode_serve_snapshot(&clean[..cut]),
                    Err(CodecError::Truncated { .. } | CodecError::BadChecksum { .. })
                ),
                "cut at {cut}"
            );
        }
        let mut flipped = clean.clone();
        flipped[40] ^= 0x04;
        assert!(matches!(
            decode_serve_snapshot(&flipped),
            Err(CodecError::BadChecksum { .. })
        ));
        let mut trailing = clean.clone();
        trailing.push(0);
        // Appending a byte invalidates the checksum (it moves); the
        // decoder reports the corruption rather than the extra byte.
        assert!(decode_serve_snapshot(&trailing).is_err());
    }

    #[test]
    fn serve_snapshot_rejects_bad_offset_tables() {
        let mut record = sample_serve_snapshot(RowBackend::Compressed);
        if let ShardRowsRecord::Compressed { offsets, .. } = &mut record.shards[0].rows {
            offsets[1] = offsets[1].wrapping_add(1).max(offsets[2] + 1);
        }
        // Re-encode with the corrupted table (the encoder only asserts
        // the end offset, so an interior inversion passes through) and
        // make the decoder catch it.
        let bytes = encode_serve_snapshot(&record);
        assert!(matches!(
            decode_serve_snapshot(&bytes),
            Err(CodecError::InvalidShard { shard: 0, .. })
        ));
    }

    #[test]
    fn serve_snapshot_rejects_invalid_betas_and_unknown_backend() {
        let mut record = sample_serve_snapshot(RowBackend::Dense);
        record.betas[1] = 7.0;
        assert_eq!(
            decode_serve_snapshot(&encode_serve_snapshot(&record)),
            Err(CodecError::InvalidBeta { owner: 1 })
        );
        let mut bytes = encode_serve_snapshot(&sample_serve_snapshot(RowBackend::Dense));
        let tag_at = 4 + 2 + 8;
        bytes[tag_at] = 9;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert_eq!(
            decode_serve_snapshot(&bytes),
            Err(CodecError::UnknownTag {
                field: "row backend",
                tag: 9
            })
        );
    }

    #[test]
    fn errors_render() {
        assert!(CodecError::Truncated {
            expected: 10,
            actual: 3
        }
        .to_string()
        .contains("10"));
        assert!(CodecError::InvalidBeta { owner: 2 }
            .to_string()
            .contains("owner 2"));
    }
}
