//! Compact binary serialization of the published index and of full
//! epoch snapshots.
//!
//! A real locator service persists and ships the index: the PPI server
//! loads it at boot, providers can mirror it, auditors archive it. The
//! allowed dependency set has no serialization backend, so the format is
//! hand-rolled: a fixed little-endian header, the row-major matrix
//! bitmap, then the per-owner β values — versioned and fully validated
//! on load (truncated, oversized or inconsistent input is rejected, not
//! trusted).
//!
//! **Version 1** serializes a bare [`PublishedIndex`]:
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        = 1
//! providers u32, owners u32
//! bitmap  ⌈providers·owners / 8⌉ bytes, row-major, LSB-first
//! betas   owners × f64 (little-endian bits)
//! ```
//!
//! **Version 2** serializes a full epoch snapshot ([`EpochRecord`]):
//! the published index plus the retained protocol state a delta
//! construction resumes from — mix decisions, thresholds, ε's, the
//! coordinator share vectors, λ, the common-identity count and the
//! lineage configuration — CRC-32 checksummed so on-disk corruption is
//! detected, not served:
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        = 2
//! epoch u64, lambda f64, common_count u64
//! coordinators u32
//! policy_tag u8, policy_param f64, coin_bits u32
//! link_latency_us f64, link_bandwidth f64
//! backend_tag u8, seed u64
//! providers u32, owners u32
//! bitmap      ⌈providers·owners / 8⌉ bytes (as v1)
//! betas       owners × f64
//! decisions   ⌈owners / 8⌉ bytes, LSB-first
//! thresholds  owners × u64
//! epsilons    owners × f64
//! shares      coordinators × owners × u64
//! crc32 u32          (IEEE, over every preceding byte)
//! ```
//!
//! **Compatibility rule (v1 → v2):** v2 is a strict superset — the
//! matrix bitmap and β block keep their v1 layout byte for byte — but
//! the two versions are *not* interchangeable on the wire. [`decode`]
//! accepts only version 1 and rejects a v2 snapshot with
//! [`CodecError::UnsupportedVersion`], so a plain serve node can never
//! mistake a coordinator checkpoint (which carries share vectors) for a
//! public index; [`decode_epoch_record`] likewise accepts only version
//! 2. Readers of either version reject the other loudly instead of
//! guessing.

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"EPPI";
const VERSION: u16 = 1;
const VERSION_EPOCH: u16 = 2;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding v2 epoch records
/// and the durability layer's write-ahead log frames.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Errors raised when decoding a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer is shorter than the declared content.
    Truncated {
        /// Bytes expected at minimum.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The magic header is missing.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A β value decoded outside `\[0, 1\]` or non-finite.
    InvalidBeta {
        /// The offending owner index.
        owner: u32,
    },
    /// Trailing bytes after the declared content.
    TrailingBytes(usize),
    /// The CRC-32 stored in a v2 record disagrees with the content.
    BadChecksum {
        /// Checksum declared by the record.
        stored: u32,
        /// Checksum recomputed over the content.
        computed: u32,
    },
    /// A scalar field decoded outside its valid domain.
    InvalidField {
        /// The offending field, e.g. `"lambda"`.
        field: &'static str,
    },
    /// An ε decoded outside `\[0, 1\]` or non-finite.
    InvalidEpsilon {
        /// The offending owner index.
        owner: u32,
    },
    /// An enum tag (policy or backend) has no known meaning.
    UnknownTag {
        /// Which tag field, e.g. `"policy"`.
        field: &'static str,
        /// The unknown tag value.
        tag: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated index: need at least {expected} bytes, got {actual}"
                )
            }
            CodecError::BadMagic => write!(f, "missing EPPI magic header"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            CodecError::InvalidBeta { owner } => {
                write!(f, "invalid β for owner {owner}: not a probability")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after index content"),
            CodecError::BadChecksum { stored, computed } => write!(
                f,
                "checksum mismatch: record declares {stored:#010x}, content is {computed:#010x}"
            ),
            CodecError::InvalidField { field } => {
                write!(f, "field {field} decoded outside its valid domain")
            }
            CodecError::InvalidEpsilon { owner } => {
                write!(f, "invalid ε for owner {owner}: not in [0, 1]")
            }
            CodecError::UnknownTag { field, tag } => {
                write!(f, "unknown {field} tag {tag}")
            }
        }
    }
}

impl Error for CodecError {}

/// Packs the matrix as the shared row-major LSB-first bitmap (the
/// layout both format versions use).
fn pack_matrix(matrix: &MembershipMatrix) -> Vec<u8> {
    let (m, n) = (matrix.providers(), matrix.owners());
    let mut bitmap = vec![0u8; (m * n).div_ceil(8)];
    for p in 0..m {
        for o in 0..n {
            if matrix.get(ProviderId(p as u32), OwnerId(o as u32)) {
                let bit = p * n + o;
                bitmap[bit / 8] |= 1 << (bit % 8);
            }
        }
    }
    bitmap
}

/// Rebuilds a matrix from the shared bitmap layout. `bitmap` must hold
/// exactly `⌈m·n/8⌉` bytes (the caller has already length-checked).
fn unpack_matrix(bitmap: &[u8], m: usize, n: usize) -> MembershipMatrix {
    let mut matrix = MembershipMatrix::new(m, n);
    for p in 0..m {
        for o in 0..n {
            let bit = p * n + o;
            if bitmap[bit / 8] & (1 << (bit % 8)) != 0 {
                matrix.set(ProviderId(p as u32), OwnerId(o as u32), true);
            }
        }
    }
    matrix
}

/// Serializes a published index to the versioned binary format.
pub fn encode(index: &PublishedIndex) -> Vec<u8> {
    let matrix = index.matrix();
    let (m, n) = (matrix.providers(), matrix.owners());
    let bitmap = pack_matrix(matrix);
    let mut out = Vec::with_capacity(4 + 2 + 8 + bitmap.len() + n * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&bitmap);
    for &beta in index.betas() {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    out
}

/// Deserializes an index, validating structure and every β.
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input; never panics on
/// untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<PublishedIndex, CodecError> {
    let need_header = 4 + 2 + 8;
    if bytes.len() < need_header {
        return Err(CodecError::Truncated {
            expected: need_header,
            actual: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let m = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    let n = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes")) as usize;
    let bitmap_len = (m * n).div_ceil(8);
    let total = need_header + bitmap_len + n * 8;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            expected: total,
            actual: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes(bytes.len() - total));
    }

    let matrix = unpack_matrix(&bytes[need_header..need_header + bitmap_len], m, n);

    let mut betas = Vec::with_capacity(n);
    let beta_bytes = &bytes[need_header + bitmap_len..];
    for (o, chunk) in beta_bytes.chunks_exact(8).enumerate() {
        let beta = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }
    Ok(PublishedIndex::new(matrix, betas))
}

/// The lineage configuration of a v2 epoch record, as plain tagged
/// scalars.
///
/// The codec layer stores protocol configuration structurally (tags
/// plus parameters) rather than by type, so this crate stays free of a
/// protocol dependency; the durability layer maps these fields onto the
/// real `ProtocolConfig` and rejects tags it does not know.
/// Tag meanings: policy `0` = basic, `1` = incremented (`param` = Δ),
/// `2` = Chernoff (`param` = γ); backend `0` = in-process, `1` =
/// threaded, `2` = simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigRecord {
    /// Coordinator count `c`.
    pub coordinators: u32,
    /// β-policy discriminant (0, 1 or 2 — see the type docs).
    pub policy_tag: u8,
    /// The policy's parameter (Δ or γ; 0 for the basic policy).
    pub policy_param: f64,
    /// Bits per Bernoulli(λ) mixing coin.
    pub coin_bits: u32,
    /// Link latency in µs (traffic accounting model).
    pub link_latency_us: f64,
    /// Link bandwidth in bytes/µs.
    pub link_bandwidth: f64,
    /// MPC backend discriminant (0, 1 or 2 — see the type docs).
    pub backend_tag: u8,
    /// The lineage seed keying every publication and mix coin.
    pub seed: u64,
}

/// A full epoch snapshot: everything a crashed coordinator set needs to
/// resume the delta lineage without a rebuild (DESIGN.md §10–11).
///
/// ε's are carried as raw `f64` here; the protocol layer re-wraps them
/// (the codec still validates the `\[0, 1\]` range on load).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// The published, obscured index.
    pub index: PublishedIndex,
    /// Per-owner mix decisions (`true` ⇒ published with β = 1).
    pub decisions: Vec<bool>,
    /// The mixing probability λ of the epoch.
    pub lambda: f64,
    /// The exact common-identity count.
    pub common_count: u64,
    /// The epoch number in the lineage.
    pub epoch: u64,
    /// Public per-owner frequency thresholds.
    pub thresholds: Vec<u64>,
    /// Per-owner privacy degrees.
    pub epsilons: Vec<f64>,
    /// `shares[k][j]`: coordinator `k`'s additive frequency share of
    /// owner `j`.
    pub shares: Vec<Vec<u64>>,
    /// The lineage configuration.
    pub config: ConfigRecord,
}

/// Fixed byte length of the v2 header (everything before the bitmap).
const EPOCH_HEADER: usize = 4 + 2 + 8 + 8 + 8 + 4 + 1 + 8 + 4 + 8 + 8 + 1 + 8 + 4 + 4;

/// Serializes an epoch snapshot to the version-2 format, CRC-32
/// checksummed.
///
/// # Panics
///
/// Panics if the record's vector lengths are inconsistent with its
/// index dimensions (`decisions`, `thresholds`, `epsilons` and every
/// share vector must have one entry per owner) — an `EpochRecord`
/// assembled from a live `IndexEpoch` always satisfies this.
pub fn encode_epoch_record(record: &EpochRecord) -> Vec<u8> {
    let matrix = record.index.matrix();
    let (m, n) = (matrix.providers(), matrix.owners());
    assert_eq!(record.decisions.len(), n, "decisions per owner");
    assert_eq!(record.thresholds.len(), n, "thresholds per owner");
    assert_eq!(record.epsilons.len(), n, "epsilons per owner");
    for shares in &record.shares {
        assert_eq!(shares.len(), n, "share vector per owner");
    }
    assert_eq!(
        record.shares.len(),
        record.config.coordinators as usize,
        "one share vector per coordinator"
    );

    let bitmap = pack_matrix(matrix);
    let decisions_len = n.div_ceil(8);
    let shares_len = record.shares.len() * n * 8;
    let mut out =
        Vec::with_capacity(EPOCH_HEADER + bitmap.len() + decisions_len + n * 24 + shares_len + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_EPOCH.to_le_bytes());
    out.extend_from_slice(&record.epoch.to_le_bytes());
    out.extend_from_slice(&record.lambda.to_le_bytes());
    out.extend_from_slice(&record.common_count.to_le_bytes());
    out.extend_from_slice(&record.config.coordinators.to_le_bytes());
    out.push(record.config.policy_tag);
    out.extend_from_slice(&record.config.policy_param.to_le_bytes());
    out.extend_from_slice(&record.config.coin_bits.to_le_bytes());
    out.extend_from_slice(&record.config.link_latency_us.to_le_bytes());
    out.extend_from_slice(&record.config.link_bandwidth.to_le_bytes());
    out.push(record.config.backend_tag);
    out.extend_from_slice(&record.config.seed.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&bitmap);
    for &beta in record.index.betas() {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    let mut decisions = vec![0u8; decisions_len];
    for (o, &mixed) in record.decisions.iter().enumerate() {
        if mixed {
            decisions[o / 8] |= 1 << (o % 8);
        }
    }
    out.extend_from_slice(&decisions);
    for &t in &record.thresholds {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &e in &record.epsilons {
        out.extend_from_slice(&e.to_le_bytes());
    }
    for shares in &record.shares {
        for &s in shares {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A little-endian cursor over untrusted bytes; every read is
/// length-checked so malformed input surfaces as [`CodecError`], never
/// as a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(len).ok_or(CodecError::Truncated {
            expected: usize::MAX,
            actual: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(CodecError::Truncated {
                expected: end,
                actual: self.bytes.len(),
            });
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// `value` must be a finite probability, else `field` is invalid.
fn check_unit(value: f64, field: &'static str) -> Result<f64, CodecError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(CodecError::InvalidField { field })
    }
}

/// Deserializes a version-2 epoch snapshot, validating the checksum,
/// the structure and every scalar domain.
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input — wrong magic or
/// version, truncation, trailing bytes, checksum mismatch, out-of-range
/// β/ε/λ, non-finite configuration scalars, or unknown policy/backend
/// tags. Never panics on untrusted bytes, and performs no allocation
/// sized beyond the supplied buffer.
pub fn decode_epoch_record(bytes: &[u8]) -> Result<EpochRecord, CodecError> {
    let mut cur = Cursor { bytes, at: 0 };
    if cur.take(4)? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = cur.u16()?;
    if version != VERSION_EPOCH {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let epoch = cur.u64()?;
    let lambda = check_unit(cur.f64()?, "lambda")?;
    let common_count = cur.u64()?;
    let coordinators = cur.u32()?;
    let policy_tag = cur.u8()?;
    if policy_tag > 2 {
        return Err(CodecError::UnknownTag {
            field: "policy",
            tag: policy_tag,
        });
    }
    let policy_param = cur.f64()?;
    if !policy_param.is_finite() {
        return Err(CodecError::InvalidField {
            field: "policy_param",
        });
    }
    let coin_bits = cur.u32()?;
    let link_latency_us = cur.f64()?;
    let link_bandwidth = cur.f64()?;
    if !link_latency_us.is_finite() || link_latency_us < 0.0 {
        return Err(CodecError::InvalidField {
            field: "link_latency_us",
        });
    }
    if !link_bandwidth.is_finite() || link_bandwidth <= 0.0 {
        return Err(CodecError::InvalidField {
            field: "link_bandwidth",
        });
    }
    let backend_tag = cur.u8()?;
    if backend_tag > 2 {
        return Err(CodecError::UnknownTag {
            field: "backend",
            tag: backend_tag,
        });
    }
    let seed = cur.u64()?;
    let m = cur.u32()? as usize;
    let n = cur.u32()? as usize;

    // Sizes come from untrusted bytes: length-check against the buffer
    // (wide arithmetic, immune to overflow) *before* any allocation, so
    // a corrupted dimension field cannot drive an over-allocation.
    let bitmap_len = (m as u128 * n as u128).div_ceil(8);
    let decisions_len = (n as u128).div_ceil(8);
    let body = bitmap_len + decisions_len + (n as u128) * 24 + coordinators as u128 * n as u128 * 8;
    let total = EPOCH_HEADER as u128 + body + 4;
    if total > bytes.len() as u128 {
        return Err(CodecError::Truncated {
            expected: usize::try_from(total).unwrap_or(usize::MAX),
            actual: bytes.len(),
        });
    }
    if (bytes.len() as u128) > total {
        return Err(CodecError::TrailingBytes(bytes.len() - total as usize));
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }

    let matrix = unpack_matrix(cur.take(bitmap_len as usize)?, m, n);
    let mut betas = Vec::with_capacity(n);
    for o in 0..n {
        let beta = cur.f64()?;
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }
    let decision_bytes = cur.take(decisions_len as usize)?;
    let decisions: Vec<bool> = (0..n)
        .map(|o| decision_bytes[o / 8] & (1 << (o % 8)) != 0)
        .collect();
    let mut thresholds = Vec::with_capacity(n);
    for _ in 0..n {
        thresholds.push(cur.u64()?);
    }
    let mut epsilons = Vec::with_capacity(n);
    for o in 0..n {
        let eps = cur.f64()?;
        if !eps.is_finite() || !(0.0..=1.0).contains(&eps) {
            return Err(CodecError::InvalidEpsilon { owner: o as u32 });
        }
        epsilons.push(eps);
    }
    let mut shares = Vec::with_capacity(coordinators as usize);
    for _ in 0..coordinators {
        let mut vector = Vec::with_capacity(n);
        for _ in 0..n {
            vector.push(cur.u64()?);
        }
        shares.push(vector);
    }

    Ok(EpochRecord {
        index: PublishedIndex::new(matrix, betas),
        decisions,
        lambda,
        common_count,
        epoch,
        thresholds,
        epsilons,
        shares,
        config: ConfigRecord {
            coordinators,
            policy_tag,
            policy_param,
            coin_bits,
            link_latency_us,
            link_bandwidth,
            backend_tag,
            seed,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> PublishedIndex {
        let mut m = MembershipMatrix::new(9, 5);
        for (p, o) in [(0u32, 0u32), (3, 2), (8, 4), (5, 0), (2, 3)] {
            m.set(ProviderId(p), OwnerId(o), true);
        }
        PublishedIndex::new(m, vec![0.0, 0.25, 0.5, 0.75, 1.0])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let bytes = encode(&index);
        let back = decode(&bytes).expect("roundtrip");
        assert_eq!(&back, &index);
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        assert_eq!(decode(&encode(&index)).unwrap(), index);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_index());
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(CodecError::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[4] = 9;
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(9)));
    }

    #[test]
    fn invalid_beta_rejected() {
        let mut bytes = encode(&sample_index());
        let n = bytes.len();
        // Overwrite the last β with NaN.
        bytes[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
        // And with an out-of-range value.
        bytes[n - 8..].copy_from_slice(&2.5f64.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample_index());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    fn sample_epoch_record() -> EpochRecord {
        let index = sample_index();
        let n = index.matrix().owners();
        EpochRecord {
            decisions: (0..n).map(|o| o % 2 == 0).collect(),
            lambda: 0.375,
            common_count: 3,
            epoch: 17,
            thresholds: (0..n as u64).map(|o| o * 3 + 1).collect(),
            epsilons: vec![0.0, 0.2, 0.4, 0.8, 1.0],
            shares: (0..3u64)
                .map(|c| (0..n as u64).map(|o| c * 1000 + o * 7).collect())
                .collect(),
            config: ConfigRecord {
                coordinators: 3,
                policy_tag: 2,
                policy_param: 0.9,
                coin_bits: 16,
                link_latency_us: 200.0,
                link_bandwidth: 125.0,
                backend_tag: 0,
                seed: 0xfeed_beef,
            },
            index,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn epoch_record_roundtrips() {
        let record = sample_epoch_record();
        let bytes = encode_epoch_record(&record);
        let back = decode_epoch_record(&bytes).expect("roundtrip");
        assert_eq!(back, record);
    }

    #[test]
    fn epoch_record_truncation_is_detected() {
        let bytes = encode_epoch_record(&sample_epoch_record());
        for cut in [0usize, 3, 5, 40, 81, bytes.len() - 5, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_epoch_record(&bytes[..cut]),
                    Err(CodecError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn epoch_record_flipped_byte_fails_checksum() {
        let clean = encode_epoch_record(&sample_epoch_record());
        // Flip one byte in the body (past the header fields with their
        // own domain checks): the CRC must catch it.
        let mut bytes = clean.clone();
        bytes[EPOCH_HEADER + 1] ^= 0x10;
        assert!(matches!(
            decode_epoch_record(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn epoch_record_rejects_v1_and_vice_versa() {
        let index = sample_index();
        assert_eq!(
            decode_epoch_record(&encode(&index)),
            Err(CodecError::UnsupportedVersion(1))
        );
        let bytes = encode_epoch_record(&sample_epoch_record());
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(2)));
    }

    #[test]
    fn epoch_record_rejects_unknown_tags_and_bad_scalars() {
        let record = sample_epoch_record();
        let mut tagged = record.clone();
        tagged.config.policy_tag = 9;
        let bytes = encode_epoch_record(&tagged);
        assert_eq!(
            decode_epoch_record(&bytes),
            Err(CodecError::UnknownTag {
                field: "policy",
                tag: 9
            })
        );
        let mut backend = record.clone();
        backend.config.backend_tag = 7;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&backend)),
            Err(CodecError::UnknownTag {
                field: "backend",
                tag: 7
            })
        );
        let mut lambda = record.clone();
        lambda.lambda = f64::NAN;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&lambda)),
            Err(CodecError::InvalidField { field: "lambda" })
        );
        let mut eps = record.clone();
        eps.epsilons[1] = 3.0;
        assert_eq!(
            decode_epoch_record(&encode_epoch_record(&eps)),
            Err(CodecError::InvalidEpsilon { owner: 1 })
        );
    }

    #[test]
    fn epoch_record_rejects_trailing_bytes() {
        let mut bytes = encode_epoch_record(&sample_epoch_record());
        bytes.push(0);
        assert_eq!(
            decode_epoch_record(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn epoch_record_huge_dimensions_do_not_allocate() {
        // Corrupt the owner-count field to u32::MAX: the decoder must
        // answer Truncated from the length check, not attempt a
        // 32-GiB allocation (and the CRC would catch it anyway).
        let mut bytes = encode_epoch_record(&sample_epoch_record());
        bytes[EPOCH_HEADER - 4..EPOCH_HEADER].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_epoch_record(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn errors_render() {
        assert!(CodecError::Truncated {
            expected: 10,
            actual: 3
        }
        .to_string()
        .contains("10"));
        assert!(CodecError::InvalidBeta { owner: 2 }
            .to_string()
            .contains("owner 2"));
    }
}
