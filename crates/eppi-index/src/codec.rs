//! Compact binary serialization of the published index.
//!
//! A real locator service persists and ships the index: the PPI server
//! loads it at boot, providers can mirror it, auditors archive it. The
//! allowed dependency set has no serialization backend, so the format is
//! hand-rolled: a fixed little-endian header, the row-major matrix
//! bitmap, then the per-owner β values — versioned and fully validated
//! on load (truncated, oversized or inconsistent input is rejected, not
//! trusted).
//!
//! ```text
//! magic  "EPPI"      4 bytes
//! version u16        (currently 1)
//! providers u32, owners u32
//! bitmap  ⌈providers·owners / 8⌉ bytes, row-major, LSB-first
//! betas   owners × f64 (little-endian bits)
//! ```

use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"EPPI";
const VERSION: u16 = 1;

/// Errors raised when decoding a serialized index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer is shorter than the declared content.
    Truncated {
        /// Bytes expected at minimum.
        expected: usize,
        /// Bytes available.
        actual: usize,
    },
    /// The magic header is missing.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// A β value decoded outside `\[0, 1\]` or non-finite.
    InvalidBeta {
        /// The offending owner index.
        owner: u32,
    },
    /// Trailing bytes after the declared content.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated index: need at least {expected} bytes, got {actual}"
                )
            }
            CodecError::BadMagic => write!(f, "missing EPPI magic header"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported index version {v}"),
            CodecError::InvalidBeta { owner } => {
                write!(f, "invalid β for owner {owner}: not a probability")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after index content"),
        }
    }
}

impl Error for CodecError {}

/// Serializes a published index to the versioned binary format.
pub fn encode(index: &PublishedIndex) -> Vec<u8> {
    let matrix = index.matrix();
    let (m, n) = (matrix.providers(), matrix.owners());
    let bitmap_len = (m * n).div_ceil(8);
    let mut out = Vec::with_capacity(4 + 2 + 8 + bitmap_len + n * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());

    let mut bitmap = vec![0u8; bitmap_len];
    for p in 0..m {
        for o in 0..n {
            if matrix.get(ProviderId(p as u32), OwnerId(o as u32)) {
                let bit = p * n + o;
                bitmap[bit / 8] |= 1 << (bit % 8);
            }
        }
    }
    out.extend_from_slice(&bitmap);
    for &beta in index.betas() {
        out.extend_from_slice(&beta.to_le_bytes());
    }
    out
}

/// Deserializes an index, validating structure and every β.
///
/// # Errors
///
/// Returns a [`CodecError`] for any malformed input; never panics on
/// untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<PublishedIndex, CodecError> {
    let need_header = 4 + 2 + 8;
    if bytes.len() < need_header {
        return Err(CodecError::Truncated {
            expected: need_header,
            actual: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let m = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
    let n = u32::from_le_bytes(bytes[10..14].try_into().expect("4 bytes")) as usize;
    let bitmap_len = (m * n).div_ceil(8);
    let total = need_header + bitmap_len + n * 8;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            expected: total,
            actual: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CodecError::TrailingBytes(bytes.len() - total));
    }

    let bitmap = &bytes[need_header..need_header + bitmap_len];
    let mut matrix = MembershipMatrix::new(m, n);
    for p in 0..m {
        for o in 0..n {
            let bit = p * n + o;
            if bitmap[bit / 8] & (1 << (bit % 8)) != 0 {
                matrix.set(ProviderId(p as u32), OwnerId(o as u32), true);
            }
        }
    }

    let mut betas = Vec::with_capacity(n);
    let beta_bytes = &bytes[need_header + bitmap_len..];
    for (o, chunk) in beta_bytes.chunks_exact(8).enumerate() {
        let beta = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(CodecError::InvalidBeta { owner: o as u32 });
        }
        betas.push(beta);
    }
    Ok(PublishedIndex::new(matrix, betas))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> PublishedIndex {
        let mut m = MembershipMatrix::new(9, 5);
        for (p, o) in [(0u32, 0u32), (3, 2), (8, 4), (5, 0), (2, 3)] {
            m.set(ProviderId(p), OwnerId(o), true);
        }
        PublishedIndex::new(m, vec![0.0, 0.25, 0.5, 0.75, 1.0])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let bytes = encode(&index);
        let back = decode(&bytes).expect("roundtrip");
        assert_eq!(&back, &index);
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = PublishedIndex::new(MembershipMatrix::new(1, 1), vec![0.0]);
        assert_eq!(decode(&encode(&index)).unwrap(), index);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_index());
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(CodecError::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&sample_index());
        bytes[4] = 9;
        assert_eq!(decode(&bytes), Err(CodecError::UnsupportedVersion(9)));
    }

    #[test]
    fn invalid_beta_rejected() {
        let mut bytes = encode(&sample_index());
        let n = bytes.len();
        // Overwrite the last β with NaN.
        bytes[n - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
        // And with an out-of-range value.
        bytes[n - 8..].copy_from_slice(&2.5f64.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::InvalidBeta { owner: 4 }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample_index());
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn errors_render() {
        assert!(CodecError::Truncated {
            expected: 10,
            actual: 3
        }
        .to_string()
        .contains("10"));
        assert!(CodecError::InvalidBeta { owner: 2 }
            .to_string()
            .contains("owner 2"));
    }
}
