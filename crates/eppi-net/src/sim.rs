//! Deterministic round-based network simulation.
//!
//! Nodes implement [`Node`] and exchange messages through a
//! [`Context`]; the [`Simulator`] delivers all messages sent in round
//! `r` at the start of round `r + 1`, until the network goes quiescent.
//! A [`LinkModel`] converts the message/byte counts into simulated time,
//! standing in for the paper's Emulab LAN.

use crate::{NodeId, WireSize};
use std::collections::VecDeque;

/// Link parameters used to convert traffic into simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way message latency in microseconds (applies once per round,
    /// since all messages of a round travel in parallel).
    pub latency_us: f64,
    /// Link bandwidth in bytes per microsecond (per node).
    pub bandwidth_bytes_per_us: f64,
}

impl LinkModel {
    /// A LAN-like default: 200 µs latency, 125 bytes/µs (≈ 1 Gb/s).
    pub const LAN: LinkModel = LinkModel {
        latency_us: 200.0,
        bandwidth_bytes_per_us: 125.0,
    };

    /// A WAN-like profile: 40 ms latency, 12.5 bytes/µs (≈ 100 Mb/s) —
    /// hospitals across a state network rather than one machine room.
    pub const WAN: LinkModel = LinkModel {
        latency_us: 40_000.0,
        bandwidth_bytes_per_us: 12.5,
    };

    /// Simulated time for one round in which the busiest node sent
    /// `max_bytes_per_node` bytes.
    pub fn round_time_us(&self, max_bytes_per_node: usize) -> f64 {
        self.latency_us + max_bytes_per_node as f64 / self.bandwidth_bytes_per_us
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::LAN
    }
}

/// Aggregate traffic statistics of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetStats {
    /// Rounds executed until quiescence.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Logical payload bits delivered, for protocols that track them
    /// (see the crate docs for the bits/bytes convention). The simulator
    /// itself cannot know the logical content of a payload, so it leaves
    /// this 0; protocol adapters such as
    /// [`crate::transport::SimTransport`] fill it.
    pub bits: u64,
    /// Messages dropped by an injected fault filter.
    pub dropped: u64,
    /// Simulated wall time in microseconds under the link model.
    pub simulated_us: f64,
}

/// A fault-injection filter: return `true` to drop the message sent from
/// `from` to `to` that would be delivered in `round`.
///
/// The ε-PPI protocols assume reliable delivery (the paper's semi-honest
/// model has no message loss); the filter exists to *test* that
/// assumption — e.g. that a lost SecSumShare batch visibly stalls the
/// protocol instead of silently corrupting the sums.
pub type FaultFilter = Box<dyn FnMut(usize, NodeId, NodeId) -> bool>;

/// Send-side interface handed to nodes.
#[derive(Debug)]
pub struct Context<P> {
    me: NodeId,
    round: usize,
    outbox: Vec<(NodeId, P)>,
}

impl<P> Context<P> {
    /// The node's own id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (0 for `on_start`).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Queues `payload` for delivery to `to` at the start of the next
    /// round. Sending to oneself is allowed and also delivered next
    /// round.
    pub fn send(&mut self, to: NodeId, payload: P) {
        self.outbox.push((to, payload));
    }
}

/// A protocol participant in the round-based simulation.
pub trait Node<P> {
    /// Called once before round 0; typically sends the first messages.
    fn on_start(&mut self, ctx: &mut Context<P>);

    /// Called for each message delivered to this node.
    fn on_message(&mut self, from: NodeId, payload: P, ctx: &mut Context<P>);
}

/// The round-based simulation engine.
pub struct Simulator<P, N> {
    nodes: Vec<N>,
    link: LinkModel,
    pending: VecDeque<(NodeId, NodeId, P)>,
    stats: NetStats,
    faults: Option<FaultFilter>,
}

impl<P, N: std::fmt::Debug> std::fmt::Debug for Simulator<P, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl<P: WireSize, N: Node<P>> Simulator<P, N> {
    /// Creates a simulator over the given nodes (node `i` gets id
    /// `NodeId(i)`).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, link: LinkModel) -> Self {
        assert!(!nodes.is_empty(), "at least one node required");
        Simulator {
            nodes,
            link,
            pending: VecDeque::new(),
            stats: NetStats::default(),
            faults: None,
        }
    }

    /// Installs a fault-injection filter (see [`FaultFilter`]).
    pub fn set_fault_filter(&mut self, filter: FaultFilter) {
        self.faults = Some(filter);
    }

    /// Runs `on_start` on every node, then delivers rounds until no
    /// messages remain or `max_rounds` is hit.
    ///
    /// Returns the traffic statistics.
    ///
    /// # Panics
    ///
    /// Panics if the protocol is still active after `max_rounds` (a
    /// protocol bug: ε-PPI protocols are constant-round).
    pub fn run(&mut self, max_rounds: usize) -> NetStats {
        let n = self.nodes.len();
        // Start phase.
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let mut ctx = Context {
                me: NodeId(i),
                round: 0,
                outbox: Vec::new(),
            };
            node.on_start(&mut ctx);
            for (to, p) in ctx.outbox {
                assert!(to.index() < n, "send to unknown node {to}");
                self.pending.push_back((NodeId(i), to, p));
            }
        }

        let mut round = 0usize;
        while !self.pending.is_empty() {
            round += 1;
            assert!(
                round <= max_rounds,
                "protocol still active after {max_rounds} rounds"
            );
            let mut deliveries: Vec<_> = self.pending.drain(..).collect();
            if let Some(filter) = self.faults.as_mut() {
                let before = deliveries.len();
                deliveries.retain(|&(from, to, _)| !filter(round, from, to));
                self.stats.dropped += (before - deliveries.len()) as u64;
            }
            let mut sent_bytes_per_node = vec![0usize; n];
            for &(from, _, ref p) in &deliveries {
                sent_bytes_per_node[from.index()] += p.wire_size();
            }
            let max_bytes = sent_bytes_per_node.iter().copied().max().unwrap_or(0);
            self.stats.simulated_us += self.link.round_time_us(max_bytes);
            self.stats.messages += deliveries.len() as u64;
            self.stats.bytes += deliveries
                .iter()
                .map(|(_, _, p)| p.wire_size() as u64)
                .sum::<u64>();

            for (from, to, payload) in deliveries {
                let mut ctx = Context {
                    me: to,
                    round,
                    outbox: Vec::new(),
                };
                self.nodes[to.index()].on_message(from, payload, &mut ctx);
                for (next_to, p) in ctx.outbox {
                    assert!(next_to.index() < n, "send to unknown node {next_to}");
                    self.pending.push_back((to, next_to, p));
                }
            }
        }
        self.stats.rounds = round;
        self.stats
    }

    /// Accesses a node after the run (to read its final state).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Consumes the simulator, returning all nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node forwards a counter to its successor until it reaches a
    /// limit; node 0 starts.
    struct RingCounter {
        n: usize,
        limit: u64,
        seen: Vec<u64>,
    }

    impl Node<u64> for RingCounter {
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(1 % self.n), 1);
            }
        }

        fn on_message(&mut self, _from: NodeId, v: u64, ctx: &mut Context<u64>) {
            self.seen.push(v);
            if v < self.limit {
                ctx.send(NodeId((ctx.me().index() + 1) % self.n), v + 1);
            }
        }
    }

    #[test]
    fn token_travels_the_ring() {
        let n = 4;
        let nodes: Vec<_> = (0..n)
            .map(|_| RingCounter {
                n,
                limit: 8,
                seen: Vec::new(),
            })
            .collect();
        let mut sim = Simulator::new(nodes, LinkModel::LAN);
        let stats = sim.run(100);
        assert_eq!(stats.rounds, 8);
        assert_eq!(stats.messages, 8);
        assert_eq!(stats.bytes, 8 * 8);
        assert!(stats.simulated_us > 0.0);
        // Node 1 saw tokens 1 and 5.
        assert_eq!(sim.node(NodeId(1)).seen, vec![1, 5]);
    }

    #[test]
    fn quiescence_with_no_messages() {
        let nodes: Vec<_> = (0..3)
            .map(|_| RingCounter {
                n: 3,
                limit: 0,
                seen: Vec::new(),
            })
            .collect();
        // Limit 0: node 0 sends token 1 which exceeds the limit, so one
        // round only.
        let mut sim = Simulator::new(nodes, LinkModel::LAN);
        let stats = sim.run(10);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "still active")]
    fn runaway_protocol_detected() {
        struct Ping;
        impl Node<u64> for Ping {
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.send(NodeId(0), 1);
            }
            fn on_message(&mut self, _: NodeId, v: u64, ctx: &mut Context<u64>) {
                ctx.send(NodeId(0), v);
            }
        }
        Simulator::new(vec![Ping], LinkModel::LAN).run(5);
    }

    #[test]
    fn fault_filter_drops_messages() {
        // Drop the first hop of the ring token: nothing ever happens.
        let nodes: Vec<_> = (0..4)
            .map(|_| RingCounter {
                n: 4,
                limit: 8,
                seen: Vec::new(),
            })
            .collect();
        let mut sim = Simulator::new(nodes, LinkModel::LAN);
        sim.set_fault_filter(Box::new(|round, _, _| round == 1));
        let stats = sim.run(100);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.messages, 0);
        assert!(sim.node(NodeId(1)).seen.is_empty());
    }

    #[test]
    fn fault_filter_targets_specific_links() {
        // Drop only the 1→2 hop: the token dies after two deliveries.
        let nodes: Vec<_> = (0..4)
            .map(|_| RingCounter {
                n: 4,
                limit: 8,
                seen: Vec::new(),
            })
            .collect();
        let mut sim = Simulator::new(nodes, LinkModel::LAN);
        sim.set_fault_filter(Box::new(|_, from, to| from == NodeId(1) && to == NodeId(2)));
        let stats = sim.run(100);
        assert_eq!(stats.dropped, 1);
        assert_eq!(sim.node(NodeId(1)).seen, vec![1]);
        assert!(sim.node(NodeId(2)).seen.is_empty(), "link was cut");
    }

    #[test]
    fn link_model_time() {
        let link = LinkModel {
            latency_us: 100.0,
            bandwidth_bytes_per_us: 10.0,
        };
        assert!((link.round_time_us(1000) - 200.0).abs() < 1e-9);
    }
}
