//! Lane framing, per-peer send coalescing and link pacing for the
//! pipelined MPC runtime.
//!
//! The pipelined driver (`eppi_protocol::pipelined_gmw`) runs many
//! independent circuit *lanes* concurrently over one threaded network.
//! Naively that multiplies the message count by the lane count; real
//! deployments instead write one frame per peer per flush, carrying
//! every lane's due batch. This module is that wire layer:
//!
//! * [`LaneItem`] — one lane's batch for one exchange step, tagged with
//!   `(lane, step)` so the receiver can demultiplex regardless of
//!   arrival interleaving.
//! * [`Frame`] — one framed write to one peer: all items headed there
//!   in this flush, stamped with its send time so a paced link can
//!   honour an *absolute* delivery deadline (receiver-side processing
//!   does not serialize the latencies).
//! * [`FrameSender`] — the coalescing writer: one
//!   [`PartySender::send_checked`] per peer per flush, counted as one
//!   message in the run's [`TrafficCounters`](crate::threaded::TrafficCounters)
//!   (that is the coalescing win), while the logical payload **bits**
//!   of every item are tallied per peer, keeping the workspace's
//!   bits/bytes accounting convention intact.
//! * [`FrameReceiver`] — the paced reader feeding a router thread.
//! * [`PacedFrameTransport`] — a classic lockstep [`Transport`] over
//!   the *same* frame format and pacing, so the frozen sequential
//!   driver can serve as an apples-to-apples baseline for the pipeline
//!   benchmarks.
//! * [`PipelineMetrics`] — the `mpc.pipeline.*` telemetry instruments
//!   (lane occupancy, stage stall time, triple-buffer depth).

use crate::threaded::{PartyReceiver, PartySender, TransportError};
use crate::transport::{PackedBatch, Transport};
use crate::{NodeId, WireSize};
use eppi_telemetry::{Counter, Histogram, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One lane's batch for one exchange step.
#[derive(Debug, Clone)]
pub struct LaneItem {
    /// Which pipeline lane the batch belongs to.
    pub lane: u32,
    /// The lane's exchange step number (0-based, deterministic in the
    /// circuit structure).
    pub step: u32,
    /// The packed payload of the step.
    pub batch: PackedBatch,
}

impl WireSize for LaneItem {
    fn wire_size(&self) -> usize {
        // 4-byte lane + 4-byte step headers plus the framed batch.
        8 + self.batch.wire_size()
    }
}

/// One framed write to one peer: every [`LaneItem`] headed there in
/// this flush.
#[derive(Debug, Clone)]
pub struct Frame {
    /// When the frame was written — the base of the paced link's
    /// absolute delivery deadline. Not part of the wire encoding.
    pub sent_at: Instant,
    /// The coalesced lane items.
    pub items: Vec<LaneItem>,
}

impl WireSize for Frame {
    fn wire_size(&self) -> usize {
        // 4-byte item count plus the items.
        4 + self.items.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

/// Emulated per-frame link latency.
///
/// The in-process channels deliver instantly; real provider networks do
/// not, and the pipeline exists precisely to keep multiple lanes' round
/// trips in flight at once. Pacing waits until `sent_at + latency` —
/// an *absolute* deadline, so a receiver that processes several frames
/// back-to-back pays the latency once, not once per frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkPacing {
    /// One-way frame delivery latency.
    pub latency: Duration,
}

impl LinkPacing {
    /// Blocks until the delivery deadline of a frame sent at `sent_at`.
    pub fn wait_for(&self, sent_at: Instant) {
        let deadline = sent_at + self.latency;
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
    }
}

/// The per-party coalescing frame writer.
#[derive(Debug)]
pub struct FrameSender {
    tx: PartySender<Frame>,
    bits: u64,
    frames: u64,
    items: u64,
}

impl FrameSender {
    /// Wraps the sending half of a party's endpoint.
    pub fn new(tx: PartySender<Frame>) -> Self {
        FrameSender {
            tx,
            bits: 0,
            frames: 0,
            items: 0,
        }
    }

    /// This party's id.
    pub fn me(&self) -> usize {
        self.tx.me().index()
    }

    /// Number of parties in the network.
    pub fn parties(&self) -> usize {
        self.tx.parties()
    }

    /// Writes one frame per peer carrying that peer's due items
    /// (`per_peer` is indexed by destination; the own slot and empty
    /// slots are skipped). All frames of a flush share one send
    /// timestamp.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if a peer's receiving half is
    /// gone (it failed and unwound).
    pub fn flush(&mut self, mut per_peer: Vec<Vec<LaneItem>>) -> Result<(), TransportError> {
        let now = Instant::now();
        let me = self.me();
        for (to, items) in per_peer.drain(..).enumerate() {
            if to == me || items.is_empty() {
                continue;
            }
            self.bits += items.iter().map(|i| i.batch.bits as u64).sum::<u64>();
            self.items += items.len() as u64;
            self.frames += 1;
            self.tx.send_checked(
                NodeId(to),
                Frame {
                    sent_at: now,
                    items,
                },
            )?;
        }
        Ok(())
    }

    /// Logical payload bits written so far (per item per peer).
    pub fn logical_bits(&self) -> u64 {
        self.bits
    }

    /// Frames written so far (= messages on the wire).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Lane items coalesced into those frames.
    pub fn coalesced_items(&self) -> u64 {
        self.items
    }
}

/// The per-party paced frame reader (what a router thread drains).
#[derive(Debug)]
pub struct FrameReceiver {
    rx: PartyReceiver<Frame>,
    pacing: Option<LinkPacing>,
}

impl FrameReceiver {
    /// Wraps the receiving half, optionally behind an emulated link.
    pub fn new(rx: PartyReceiver<Frame>, pacing: Option<LinkPacing>) -> Self {
        FrameReceiver { rx, pacing }
    }

    /// This party's id.
    pub fn me(&self) -> usize {
        self.rx.me().index()
    }

    /// Receives the next frame, honouring its pacing deadline.
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the network is silent past `timeout` or
    /// fully disconnected.
    pub fn recv(&mut self, timeout: Duration) -> Result<(usize, Vec<LaneItem>), TransportError> {
        let (from, frame) = self.rx.recv_timeout(timeout)?;
        if let Some(pacing) = self.pacing {
            pacing.wait_for(frame.sent_at);
        }
        Ok((from.index(), frame.items))
    }
}

/// A lockstep [`Transport`] over the frame wire format and pacing —
/// the sequential baseline the pipeline is benchmarked against.
///
/// Each exchange writes one single-item frame per peer and gathers one
/// per peer back, waiting out every frame's pacing deadline — exactly
/// the network conditions the pipelined driver sees, minus the
/// cross-lane coalescing and overlap. Runs under the frozen
/// [`run_party`](../../eppi_mpc/gmw_core/fn.run_party.html) driver.
#[derive(Debug)]
pub struct PacedFrameTransport {
    tx: PartySender<Frame>,
    rx: PartyReceiver<Frame>,
    pacing: Option<LinkPacing>,
    step: u32,
    bits_sent: u64,
}

impl PacedFrameTransport {
    /// Wraps a party's split endpoint halves.
    pub fn new(
        tx: PartySender<Frame>,
        rx: PartyReceiver<Frame>,
        pacing: Option<LinkPacing>,
    ) -> Self {
        PacedFrameTransport {
            tx,
            rx,
            pacing,
            step: 0,
            bits_sent: 0,
        }
    }

    /// Logical payload bits this endpoint has sent.
    pub fn bits_sent(&self) -> u64 {
        self.bits_sent
    }

    fn item(&self, batch: PackedBatch) -> LaneItem {
        LaneItem {
            lane: 0,
            step: self.step,
            batch,
        }
    }
}

impl Transport for PacedFrameTransport {
    fn me(&self) -> usize {
        self.tx.me().index()
    }

    fn parties(&self) -> usize {
        self.tx.parties()
    }

    fn scatter(&mut self, batches: Vec<PackedBatch>) {
        assert_eq!(batches.len(), self.parties(), "one batch per destination");
        let me = self.me();
        let now = Instant::now();
        for (to, batch) in batches.into_iter().enumerate() {
            if to == me {
                continue;
            }
            self.bits_sent += batch.bits as u64;
            let frame = Frame {
                sent_at: now,
                items: vec![self.item(batch)],
            };
            self.tx.send(NodeId(to), frame);
        }
    }

    fn broadcast(&mut self, batch: PackedBatch) {
        let me = self.me();
        let now = Instant::now();
        for to in 0..self.parties() {
            if to == me {
                continue;
            }
            self.bits_sent += batch.bits as u64;
            let frame = Frame {
                sent_at: now,
                items: vec![self.item(batch.clone())],
            };
            self.tx.send(NodeId(to), frame);
        }
    }

    fn collect(&mut self) -> Vec<(usize, PackedBatch)> {
        let step = self.step;
        self.step += 1;
        let frames = self.rx.gather();
        let mut out = Vec::with_capacity(frames.len());
        for (from, frame) in frames {
            if let Some(pacing) = self.pacing {
                pacing.wait_for(frame.sent_at);
            }
            let mut items = frame.items;
            assert_eq!(items.len(), 1, "sequential frames carry one item");
            let item = items.pop().expect("one item");
            assert_eq!(item.step, step, "frame from {from} out of step");
            out.push((from.index(), item.batch));
        }
        out
    }
}

/// The `mpc.pipeline.*` telemetry instruments of one pipelined run.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// `mpc.pipeline.lanes` — lanes completed.
    pub lanes: Arc<Counter>,
    /// `mpc.pipeline.frames` — coalesced frames written.
    pub frames: Arc<Counter>,
    /// `mpc.pipeline.lane_items` — lane items carried by those frames
    /// (items ÷ frames = the coalescing factor).
    pub lane_items: Arc<Counter>,
    /// `mpc.pipeline.lane_occupancy` — lanes in flight on this party,
    /// sampled when a worker picks a lane up.
    pub lane_occupancy: Arc<Histogram>,
    /// `mpc.pipeline.exchange_stall_ns` — per exchange, how long a
    /// worker sat parked waiting for the peers' batches.
    pub exchange_stall_ns: Arc<Histogram>,
    /// `mpc.pipeline.triple_stall_ns` — per lane, how long it waited on
    /// the streaming triple dealer.
    pub triple_stall_ns: Arc<Histogram>,
    /// `mpc.pipeline.triple_buffer` — dealer lead in buffered levels,
    /// sampled at every pull.
    pub triple_buffer: Arc<Histogram>,
}

impl PipelineMetrics {
    /// Registers (or re-binds) the instrument family in `registry`.
    pub fn register(registry: &Registry) -> Self {
        PipelineMetrics {
            lanes: registry.counter("mpc.pipeline.lanes", &[]),
            frames: registry.counter("mpc.pipeline.frames", &[]),
            lane_items: registry.counter("mpc.pipeline.lane_items", &[]),
            lane_occupancy: registry.histogram("mpc.pipeline.lane_occupancy", &[]),
            exchange_stall_ns: registry.histogram("mpc.pipeline.exchange_stall_ns", &[]),
            triple_stall_ns: registry.histogram("mpc.pipeline.triple_stall_ns", &[]),
            triple_buffer: registry.histogram("mpc.pipeline.triple_buffer", &[]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_parties;

    fn batch(v: u64, bits: usize) -> PackedBatch {
        PackedBatch {
            words: vec![v],
            bits,
        }
    }

    #[test]
    fn coalesced_flush_is_one_message_per_peer() {
        let (results, counters) = run_parties::<Frame, (u64, u64, u64), _>(3, |h| {
            let me = h.me().index();
            let (tx, rx) = h.split();
            let mut sender = FrameSender::new(tx);
            // Every party flushes 4 lane items to each peer in one go.
            let per_peer: Vec<Vec<LaneItem>> = (0..3)
                .map(|to| {
                    if to == me {
                        return Vec::new();
                    }
                    (0..4u32)
                        .map(|lane| LaneItem {
                            lane,
                            step: 0,
                            batch: batch(lane as u64, 10),
                        })
                        .collect()
                })
                .collect();
            sender.flush(per_peer).unwrap();
            let mut receiver = FrameReceiver::new(rx, None);
            let mut items = 0u64;
            for _ in 0..2 {
                let (_, got) = receiver.recv(Duration::from_secs(5)).unwrap();
                items += got.len() as u64;
            }
            (sender.frames(), sender.logical_bits(), items)
        });
        for (frames, bits, items) in &results {
            // 2 peers × 1 frame each, carrying 4 items × 10 bits.
            assert_eq!(*frames, 2);
            assert_eq!(*bits, 2 * 4 * 10);
            assert_eq!(*items, 2 * 4);
        }
        // The wire saw 1 message per peer per party — not 4.
        assert_eq!(counters.messages(), 3 * 2);
    }

    #[test]
    fn paced_delivery_honours_absolute_deadlines() {
        let latency = Duration::from_millis(20);
        let (results, _) = run_parties::<Frame, Duration, _>(2, move |h| {
            let me = h.me().index();
            let (tx, rx) = h.split();
            let mut sender = FrameSender::new(tx);
            let mut per_peer = vec![Vec::new(); 2];
            // 3 frames back-to-back (separate flushes).
            for step in 0..3u32 {
                per_peer[1 - me] = vec![LaneItem {
                    lane: 0,
                    step,
                    batch: batch(step as u64, 8),
                }];
                sender.flush(per_peer.clone()).unwrap();
            }
            let mut receiver = FrameReceiver::new(rx, Some(LinkPacing { latency }));
            let started = Instant::now();
            for _ in 0..3 {
                receiver.recv(Duration::from_secs(5)).unwrap();
            }
            started.elapsed()
        });
        for elapsed in &results {
            // Absolute deadlines: ~1 latency total, nowhere near 3.
            assert!(
                *elapsed >= latency && *elapsed < 3 * latency,
                "elapsed {elapsed:?}"
            );
        }
    }

    #[test]
    fn paced_frame_transport_exchanges_like_a_hub() {
        let (results, counters) = run_parties::<Frame, (u64, u64), _>(3, |h| {
            let me = h.me().index();
            let (tx, rx) = h.split();
            let mut t = PacedFrameTransport::new(
                tx,
                rx,
                Some(LinkPacing {
                    latency: Duration::from_micros(200),
                }),
            );
            t.broadcast(batch(1 << me, 8));
            let xor = t
                .collect()
                .into_iter()
                .fold(1u64 << me, |acc, (_, b)| acc ^ b.words[0]);
            (xor, t.bits_sent())
        });
        for (xor, bits) in &results {
            assert_eq!(*xor, 0b111);
            assert_eq!(*bits, 2 * 8);
        }
        assert_eq!(counters.messages(), 3 * 2);
    }

    #[test]
    fn frame_wire_size_counts_headers_and_items() {
        let frame = Frame {
            sent_at: Instant::now(),
            items: vec![
                LaneItem {
                    lane: 0,
                    step: 1,
                    batch: batch(7, 3),
                },
                LaneItem {
                    lane: 9,
                    step: 2,
                    batch: PackedBatch::empty(),
                },
            ],
        };
        // 4 (count) + [8 + (4 + 8)] + [8 + 4].
        assert_eq!(frame.wire_size(), 4 + 20 + 12);
    }
}
