//! # eppi-net — provider-network runtime for the ε-PPI construction
//!
//! The paper evaluates its construction protocol on an Emulab testbed of
//! physical machines connected over a LAN (Netty + protocol buffers).
//! This crate is the substitution (DESIGN.md §4): two interchangeable
//! backends for running multi-party protocols among simulated providers.
//!
//! * [`sim`] — a deterministic, single-threaded, round-based engine that
//!   scales to tens of thousands of nodes and accounts every message and
//!   byte through a configurable [`sim::LinkModel`]. Used for the large-`m`
//!   SecSumShare runs and for reproducible tests.
//! * [`threaded`] — a real multi-threaded executor (one OS thread per
//!   party, crossbeam channels) for wall-clock measurements (Fig. 6a/6c).
//! * [`transport`] — the [`transport::Transport`] trait the packed GMW
//!   core (`eppi-mpc::gmw_core`) runs over, with in-process-, simulator-
//!   and thread-backed implementations.
//! * [`pipeline`] — lane framing, per-peer send coalescing and paced
//!   link emulation for the pipelined multi-lane MPC runtime
//!   (`eppi-protocol::pipelined_gmw`), plus its `mpc.pipeline.*`
//!   telemetry instruments.
//! * [`topology`] — ring successor maps and coordinator selection used by
//!   the SecSumShare share-distribution step (Fig. 3).
//! * [`traced`] — a [`transport::Transport`] decorator emitting one
//!   causal span per protocol exchange (DESIGN.md §13), so MPC rounds
//!   show up in `eppi-trace` span trees.
//!
//! ## Traffic-accounting convention
//!
//! Every traffic report in the workspace exposes the same two units,
//! measured per message and summed over all parties:
//!
//! * **`bits`** (`bits_sent` on the GMW reports) — *logical payload
//!   bits*: the number of protocol-level share bits a message carries.
//!   This is the quantity the paper's cost model counts (one bit per
//!   party per peer per opened share), independent of framing, and is
//!   what makes the `O(gates · parties²)` growth of the pure-MPC
//!   baseline visible.
//! * **`bytes`** — *on-the-wire bytes* of the encoding actually
//!   exchanged, reported through [`WireSize`]. Packed GMW batches
//!   ([`transport::PackedBatch`]) frame 64 share bits per `u64` word
//!   plus a 4-byte length header, so `bytes` is roughly `bits / 8`
//!   rounded up to whole words — never compute one unit from the other;
//!   both are counted at the send site.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pipeline;
pub mod sim;
pub mod threaded;
pub mod topology;
pub mod traced;
pub mod transport;

use std::fmt;

/// Identifier of a network node (a provider or coordinator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense node index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Serialized size of a protocol payload, for bandwidth accounting.
///
/// The simulation never actually serializes messages; payload types
/// report the size their wire encoding would have (the paper's prototype
/// used protocol buffers — we count the equivalent fixed-width encoding).
pub trait WireSize {
    /// The payload's size in bytes on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        self.iter().map(WireSize::wire_size).sum::<usize>() + 4
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(7u32.wire_size(), 4);
        assert_eq!(true.wire_size(), 1);
        assert_eq!(vec![1u64, 2, 3].wire_size(), 28);
        assert_eq!(Some(1u64).wire_size(), 9);
        assert_eq!(None::<u64>.wire_size(), 1);
        assert_eq!((1u64, vec![true, false]).wire_size(), 8 + 6);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(NodeId(4).index(), 4);
    }
}
