//! Ring topology and coordinator selection (Fig. 3 of the paper).
//!
//! SecSumShare distributes a provider's `k`-th share to its `k`-th ring
//! successor, and aggregates super-shares at `c` *coordinators* — the
//! paper uses providers `p_0 … p_{c−1}` for simplicity, as do we.

use crate::NodeId;

/// A logical ring over `m` nodes with `c` designated coordinators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    nodes: usize,
    coordinators: usize,
}

impl Ring {
    /// Creates a ring of `nodes` providers with the first `coordinators`
    /// acting as share aggregators.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`, `coordinators == 0`, or
    /// `coordinators > nodes`.
    pub fn new(nodes: usize, coordinators: usize) -> Self {
        assert!(nodes >= 1, "ring needs at least one node");
        assert!(coordinators >= 1, "at least one coordinator required");
        assert!(
            coordinators <= nodes,
            "cannot have more coordinators ({coordinators}) than nodes ({nodes})"
        );
        Ring {
            nodes,
            coordinators,
        }
    }

    /// Number of nodes `m`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of coordinators `c`.
    pub fn coordinators(&self) -> usize {
        self.coordinators
    }

    /// The `k`-hop ring successor of `node`: `p_{(i+k) mod m}`.
    pub fn successor(&self, node: NodeId, k: usize) -> NodeId {
        NodeId((node.index() + k) % self.nodes)
    }

    /// The coordinator node ids `p_0 … p_{c−1}`.
    pub fn coordinator_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.coordinators).map(NodeId)
    }

    /// Whether `node` is a coordinator.
    pub fn is_coordinator(&self, node: NodeId) -> bool {
        node.index() < self.coordinators
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps() {
        let r = Ring::new(5, 3);
        assert_eq!(r.successor(NodeId(0), 0), NodeId(0));
        assert_eq!(r.successor(NodeId(0), 2), NodeId(2));
        assert_eq!(r.successor(NodeId(4), 1), NodeId(0));
        assert_eq!(r.successor(NodeId(3), 4), NodeId(2));
    }

    #[test]
    fn coordinators_are_prefix() {
        let r = Ring::new(5, 3);
        let ids: Vec<_> = r.coordinator_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(r.is_coordinator(NodeId(2)));
        assert!(!r.is_coordinator(NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "more coordinators")]
    fn too_many_coordinators_rejected() {
        Ring::new(2, 3);
    }
}
