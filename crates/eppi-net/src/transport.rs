//! Pluggable party-to-party transports for the packed GMW core.
//!
//! The GMW protocol logic lives in `eppi-mpc::gmw_core` as a sans-io
//! state machine; everything network-shaped is behind the [`Transport`]
//! trait defined here. One protocol *exchange* is: every party deposits
//! its outgoing batches ([`Transport::scatter`] for personalized
//! payloads, [`Transport::broadcast`] for the common d/e or output
//! batch), then every party calls [`Transport::collect`] to receive one
//! batch from each peer. Three implementations cover the three execution
//! styles the workspace needs:
//!
//! * [`InProcessTransport`] — a shared in-memory hub for driving all
//!   parties in lockstep on one thread (the reference executor).
//! * [`SimTransport`] — each exchange runs as one round of the
//!   deterministic [`crate::sim::Simulator`] under a
//!   [`crate::sim::LinkModel`], so the run accumulates simulated network
//!   time in addition to traffic counts.
//! * [`ThreadedTransport`] — wraps a [`crate::threaded::PartyHandle`],
//!   so each party can run the straight-line protocol on its own OS
//!   thread with real (crossbeam) message exchange.
//!
//! All three account traffic in both units of the workspace convention
//! (see the crate docs): logical payload **bits** and on-the-wire
//! **bytes** of the packed encoding, the latter via [`WireSize`].

use crate::sim::{Context, LinkModel, NetStats, Node, Simulator};
use crate::threaded::PartyHandle;
use crate::{NodeId, WireSize};
use std::cell::RefCell;
use std::rc::Rc;

/// A batch of packed share bits exchanged in one protocol round.
///
/// `words` carries the payload in a protocol-defined layout; `bits`
/// counts the logical payload bits for traffic accounting (the `bits`
/// unit of the crate's convention). Input-share and output batches use
/// the dense layout — bit `i` at bit `i % 64` of `words[i / 64]`, which
/// is what [`bit`](PackedBatch::bit) reads — while AND-layer batches
/// word-align their two halves (`d` words then `e` words). The wire
/// encoding is a 4-byte length header plus the 8-byte words, which is
/// what [`WireSize`] reports.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedBatch {
    /// The packed payload, 64 bits per word.
    pub words: Vec<u64>,
    /// Number of logical payload bits in `words`.
    pub bits: usize,
}

impl PackedBatch {
    /// An empty batch (still a protocol message when exchanged).
    pub fn empty() -> Self {
        PackedBatch::default()
    }

    /// Reads logical bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bits`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.bits, "bit {i} out of range ({})", self.bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }
}

impl WireSize for PackedBatch {
    fn wire_size(&self) -> usize {
        4 + 8 * self.words.len()
    }
}

/// One party's endpoint in a round-synchronized exchange network.
///
/// The send half ([`scatter`](Transport::scatter) /
/// [`broadcast`](Transport::broadcast)) must not block; the round
/// completes when the party calls [`collect`](Transport::collect).
/// Single-threaded backends rely on this split to drive all endpoints
/// in lockstep: first every party deposits, then every party collects.
pub trait Transport {
    /// This party's id.
    fn me(&self) -> usize;

    /// Number of parties in the network.
    fn parties(&self) -> usize;

    /// Sends a personalized batch to every peer. `batches` must hold
    /// one entry per party, indexed by destination; the entry at
    /// [`me`](Transport::me) is ignored.
    fn scatter(&mut self, batches: Vec<PackedBatch>);

    /// Sends the same batch to every peer.
    fn broadcast(&mut self, batch: PackedBatch);

    /// Completes the exchange: returns exactly one batch per peer as
    /// `(sender, batch)`, in ascending sender order.
    fn collect(&mut self) -> Vec<(usize, PackedBatch)>;
}

/// Aggregate traffic observed by a transport hub, in both accounting
/// units (see the crate docs for the bits/bytes convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportReport {
    /// Completed exchanges (protocol rounds).
    pub rounds: usize,
    /// Messages sent across all parties.
    pub messages: u64,
    /// Logical payload bits sent across all parties.
    pub bits: u64,
    /// On-the-wire bytes sent across all parties ([`WireSize`] of every
    /// message).
    pub bytes: u64,
}

// ---------------------------------------------------------------------
// In-process hub
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct InProcessState {
    parties: usize,
    inboxes: Vec<Vec<(usize, PackedBatch)>>,
    deposited: usize,
    report: TransportReport,
}

impl InProcessState {
    fn deposit(&mut self, from: usize, mut per_peer: impl FnMut(usize) -> PackedBatch) {
        for to in 0..self.parties {
            if to == from {
                continue;
            }
            let batch = per_peer(to);
            self.report.messages += 1;
            self.report.bits += batch.bits as u64;
            self.report.bytes += batch.wire_size() as u64;
            self.inboxes[to].push((from, batch));
        }
        self.deposited += 1;
        if self.deposited == self.parties {
            self.deposited = 0;
            self.report.rounds += 1;
        }
    }
}

/// Endpoint of the single-threaded in-memory hub.
///
/// Create one endpoint per party with [`InProcessTransport::hub`] and
/// drive them in lockstep (all deposits, then all collects); batches
/// are moved, never serialized. Traffic is shared hub-wide and read
/// back with [`InProcessTransport::report`].
#[derive(Debug)]
pub struct InProcessTransport {
    me: usize,
    state: Rc<RefCell<InProcessState>>,
}

impl InProcessTransport {
    /// Creates a connected hub of `parties` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn hub(parties: usize) -> Vec<InProcessTransport> {
        assert!(parties >= 1, "at least one party required");
        let state = Rc::new(RefCell::new(InProcessState {
            parties,
            inboxes: vec![Vec::new(); parties],
            deposited: 0,
            report: TransportReport::default(),
        }));
        (0..parties)
            .map(|me| InProcessTransport {
                me,
                state: Rc::clone(&state),
            })
            .collect()
    }

    /// The hub-wide traffic totals so far.
    pub fn report(&self) -> TransportReport {
        self.state.borrow().report
    }
}

impl Transport for InProcessTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn parties(&self) -> usize {
        self.state.borrow().parties
    }

    fn scatter(&mut self, mut batches: Vec<PackedBatch>) {
        let mut state = self.state.borrow_mut();
        assert_eq!(batches.len(), state.parties, "one batch per destination");
        state.deposit(self.me, |to| std::mem::take(&mut batches[to]));
    }

    fn broadcast(&mut self, batch: PackedBatch) {
        let mut state = self.state.borrow_mut();
        state.deposit(self.me, |_| batch.clone());
    }

    fn collect(&mut self) -> Vec<(usize, PackedBatch)> {
        let mut state = self.state.borrow_mut();
        let mut got = std::mem::take(&mut state.inboxes[self.me]);
        assert_eq!(
            got.len(),
            state.parties - 1,
            "collect before every party deposited"
        );
        got.sort_by_key(|&(from, _)| from);
        got
    }
}

// ---------------------------------------------------------------------
// Simulator-backed hub
// ---------------------------------------------------------------------

/// A [`Node`] that sends its staged batches on start and records what
/// it receives — the per-exchange adapter between the lockstep
/// transport and the round-based [`Simulator`].
#[derive(Debug, Default)]
struct Mailbox {
    sends: Vec<(NodeId, PackedBatch)>,
    got: Vec<(usize, PackedBatch)>,
}

impl Node<PackedBatch> for Mailbox {
    fn on_start(&mut self, ctx: &mut Context<PackedBatch>) {
        for (to, batch) in self.sends.drain(..) {
            ctx.send(to, batch);
        }
    }

    fn on_message(&mut self, from: NodeId, payload: PackedBatch, _ctx: &mut Context<PackedBatch>) {
        self.got.push((from.index(), payload));
    }
}

#[derive(Debug)]
struct SimState {
    parties: usize,
    link: LinkModel,
    /// Batches staged for the current exchange, per sender.
    staged: Vec<Vec<(NodeId, PackedBatch)>>,
    deposited: usize,
    inboxes: Vec<Vec<(usize, PackedBatch)>>,
    stats: NetStats,
}

impl SimState {
    /// Runs the completed exchange as one simulator round and files the
    /// deliveries into the per-party inboxes.
    fn run_exchange(&mut self) {
        let nodes: Vec<Mailbox> = self
            .staged
            .iter_mut()
            .map(|sends| Mailbox {
                sends: std::mem::take(sends),
                got: Vec::new(),
            })
            .collect();
        let mut sim = Simulator::new(nodes, self.link);
        let round = sim.run(2);
        self.stats.rounds += round.rounds;
        self.stats.messages += round.messages;
        self.stats.bytes += round.bytes;
        self.stats.dropped += round.dropped;
        self.stats.simulated_us += round.simulated_us;
        for (p, node) in sim.into_nodes().into_iter().enumerate() {
            let mut got = node.got;
            got.sort_by_key(|&(from, _)| from);
            self.inboxes[p] = got;
        }
    }
}

/// Endpoint of the [`Simulator`]-backed hub.
///
/// Each completed exchange (all parties deposited, first collect) runs
/// as one round of the deterministic network simulator, so the
/// accumulated [`NetStats`] include simulated wall time under the
/// configured [`LinkModel`] — the quantity behind the paper's Fig. 6a
/// latency curves. Drive the endpoints in lockstep exactly like
/// [`InProcessTransport`].
#[derive(Debug)]
pub struct SimTransport {
    me: usize,
    state: Rc<RefCell<SimState>>,
    bits: Rc<RefCell<u64>>,
}

impl SimTransport {
    /// Creates a connected simulated hub of `parties` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn hub(parties: usize, link: LinkModel) -> Vec<SimTransport> {
        assert!(parties >= 1, "at least one party required");
        let state = Rc::new(RefCell::new(SimState {
            parties,
            link,
            staged: vec![Vec::new(); parties],
            deposited: 0,
            inboxes: vec![Vec::new(); parties],
            stats: NetStats::default(),
        }));
        let bits = Rc::new(RefCell::new(0u64));
        (0..parties)
            .map(|me| SimTransport {
                me,
                state: Rc::clone(&state),
                bits: Rc::clone(&bits),
            })
            .collect()
    }

    /// The accumulated simulator statistics, with
    /// [`NetStats::bits`] filled from the hub's logical-bit tally.
    pub fn stats(&self) -> NetStats {
        let mut stats = self.state.borrow().stats;
        stats.bits = *self.bits.borrow();
        stats
    }

    fn deposit(&self, mut per_peer: impl FnMut(usize) -> PackedBatch) {
        let mut state = self.state.borrow_mut();
        let mut bits = self.bits.borrow_mut();
        for to in 0..state.parties {
            if to == self.me {
                continue;
            }
            let batch = per_peer(to);
            *bits += batch.bits as u64;
            state.staged[self.me].push((NodeId(to), batch));
        }
        state.deposited += 1;
        if state.deposited == state.parties {
            state.deposited = 0;
            state.run_exchange();
        }
    }
}

impl Transport for SimTransport {
    fn me(&self) -> usize {
        self.me
    }

    fn parties(&self) -> usize {
        self.state.borrow().parties
    }

    fn scatter(&mut self, mut batches: Vec<PackedBatch>) {
        assert_eq!(batches.len(), self.parties(), "one batch per destination");
        self.deposit(|to| std::mem::take(&mut batches[to]));
    }

    fn broadcast(&mut self, batch: PackedBatch) {
        self.deposit(|_| batch.clone());
    }

    fn collect(&mut self) -> Vec<(usize, PackedBatch)> {
        let mut state = self.state.borrow_mut();
        let got = std::mem::take(&mut state.inboxes[self.me]);
        assert_eq!(
            got.len(),
            state.parties - 1,
            "collect before every party deposited"
        );
        got
    }
}

// ---------------------------------------------------------------------
// Threaded (crossbeam) transport
// ---------------------------------------------------------------------

/// [`Transport`] over a [`PartyHandle`]: one party per OS thread with
/// real message exchange.
///
/// Byte/message totals live in the run's shared
/// [`crate::threaded::TrafficCounters`] (the handle counts every send);
/// this wrapper additionally tallies the logical payload bits this
/// endpoint sent, so the caller can sum the per-party results into a
/// run-wide `bits` figure.
#[derive(Debug)]
pub struct ThreadedTransport {
    handle: PartyHandle<PackedBatch>,
    bits_sent: u64,
}

impl ThreadedTransport {
    /// Wraps a party handle.
    pub fn new(handle: PartyHandle<PackedBatch>) -> Self {
        ThreadedTransport {
            handle,
            bits_sent: 0,
        }
    }

    /// Logical payload bits this endpoint has sent.
    pub fn bits_sent(&self) -> u64 {
        self.bits_sent
    }
}

impl Transport for ThreadedTransport {
    fn me(&self) -> usize {
        self.handle.me().index()
    }

    fn parties(&self) -> usize {
        self.handle.parties()
    }

    fn scatter(&mut self, batches: Vec<PackedBatch>) {
        assert_eq!(batches.len(), self.parties(), "one batch per destination");
        let me = self.me();
        for (to, batch) in batches.into_iter().enumerate() {
            if to != me {
                self.bits_sent += batch.bits as u64;
                self.handle.send(NodeId(to), batch);
            }
        }
    }

    fn broadcast(&mut self, batch: PackedBatch) {
        self.bits_sent += (batch.bits * (self.parties() - 1)) as u64;
        self.handle.broadcast(batch);
    }

    fn collect(&mut self) -> Vec<(usize, PackedBatch)> {
        self.handle
            .gather()
            .into_iter()
            .map(|(from, batch)| (from.index(), batch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_parties;

    fn word_batch(v: u64, bits: usize) -> PackedBatch {
        PackedBatch {
            words: vec![v],
            bits,
        }
    }

    /// One lockstep broadcast exchange: everyone sends its id word and
    /// XORs what it collects.
    fn lockstep_xor<T: Transport>(transports: &mut [T]) -> Vec<u64> {
        for (p, t) in transports.iter_mut().enumerate() {
            t.broadcast(word_batch(1 << p, 8));
        }
        transports
            .iter_mut()
            .enumerate()
            .map(|(p, t)| {
                t.collect()
                    .into_iter()
                    .fold(1u64 << p, |acc, (_, b)| acc ^ b.words[0])
            })
            .collect()
    }

    #[test]
    fn packed_batch_bits_and_wire_size() {
        let b = PackedBatch {
            words: vec![0b101, 0b1],
            bits: 65,
        };
        assert!(b.bit(0) && !b.bit(1) && b.bit(2) && b.bit(64));
        assert_eq!(b.wire_size(), 4 + 16);
        assert_eq!(PackedBatch::empty().wire_size(), 4);
    }

    #[test]
    fn in_process_hub_exchanges_and_accounts() {
        let mut hub = InProcessTransport::hub(3);
        let opened = lockstep_xor(&mut hub);
        assert_eq!(opened, vec![0b111; 3]);
        let report = hub[0].report();
        assert_eq!(report.rounds, 1);
        assert_eq!(report.messages, 6);
        assert_eq!(report.bits, 6 * 8);
        assert_eq!(report.bytes, 6 * 12);
    }

    #[test]
    fn in_process_scatter_is_personalized() {
        let mut hub = InProcessTransport::hub(3);
        for (p, t) in hub.iter_mut().enumerate() {
            let batches = (0..3)
                .map(|to| word_batch((p * 10 + to) as u64, 8))
                .collect();
            t.scatter(batches);
        }
        for (p, t) in hub.iter_mut().enumerate() {
            for (from, batch) in t.collect() {
                assert_eq!(batch.words[0], (from * 10 + p) as u64);
            }
        }
    }

    #[test]
    fn sim_hub_accumulates_net_stats_per_exchange() {
        let mut hub = SimTransport::hub(4, LinkModel::LAN);
        let first = lockstep_xor(&mut hub);
        assert_eq!(first, vec![0b1111; 4]);
        let stats1 = hub[0].stats();
        assert_eq!(stats1.rounds, 1);
        assert_eq!(stats1.messages, 12);
        assert_eq!(stats1.bits, 12 * 8);
        assert!(stats1.simulated_us >= LinkModel::LAN.latency_us);
        // A second exchange adds another simulated round.
        let second = lockstep_xor(&mut hub);
        assert_eq!(second, vec![0b1111; 4]);
        let stats2 = hub[0].stats();
        assert_eq!(stats2.rounds, 2);
        assert!(stats2.simulated_us > stats1.simulated_us);
    }

    #[test]
    fn threaded_transport_runs_per_thread() {
        let (results, counters) = run_parties::<PackedBatch, (u64, u64), _>(3, |h| {
            let mut t = ThreadedTransport::new(h);
            let me = t.me();
            t.broadcast(word_batch(1 << me, 8));
            let opened = t
                .collect()
                .into_iter()
                .fold(1u64 << me, |acc, (_, b)| acc ^ b.words[0]);
            (opened, t.bits_sent())
        });
        let bits: u64 = results.iter().map(|&(_, b)| b).sum();
        assert!(results.iter().all(|&(v, _)| v == 0b111));
        assert_eq!(bits, 6 * 8);
        assert_eq!(counters.messages(), 6);
        assert_eq!(counters.bytes(), 6 * 12);
    }
}
