//! Causal tracing for [`Transport`] endpoints.
//!
//! [`TracedTransport`] wraps any [`Transport`] and emits one
//! `net.exchange` span per completed protocol exchange (deposit →
//! [`collect`](Transport::collect)), parented under a caller-supplied
//! [`SpanCtx`] — typically a per-party span opened by the executor
//! driving the protocol. The span's payload carries the logical bits
//! this endpoint deposited during the exchange, so a trace viewer shows
//! both where protocol time goes (the collect wait dominates under
//! skew) and how much each round shipped.
//!
//! Tracing a disabled [`Tracer`] or a [`SpanCtx::NONE`] parent records
//! nothing and costs nothing beyond a branch, so executors can wrap
//! their transports unconditionally.

use crate::transport::{PackedBatch, Transport};
use eppi_trace::{SpanCtx, SpanGuard, Tracer};

/// A [`Transport`] decorator emitting one span per protocol exchange.
///
/// The exchange span opens at the first deposit
/// ([`scatter`](Transport::scatter) / [`broadcast`](Transport::broadcast))
/// and closes when [`collect`](Transport::collect) returns, so it covers
/// the peer wait. See the [module docs](self) for the payload
/// convention.
#[derive(Debug)]
pub struct TracedTransport<T> {
    inner: T,
    tracer: Tracer,
    parent: SpanCtx,
    open: Option<SpanGuard>,
    bits_this_exchange: u64,
    exchanges: u64,
}

impl<T: Transport> TracedTransport<T> {
    /// Wraps `inner`, parenting every exchange span under `parent`.
    pub fn new(inner: T, tracer: Tracer, parent: SpanCtx) -> Self {
        TracedTransport {
            inner,
            tracer,
            parent,
            open: None,
            bits_this_exchange: 0,
            exchanges: 0,
        }
    }

    /// Completed (collected) exchanges so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwraps the decorator. An in-flight exchange span (deposited but
    /// not yet collected) closes here.
    pub fn into_inner(mut self) -> T {
        self.open = None;
        self.inner
    }

    fn opening(&mut self) {
        if self.open.is_none() {
            self.open = Some(self.tracer.child(self.parent, "net.exchange"));
            self.bits_this_exchange = 0;
        }
    }
}

impl<T: Transport> Transport for TracedTransport<T> {
    fn me(&self) -> usize {
        self.inner.me()
    }

    fn parties(&self) -> usize {
        self.inner.parties()
    }

    fn scatter(&mut self, batches: Vec<PackedBatch>) {
        self.opening();
        let me = self.inner.me();
        self.bits_this_exchange += batches
            .iter()
            .enumerate()
            .filter(|&(to, _)| to != me)
            .map(|(_, b)| b.bits as u64)
            .sum::<u64>();
        self.inner.scatter(batches);
    }

    fn broadcast(&mut self, batch: PackedBatch) {
        self.opening();
        self.bits_this_exchange += (batch.bits * (self.inner.parties() - 1)) as u64;
        self.inner.broadcast(batch);
    }

    fn collect(&mut self) -> Vec<(usize, PackedBatch)> {
        let got = self.inner.collect();
        if let Some(mut span) = self.open.take() {
            span.set_payload(self.bits_this_exchange);
        }
        self.exchanges += 1;
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use eppi_trace::TraceConfig;

    fn word_batch(v: u64, bits: usize) -> PackedBatch {
        PackedBatch {
            words: vec![v],
            bits,
        }
    }

    #[test]
    fn emits_one_span_per_exchange_with_bit_payload() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("test.run");
        let parent = root.ctx();
        let mut hub: Vec<_> = InProcessTransport::hub(3)
            .into_iter()
            .map(|t| TracedTransport::new(t, tracer.clone(), parent))
            .collect();
        for round in 0..2 {
            for (p, t) in hub.iter_mut().enumerate() {
                t.broadcast(word_batch((round * 3 + p) as u64, 8));
            }
            for t in hub.iter_mut() {
                assert_eq!(t.collect().len(), 2);
            }
        }
        assert!(hub.iter().all(|t| t.exchanges() == 2));
        drop(root);

        let log = tracer.collect();
        let tree = log.span_tree(parent.trace_id()).expect("trace");
        // 3 parties × 2 exchanges, every span carrying 2 peers × 8 bits.
        assert_eq!(tree.count("net.exchange"), 6);
        let mut seen = 0;
        let mut walk = vec![&tree];
        while let Some(n) = walk.pop() {
            if n.name == "net.exchange" {
                assert_eq!(n.payload, 16);
                seen += 1;
            }
            walk.extend(n.children.iter());
        }
        assert_eq!(seen, 6);
    }

    #[test]
    fn scatter_counts_only_peer_bits() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("test.run");
        let parent = root.ctx();
        let mut hub: Vec<_> = InProcessTransport::hub(2)
            .into_iter()
            .map(|t| TracedTransport::new(t, tracer.clone(), parent))
            .collect();
        for t in hub.iter_mut() {
            t.scatter(vec![word_batch(1, 8), word_batch(2, 8)]);
        }
        for t in hub.iter_mut() {
            t.collect();
        }
        drop(root);
        let log = tracer.collect();
        let tree = log.span_tree(parent.trace_id()).unwrap();
        for child in &tree.children {
            // The self-addressed batch is not traffic.
            assert_eq!(child.payload, 8);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_preserves_behavior() {
        let tracer = Tracer::disabled();
        let mut hub: Vec<_> = InProcessTransport::hub(2)
            .into_iter()
            .map(|t| TracedTransport::new(t, tracer.clone(), SpanCtx::NONE))
            .collect();
        for (p, t) in hub.iter_mut().enumerate() {
            t.broadcast(word_batch(1 << p, 4));
        }
        let opened: Vec<_> = hub.iter_mut().map(|t| t.collect()).collect();
        assert!(opened.iter().all(|got| got.len() == 1));
        assert_eq!(tracer.collect().total_events(), 0);
        assert_eq!(hub[0].inner().report().messages, 2);
    }
}
