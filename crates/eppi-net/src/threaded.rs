//! Real multi-threaded party execution over crossbeam channels.
//!
//! Each party runs as an OS thread with a [`PartyHandle`] giving it
//! point-to-point `send`/`recv`, `broadcast`, and `gather` primitives —
//! the communication patterns the ε-PPI construction protocol needs.
//! Traffic is counted with atomics — totals plus a per-peer split
//! (messages, bytes, and gather rounds) — so wall-clock experiments
//! (Fig. 6a/6c) can report bandwidth, and
//! [`TrafficCounters::publish_to`] exports the split into an
//! `eppi-telemetry` registry as `<prefix>.messages{peer}` /
//! `<prefix>.bytes{peer}` / `<prefix>.rounds{peer}` families.

use crate::{NodeId, WireSize};
use crossbeam::channel::{unbounded, Receiver, Sender};
use eppi_telemetry::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One party's share of the traffic in a threaded run.
#[derive(Debug, Default)]
pub struct PartyTraffic {
    messages: AtomicU64,
    bytes: AtomicU64,
    rounds: AtomicU64,
}

impl PartyTraffic {
    /// Messages this party sent.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes this party sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Synchronization rounds ([`PartyHandle::gather`] calls) this
    /// party completed.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

/// Shared traffic counters of one threaded run: run-wide totals plus
/// the per-peer split.
#[derive(Debug, Default)]
pub struct TrafficCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    per_party: Vec<PartyTraffic>,
}

impl TrafficCounters {
    /// Counters for a run of `parties` parties.
    pub fn new(parties: usize) -> Self {
        TrafficCounters {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            per_party: (0..parties).map(|_| PartyTraffic::default()).collect(),
        }
    }

    /// Total messages sent by all parties.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent by all parties.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The per-peer traffic split, indexed by party id.
    pub fn per_party(&self) -> &[PartyTraffic] {
        &self.per_party
    }

    /// Adds this run's traffic to `registry` as the counter families
    /// `<prefix>.messages` / `<prefix>.bytes` / `<prefix>.rounds` — one
    /// unlabeled total per family plus one `peer="i"` member per party.
    /// Counters are cumulative, so publishing several runs under the
    /// same prefix sums them.
    pub fn publish_to(&self, registry: &Registry, prefix: &str) {
        let messages = format!("{prefix}.messages");
        let bytes = format!("{prefix}.bytes");
        let rounds = format!("{prefix}.rounds");
        registry.counter(&messages, &[]).add(self.messages());
        registry.counter(&bytes, &[]).add(self.bytes());
        for (i, party) in self.per_party.iter().enumerate() {
            let peer = i.to_string();
            let labels: &[(&str, &str)] = &[("peer", &peer)];
            registry.counter(&messages, labels).add(party.messages());
            registry.counter(&bytes, labels).add(party.bytes());
            registry.counter(&rounds, labels).add(party.rounds());
        }
    }
}

/// A party's endpoint in the threaded network.
#[derive(Debug)]
pub struct PartyHandle<P> {
    me: NodeId,
    senders: Vec<Sender<(NodeId, P)>>,
    receiver: Receiver<(NodeId, P)>,
    counters: Arc<TrafficCounters>,
    /// Messages that arrived ahead of their gather step, per sender.
    pending: Vec<std::collections::VecDeque<P>>,
}

impl<P: WireSize + Send + Clone> PartyHandle<P> {
    /// This party's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of parties in the network.
    pub fn parties(&self) -> usize {
        self.senders.len()
    }

    /// Sends `payload` to party `to` (sending to oneself is allowed).
    ///
    /// # Panics
    ///
    /// Panics if the receiving party has already shut down.
    pub fn send(&self, to: NodeId, payload: P) {
        let size = payload.wire_size() as u64;
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(size, Ordering::Relaxed);
        let mine = &self.counters.per_party[self.me.index()];
        mine.messages.fetch_add(1, Ordering::Relaxed);
        mine.bytes.fetch_add(size, Ordering::Relaxed);
        self.senders[to.index()]
            .send((self.me, payload))
            .expect("receiving party hung up");
    }

    /// Blocks until the next message arrives. Messages buffered by an
    /// earlier [`gather`](Self::gather) are delivered first, in sender
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if all senders have disconnected (protocol bug).
    pub fn recv(&mut self) -> (NodeId, P) {
        for (p, queue) in self.pending.iter_mut().enumerate() {
            if let Some(payload) = queue.pop_front() {
                return (NodeId(p), payload);
            }
        }
        self.receiver.recv().expect("all parties hung up")
    }

    /// Sends `payload` to every *other* party.
    pub fn broadcast(&self, payload: P) {
        for p in 0..self.parties() {
            if p != self.me.index() {
                self.send(NodeId(p), payload.clone());
            }
        }
    }

    /// Receives exactly one message from every other party, returned in
    /// sender order.
    ///
    /// Parties run asynchronously, so a fast peer may already have sent
    /// messages belonging to a *later* protocol step; those are buffered
    /// and served by the next `gather`/[`recv`](Self::recv) instead of
    /// corrupting this one.
    pub fn gather(&mut self) -> Vec<(NodeId, P)> {
        let parties = self.parties();
        let me = self.me.index();
        self.counters.per_party[me]
            .rounds
            .fetch_add(1, Ordering::Relaxed);
        let mut got: Vec<Option<P>> = vec![None; parties];
        let mut remaining = parties - 1;
        // Serve buffered messages first.
        for (p, slot) in got.iter_mut().enumerate() {
            if p != me && slot.is_none() {
                if let Some(payload) = self.pending[p].pop_front() {
                    *slot = Some(payload);
                    remaining -= 1;
                }
            }
        }
        while remaining > 0 {
            let (from, payload) = self.receiver.recv().expect("all parties hung up");
            if got[from.index()].is_none() {
                got[from.index()] = Some(payload);
                remaining -= 1;
            } else {
                self.pending[from.index()].push_back(payload);
            }
        }
        got.into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (NodeId(i), p)))
            .collect()
    }
}

/// Runs `parties` threads, each executing `body(handle)`, and returns
/// their results in party order plus the traffic counters.
///
/// # Panics
///
/// Panics if `parties == 0` or any party thread panics.
pub fn run_parties<P, T, F>(parties: usize, body: F) -> (Vec<T>, Arc<TrafficCounters>)
where
    P: WireSize + Send + Clone + 'static,
    T: Send,
    F: Fn(PartyHandle<P>) -> T + Sync,
{
    assert!(parties >= 1, "at least one party required");
    let counters = Arc::new(TrafficCounters::new(parties));
    let mut senders = Vec::with_capacity(parties);
    let mut receivers = Vec::with_capacity(parties);
    for _ in 0..parties {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let handles: Vec<PartyHandle<P>> = receivers
        .into_iter()
        .enumerate()
        .map(|(i, receiver)| PartyHandle {
            me: NodeId(i),
            senders: senders.clone(),
            receiver,
            counters: Arc::clone(&counters),
            pending: (0..parties)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
        })
        .collect();
    drop(senders);

    let body = &body;
    let results = crossbeam::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| s.spawn(move |_| body(h)))
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("party thread panicked"))
            .collect::<Vec<T>>()
    })
    .expect("thread scope failed");

    (results, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_sum() {
        // Each party broadcasts its value; everyone computes the sum.
        let (results, counters) = run_parties::<u64, u64, _>(4, |mut h| {
            let mine = (h.me().index() as u64 + 1) * 10;
            h.broadcast(mine);
            let others: u64 = h.gather().into_iter().map(|(_, v)| v).sum();
            mine + others
        });
        assert_eq!(results, vec![100, 100, 100, 100]);
        assert_eq!(counters.messages(), 4 * 3);
        assert_eq!(counters.bytes(), 4 * 3 * 8);
        // The per-peer split accounts for every total.
        assert_eq!(counters.per_party().len(), 4);
        for party in counters.per_party() {
            assert_eq!(party.messages(), 3);
            assert_eq!(party.bytes(), 24);
            assert_eq!(party.rounds(), 1);
        }
    }

    #[test]
    fn publish_to_exports_totals_and_per_peer_families() {
        use eppi_telemetry::MetricValue;

        let (_, counters) = run_parties::<u64, (), _>(3, |mut h| {
            h.broadcast(h.me().index() as u64);
            h.gather();
        });
        let registry = Registry::new();
        counters.publish_to(&registry, "net");
        let snap = registry.snapshot();
        assert_eq!(
            snap.expect("net.messages", &[]).unwrap().value,
            MetricValue::Counter(6)
        );
        assert_eq!(
            snap.expect("net.bytes", &[("peer", "1")]).unwrap().value,
            MetricValue::Counter(16)
        );
        assert_eq!(
            snap.expect("net.rounds", &[("peer", "2")]).unwrap().value,
            MetricValue::Counter(1)
        );
        // One total + one member per peer, per family.
        assert_eq!(snap.family("net.messages").len(), 4);
        // Publishing again accumulates rather than replacing.
        counters.publish_to(&registry, "net");
        assert_eq!(
            registry
                .snapshot()
                .expect("net.messages", &[])
                .unwrap()
                .value,
            MetricValue::Counter(12)
        );
    }

    #[test]
    fn point_to_point_ring() {
        let n = 5;
        let (results, _) = run_parties::<u64, u64, _>(n, move |mut h| {
            let next = NodeId((h.me().index() + 1) % n);
            h.send(next, h.me().index() as u64);
            let (_, v) = h.recv();
            v
        });
        // Party i receives from its predecessor.
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn single_party_runs() {
        let (results, counters) = run_parties::<u64, &'static str, _>(1, |_| "done");
        assert_eq!(results, vec!["done"]);
        assert_eq!(counters.messages(), 0);
    }

    #[test]
    fn gather_returns_in_sender_order() {
        let (results, _) = run_parties::<u64, Vec<usize>, _>(3, |mut h| {
            h.broadcast(h.me().index() as u64);
            h.gather()
                .into_iter()
                .map(|(from, _)| from.index())
                .collect()
        });
        assert_eq!(results[0], vec![1, 2]);
        assert_eq!(results[1], vec![0, 2]);
        assert_eq!(results[2], vec![0, 1]);
    }
}
