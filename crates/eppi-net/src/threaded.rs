//! Real multi-threaded party execution over crossbeam channels.
//!
//! Each party runs as an OS thread with a [`PartyHandle`] giving it
//! point-to-point `send`/`recv`, `broadcast`, and `gather` primitives —
//! the communication patterns the ε-PPI construction protocol needs.
//! Traffic is counted with atomics — totals plus a per-peer split
//! (messages, bytes, and gather rounds) — so wall-clock experiments
//! (Fig. 6a/6c) can report bandwidth, and
//! [`TrafficCounters::publish_to`] exports the split into an
//! `eppi-telemetry` registry as `<prefix>.messages{peer}` /
//! `<prefix>.bytes{peer}` / `<prefix>.rounds{peer}` families.

use crate::{NodeId, WireSize};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use eppi_telemetry::Registry;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A typed receive failure of the threaded network — the alternative to
/// hanging forever when a peer thread dies mid-round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// Every channel into this party has been dropped: the peers (and
    /// this party's own sending half, if split) are gone, so no message
    /// can ever arrive again.
    Disconnected,
    /// No message arrived within the deadline. A healthy protocol step
    /// completes in microseconds; a long silence means a peer died while
    /// still holding its sending half (e.g. its thread is wedged or was
    /// killed without unwinding).
    Timeout {
        /// How long the receiver waited before giving up.
        waited: Duration,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "all peers disconnected"),
            TransportError::Timeout { waited } => {
                write!(f, "no message within {:.1?} — peer presumed dead", waited)
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// One party's share of the traffic in a threaded run.
#[derive(Debug, Default)]
pub struct PartyTraffic {
    messages: AtomicU64,
    bytes: AtomicU64,
    rounds: AtomicU64,
}

impl PartyTraffic {
    /// Messages this party sent.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes this party sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Synchronization rounds ([`PartyHandle::gather`] calls) this
    /// party completed.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

/// Shared traffic counters of one threaded run: run-wide totals plus
/// the per-peer split.
#[derive(Debug, Default)]
pub struct TrafficCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    per_party: Vec<PartyTraffic>,
}

impl TrafficCounters {
    /// Counters for a run of `parties` parties.
    pub fn new(parties: usize) -> Self {
        TrafficCounters {
            messages: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            per_party: (0..parties).map(|_| PartyTraffic::default()).collect(),
        }
    }

    /// Total messages sent by all parties.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent by all parties.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The per-peer traffic split, indexed by party id.
    pub fn per_party(&self) -> &[PartyTraffic] {
        &self.per_party
    }

    /// Adds this run's traffic to `registry` as the counter families
    /// `<prefix>.messages` / `<prefix>.bytes` / `<prefix>.rounds` — one
    /// unlabeled total per family plus one `peer="i"` member per party.
    /// Counters are cumulative, so publishing several runs under the
    /// same prefix sums them.
    pub fn publish_to(&self, registry: &Registry, prefix: &str) {
        let messages = format!("{prefix}.messages");
        let bytes = format!("{prefix}.bytes");
        let rounds = format!("{prefix}.rounds");
        registry.counter(&messages, &[]).add(self.messages());
        registry.counter(&bytes, &[]).add(self.bytes());
        for (i, party) in self.per_party.iter().enumerate() {
            let peer = i.to_string();
            let labels: &[(&str, &str)] = &[("peer", &peer)];
            registry.counter(&messages, labels).add(party.messages());
            registry.counter(&bytes, labels).add(party.bytes());
            registry.counter(&rounds, labels).add(party.rounds());
        }
    }
}

/// The sending half of a party's endpoint: cheap to clone, safe to own
/// from a dedicated sender/coalescer thread while another thread holds
/// the [`PartyReceiver`]. All traffic accounting happens here, at the
/// send site.
#[derive(Debug, Clone)]
pub struct PartySender<P> {
    me: NodeId,
    senders: Vec<Sender<(NodeId, P)>>,
    counters: Arc<TrafficCounters>,
}

impl<P: WireSize + Send + Clone> PartySender<P> {
    /// This party's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of parties in the network.
    pub fn parties(&self) -> usize {
        self.senders.len()
    }

    /// Sends `payload` to party `to` (sending to oneself is allowed).
    ///
    /// # Panics
    ///
    /// Panics if the receiving party has already shut down.
    pub fn send(&self, to: NodeId, payload: P) {
        let size = payload.wire_size() as u64;
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(size, Ordering::Relaxed);
        let mine = &self.counters.per_party[self.me.index()];
        mine.messages.fetch_add(1, Ordering::Relaxed);
        mine.bytes.fetch_add(size, Ordering::Relaxed);
        self.senders[to.index()]
            .send((self.me, payload))
            .expect("receiving party hung up");
    }

    /// Sends `payload` to every *other* party.
    pub fn broadcast(&self, payload: P) {
        for p in 0..self.parties() {
            if p != self.me.index() {
                self.send(NodeId(p), payload.clone());
            }
        }
    }

    /// Like [`send`](Self::send), but reports a vanished receiver as a
    /// typed error instead of panicking — what a long-lived sender
    /// thread wants when a peer may already have failed and unwound.
    /// Traffic is only counted on success.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] if `to`'s receiving half is
    /// gone.
    pub fn send_checked(&self, to: NodeId, payload: P) -> Result<(), TransportError> {
        let size = payload.wire_size() as u64;
        self.senders[to.index()]
            .send((self.me, payload))
            .map_err(|_| TransportError::Disconnected)?;
        self.counters.messages.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(size, Ordering::Relaxed);
        let mine = &self.counters.per_party[self.me.index()];
        mine.messages.fetch_add(1, Ordering::Relaxed);
        mine.bytes.fetch_add(size, Ordering::Relaxed);
        Ok(())
    }
}

/// The receiving half of a party's endpoint.
#[derive(Debug)]
pub struct PartyReceiver<P> {
    me: NodeId,
    parties: usize,
    receiver: Receiver<(NodeId, P)>,
    counters: Arc<TrafficCounters>,
    /// Messages that arrived ahead of their gather step, per sender.
    pending: Vec<std::collections::VecDeque<P>>,
}

impl<P: WireSize + Send + Clone> PartyReceiver<P> {
    /// This party's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of parties in the network.
    pub fn parties(&self) -> usize {
        self.parties
    }

    fn pop_pending(&mut self) -> Option<(NodeId, P)> {
        for (p, queue) in self.pending.iter_mut().enumerate() {
            if let Some(payload) = queue.pop_front() {
                return Some((NodeId(p), payload));
            }
        }
        None
    }

    /// Blocks until the next message arrives. Messages buffered by an
    /// earlier [`gather`](Self::gather) are delivered first, in sender
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if all senders have disconnected (protocol bug).
    pub fn recv(&mut self) -> (NodeId, P) {
        if let Some(got) = self.pop_pending() {
            return got;
        }
        self.receiver.recv().expect("all parties hung up")
    }

    /// Like [`recv`](Self::recv), but gives up after `timeout` instead
    /// of hanging forever when a peer thread died mid-round.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when every sending half is
    /// dropped; [`TransportError::Timeout`] when nothing arrived in
    /// time.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(NodeId, P), TransportError> {
        if let Some(got) = self.pop_pending() {
            return Ok(got);
        }
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
            RecvTimeoutError::Timeout => TransportError::Timeout { waited: timeout },
        })
    }

    /// Receives exactly one message from every other party, returned in
    /// sender order.
    ///
    /// Parties run asynchronously, so a fast peer may already have sent
    /// messages belonging to a *later* protocol step; those are buffered
    /// and served by the next `gather`/[`recv`](Self::recv) instead of
    /// corrupting this one.
    pub fn gather(&mut self) -> Vec<(NodeId, P)> {
        self.try_gather(None).expect("all parties hung up")
    }

    /// Like [`gather`](Self::gather), but bounds the *total* wait: the
    /// deadline covers the whole round, not each message.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if the round did not complete within
    /// `timeout`; [`TransportError::Disconnected`] if every sending
    /// half dropped first. Either way the messages that did arrive stay
    /// buffered for a later receive, so an error leaves no data behind.
    pub fn gather_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Vec<(NodeId, P)>, TransportError> {
        self.try_gather(Some(timeout))
    }

    fn try_gather(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Vec<(NodeId, P)>, TransportError> {
        let parties = self.parties;
        let me = self.me.index();
        self.counters.per_party[me]
            .rounds
            .fetch_add(1, Ordering::Relaxed);
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut got: Vec<Option<P>> = vec![None; parties];
        let mut remaining = parties - 1;
        // Serve buffered messages first.
        for (p, slot) in got.iter_mut().enumerate() {
            if p != me && slot.is_none() {
                if let Some(payload) = self.pending[p].pop_front() {
                    *slot = Some(payload);
                    remaining -= 1;
                }
            }
        }
        while remaining > 0 {
            let received = match deadline {
                None => self
                    .receiver
                    .recv()
                    .map_err(|_| TransportError::Disconnected),
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    self.receiver.recv_timeout(left).map_err(|e| match e {
                        RecvTimeoutError::Disconnected => TransportError::Disconnected,
                        RecvTimeoutError::Timeout => TransportError::Timeout {
                            waited: timeout.expect("deadline implies timeout"),
                        },
                    })
                }
            };
            let (from, payload) = match received {
                Ok(got) => got,
                Err(err) => {
                    // Re-buffer partial progress so the failed round
                    // leaves the receiver in a consistent state.
                    for (p, slot) in got.into_iter().enumerate() {
                        if let Some(payload) = slot {
                            self.pending[p].push_front(payload);
                        }
                    }
                    return Err(err);
                }
            };
            if got[from.index()].is_none() {
                got[from.index()] = Some(payload);
                remaining -= 1;
            } else {
                self.pending[from.index()].push_back(payload);
            }
        }
        Ok(got
            .into_iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (NodeId(i), p)))
            .collect())
    }
}

/// A party's endpoint in the threaded network: the sending and
/// receiving halves bundled for the common one-thread-per-party use.
/// [`split`](Self::split) separates them when sending and receiving
/// live on different threads (the pipelined runtime's coalescer and
/// router).
#[derive(Debug)]
pub struct PartyHandle<P> {
    tx: PartySender<P>,
    rx: PartyReceiver<P>,
}

impl<P: WireSize + Send + Clone> PartyHandle<P> {
    /// This party's id.
    pub fn me(&self) -> NodeId {
        self.tx.me
    }

    /// Number of parties in the network.
    pub fn parties(&self) -> usize {
        self.tx.parties()
    }

    /// Splits the endpoint into its independently-owned halves.
    pub fn split(self) -> (PartySender<P>, PartyReceiver<P>) {
        (self.tx, self.rx)
    }

    /// Sends `payload` to party `to` (sending to oneself is allowed).
    ///
    /// # Panics
    ///
    /// Panics if the receiving party has already shut down.
    pub fn send(&self, to: NodeId, payload: P) {
        self.tx.send(to, payload);
    }

    /// Blocks until the next message arrives. Messages buffered by an
    /// earlier [`gather`](Self::gather) are delivered first, in sender
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if all senders have disconnected (protocol bug).
    pub fn recv(&mut self) -> (NodeId, P) {
        self.rx.recv()
    }

    /// Bounded receive; see [`PartyReceiver::recv_timeout`].
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the peer is gone or silent too long.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<(NodeId, P), TransportError> {
        self.rx.recv_timeout(timeout)
    }

    /// Sends `payload` to every *other* party.
    pub fn broadcast(&self, payload: P) {
        self.tx.broadcast(payload);
    }

    /// Receives exactly one message from every other party, returned in
    /// sender order; see [`PartyReceiver::gather`].
    pub fn gather(&mut self) -> Vec<(NodeId, P)> {
        self.rx.gather()
    }

    /// Bounded gather; see [`PartyReceiver::gather_timeout`].
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the round cannot complete.
    pub fn gather_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Vec<(NodeId, P)>, TransportError> {
        self.rx.gather_timeout(timeout)
    }
}

/// Runs `parties` threads, each executing `body(handle)`, and returns
/// their results in party order plus the traffic counters.
///
/// # Panics
///
/// Panics if `parties == 0` or any party thread panics.
pub fn run_parties<P, T, F>(parties: usize, body: F) -> (Vec<T>, Arc<TrafficCounters>)
where
    P: WireSize + Send + Clone + 'static,
    T: Send,
    F: Fn(PartyHandle<P>) -> T + Sync,
{
    assert!(parties >= 1, "at least one party required");
    let counters = Arc::new(TrafficCounters::new(parties));
    let mut senders = Vec::with_capacity(parties);
    let mut receivers = Vec::with_capacity(parties);
    for _ in 0..parties {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let handles: Vec<PartyHandle<P>> = receivers
        .into_iter()
        .enumerate()
        .map(|(i, receiver)| PartyHandle {
            tx: PartySender {
                me: NodeId(i),
                senders: senders.clone(),
                counters: Arc::clone(&counters),
            },
            rx: PartyReceiver {
                me: NodeId(i),
                parties,
                receiver,
                counters: Arc::clone(&counters),
                pending: (0..parties)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
            },
        })
        .collect();
    drop(senders);

    let body = &body;
    let results = crossbeam::thread::scope(|s| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| s.spawn(move |_| body(h)))
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("party thread panicked"))
            .collect::<Vec<T>>()
    })
    .expect("thread scope failed");

    (results, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_sum() {
        // Each party broadcasts its value; everyone computes the sum.
        let (results, counters) = run_parties::<u64, u64, _>(4, |mut h| {
            let mine = (h.me().index() as u64 + 1) * 10;
            h.broadcast(mine);
            let others: u64 = h.gather().into_iter().map(|(_, v)| v).sum();
            mine + others
        });
        assert_eq!(results, vec![100, 100, 100, 100]);
        assert_eq!(counters.messages(), 4 * 3);
        assert_eq!(counters.bytes(), 4 * 3 * 8);
        // The per-peer split accounts for every total.
        assert_eq!(counters.per_party().len(), 4);
        for party in counters.per_party() {
            assert_eq!(party.messages(), 3);
            assert_eq!(party.bytes(), 24);
            assert_eq!(party.rounds(), 1);
        }
    }

    #[test]
    fn publish_to_exports_totals_and_per_peer_families() {
        use eppi_telemetry::MetricValue;

        let (_, counters) = run_parties::<u64, (), _>(3, |mut h| {
            h.broadcast(h.me().index() as u64);
            h.gather();
        });
        let registry = Registry::new();
        counters.publish_to(&registry, "net");
        let snap = registry.snapshot();
        assert_eq!(
            snap.expect("net.messages", &[]).unwrap().value,
            MetricValue::Counter(6)
        );
        assert_eq!(
            snap.expect("net.bytes", &[("peer", "1")]).unwrap().value,
            MetricValue::Counter(16)
        );
        assert_eq!(
            snap.expect("net.rounds", &[("peer", "2")]).unwrap().value,
            MetricValue::Counter(1)
        );
        // One total + one member per peer, per family.
        assert_eq!(snap.family("net.messages").len(), 4);
        // Publishing again accumulates rather than replacing.
        counters.publish_to(&registry, "net");
        assert_eq!(
            registry
                .snapshot()
                .expect("net.messages", &[])
                .unwrap()
                .value,
            MetricValue::Counter(12)
        );
    }

    #[test]
    fn point_to_point_ring() {
        let n = 5;
        let (results, _) = run_parties::<u64, u64, _>(n, move |mut h| {
            let next = NodeId((h.me().index() + 1) % n);
            h.send(next, h.me().index() as u64);
            let (_, v) = h.recv();
            v
        });
        // Party i receives from its predecessor.
        assert_eq!(results, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn single_party_runs() {
        let (results, counters) = run_parties::<u64, &'static str, _>(1, |_| "done");
        assert_eq!(results, vec!["done"]);
        assert_eq!(counters.messages(), 0);
    }

    #[test]
    fn dead_peer_surfaces_timeout_instead_of_hanging() {
        // Party 0 dies mid-protocol (returns without sending; its own
        // sender clones into party 1 are dropped, but party 1 still
        // holds a sender to itself, so the channel never disconnects —
        // the exact case that used to hang `gather` forever).
        let (results, _) = run_parties::<u64, Option<TransportError>, _>(2, |mut h| {
            if h.me().index() == 0 {
                return None;
            }
            h.gather_timeout(Duration::from_millis(50)).err()
        });
        assert_eq!(results[0], None);
        assert!(
            matches!(results[1], Some(TransportError::Timeout { .. })),
            "expected Timeout, got {:?}",
            results[1]
        );
    }

    #[test]
    fn fully_disconnected_receiver_reports_disconnected() {
        // With split halves a party can drop its *own* sending half
        // too; once the dead peer's senders go as well, the receiver
        // sees a true disconnect rather than a timeout.
        let (results, _) = run_parties::<u64, Option<TransportError>, _>(2, |h| {
            let me = h.me().index();
            let (tx, mut rx) = h.split();
            drop(tx);
            if me == 0 {
                return None;
            }
            rx.recv_timeout(Duration::from_secs(10)).err()
        });
        assert_eq!(results[1], Some(TransportError::Disconnected));
    }

    #[test]
    fn gather_timeout_error_leaves_partial_round_buffered() {
        // Party 1 sends its round message; party 2 never does. Party
        // 0's gather times out, but party 1's message must survive for
        // the retry (here: a plain recv).
        let (results, _) = run_parties::<u64, u64, _>(3, |mut h| match h.me().index() {
            0 => {
                let err = h
                    .gather_timeout(Duration::from_millis(40))
                    .expect_err("party 2 never sent");
                assert!(matches!(err, TransportError::Timeout { .. }));
                let (from, v) = h.recv();
                assert_eq!(from.index(), 1);
                v
            }
            1 => {
                h.send(NodeId(0), 77);
                0
            }
            _ => 0,
        });
        assert_eq!(results[0], 77);
    }

    #[test]
    fn send_checked_reports_gone_receiver() {
        let (results, _) = run_parties::<u64, bool, _>(2, |h| {
            let me = h.me().index();
            let (tx, mut rx) = h.split();
            if me == 0 {
                drop(rx);
                return true;
            }
            // Wait for party 0's receiver to be gone, then send into it.
            let err = loop {
                match tx.send_checked(NodeId(0), 5) {
                    Ok(()) => std::thread::yield_now(),
                    Err(e) => break e,
                }
            };
            assert_eq!(err, TransportError::Disconnected);
            // Drain anything party 0 never consumed; our own queue is
            // empty and both its senders eventually drop.
            let _ = rx.recv_timeout(Duration::from_millis(10));
            true
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn gather_returns_in_sender_order() {
        let (results, _) = run_parties::<u64, Vec<usize>, _>(3, |mut h| {
            h.broadcast(h.me().index() as u64);
            h.gather()
                .into_iter()
                .map(|(from, _)| from.index())
                .collect()
        });
        assert_eq!(results[0], vec![1, 2]);
        assert_eq!(results[1], vec![0, 2]);
        assert_eq!(results[2], vec![0, 1]);
    }
}
