//! The grouping-based PPI baseline (\[12\], \[13\]; §VI-A, Appendix B).
//!
//! Inspired by k-anonymity, existing PPIs randomly assign providers to
//! disjoint *privacy groups*; a group reports `1` for an identity as
//! soon as any member holds it, so true positives hide among their
//! group-mates. The published index expands every group claim back to
//! all group members — searchers must broadcast within claiming groups.
//!
//! The weaknesses the paper demonstrates (and that Fig. 4 / Table II
//! measure):
//!
//! * the achieved false-positive rate is **non-deterministic** — it
//!   depends on how the random assignment scattered the identity — so
//!   no quantitative per-owner ε can be honoured (NoGuarantee);
//! * all identities share one group assignment, so per-owner privacy
//!   degrees cannot be personalized at all;
//! * common identities remain exposed: a group claiming an identity that
//!   every provider holds is a certain hit (common-identity attack).

use eppi_core::model::{MembershipMatrix, ProviderId, PublishedIndex};
use rand::seq::SliceRandom;
use rand::Rng;

/// A random disjoint assignment of providers to privacy groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAssignment {
    /// `group_of[i]` is the group index of provider `i`.
    group_of: Vec<usize>,
    groups: usize,
}

impl GroupAssignment {
    /// Randomly partitions `providers` providers into `groups` groups of
    /// near-equal size (the random grouping of \[12\]).
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `groups > providers`.
    pub fn random<R: Rng + ?Sized>(providers: usize, groups: usize, rng: &mut R) -> Self {
        assert!(groups >= 1, "at least one group required");
        assert!(
            groups <= providers,
            "cannot split {providers} providers into {groups} groups"
        );
        let mut order: Vec<usize> = (0..providers).collect();
        order.shuffle(rng);
        let mut group_of = vec![0usize; providers];
        for (pos, &p) in order.iter().enumerate() {
            group_of[p] = pos % groups;
        }
        GroupAssignment { group_of, groups }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The group of a provider.
    pub fn group_of(&self, provider: ProviderId) -> usize {
        self.group_of[provider.index()]
    }

    /// The members of a group.
    pub fn members(&self, group: usize) -> Vec<ProviderId> {
        self.group_of
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g == group)
            .map(|(i, _)| ProviderId(i as u32))
            .collect()
    }
}

/// A constructed grouping PPI.
#[derive(Debug, Clone)]
pub struct GroupingPpi {
    assignment: GroupAssignment,
    index: PublishedIndex,
}

impl GroupingPpi {
    /// Constructs the grouping index: group `g` claims identity `t_j`
    /// iff some member holds it; the published matrix then lists every
    /// member of each claiming group.
    pub fn construct<R: Rng + ?Sized>(
        matrix: &MembershipMatrix,
        groups: usize,
        rng: &mut R,
    ) -> Self {
        let assignment = GroupAssignment::random(matrix.providers(), groups, rng);
        let mut published = MembershipMatrix::new(matrix.providers(), matrix.owners());
        for owner in matrix.owner_ids() {
            let mut claiming = vec![false; groups];
            for p in matrix.providers_of(owner) {
                claiming[assignment.group_of(p)] = true;
            }
            for provider in matrix.provider_ids() {
                if claiming[assignment.group_of(provider)] {
                    published.set(provider, owner, true);
                }
            }
        }
        // Grouping PPIs have no per-owner β; the published index records
        // zeros to keep the common PublishedIndex shape.
        let betas = vec![0.0; matrix.owners()];
        GroupingPpi {
            assignment,
            index: PublishedIndex::new(published, betas),
        }
    }

    /// The group assignment used.
    pub fn assignment(&self) -> &GroupAssignment {
        &self.assignment
    }

    /// The published index (interchangeable with ε-PPI output for
    /// attack/metric evaluation).
    pub fn index(&self) -> &PublishedIndex {
        &self.index
    }

    /// Consumes the PPI, returning the published index.
    pub fn into_index(self) -> PublishedIndex {
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::OwnerId;
    use eppi_core::privacy::owner_privacy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn assignment_partitions_providers() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = GroupAssignment::random(10, 3, &mut rng);
        let sizes: Vec<usize> = (0..3).map(|g| a.members(g).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn group_claims_cover_true_positives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = MembershipMatrix::new(12, 2);
        m.set(ProviderId(3), OwnerId(0), true);
        m.set(ProviderId(7), OwnerId(1), true);
        let ppi = GroupingPpi::construct(&m, 4, &mut rng);
        // 100% recall: true positives are published.
        assert!(ppi.index().matrix().get(ProviderId(3), OwnerId(0)));
        assert!(ppi.index().matrix().get(ProviderId(7), OwnerId(1)));
        // Whole group published: group size 3 ⇒ 3 providers claimed.
        assert_eq!(ppi.index().query(OwnerId(0)).len(), 3);
    }

    #[test]
    fn noise_comes_from_group_mates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = MembershipMatrix::new(100, 1);
        m.set(ProviderId(42), OwnerId(0), true);
        let ppi = GroupingPpi::construct(&m, 10, &mut rng);
        let p = owner_privacy(&m, ppi.index(), OwnerId(0));
        // One true positive in a ~10-member group ⇒ fp ≈ 0.9.
        let fp = p.false_positive_rate.unwrap();
        assert!((0.8..1.0).contains(&fp), "fp {fp}");
    }

    #[test]
    fn single_group_broadcasts_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = MembershipMatrix::new(6, 1);
        m.set(ProviderId(0), OwnerId(0), true);
        let ppi = GroupingPpi::construct(&m, 1, &mut rng);
        assert_eq!(ppi.index().query(OwnerId(0)).len(), 6);
    }

    #[test]
    fn absent_identity_is_not_published() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = MembershipMatrix::new(8, 1);
        let ppi = GroupingPpi::construct(&m, 2, &mut rng);
        assert!(ppi.index().query(OwnerId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        GroupAssignment::random(5, 0, &mut rng);
    }
}
