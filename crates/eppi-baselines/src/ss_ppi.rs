//! The SS-PPI baseline (\[22\]; §VI-A, Appendix B, Table II).
//!
//! SS-PPI is a grouping PPI whose construction uses secret sharing to
//! resist colluding providers. Its distinguishing weakness for the
//! paper's threat model: during index construction it "directly leaks
//! the sensitive common term's frequency σ_j to providers", so the
//! common-identity attack succeeds with certainty — the paper classifies
//! it NoProtect against that attack (Table II).
//!
//! We model the index itself as a grouping construction (the published
//! artifact is structurally the same) plus the explicit construction-time
//! leak: the exact per-identity frequencies any participating provider —
//! and hence a colluding attacker — learns.

use crate::grouping::{GroupAssignment, GroupingPpi};
use eppi_core::model::{MembershipMatrix, PublishedIndex};
use rand::Rng;

/// A constructed SS-PPI with its construction-time leakage.
#[derive(Debug, Clone)]
pub struct SsPpi {
    inner: GroupingPpi,
    leaked_frequencies: Vec<usize>,
}

impl SsPpi {
    /// Constructs the SS-PPI index over `groups` privacy groups.
    ///
    /// The returned value records the construction-time frequency leak
    /// alongside the published index.
    pub fn construct<R: Rng + ?Sized>(
        matrix: &MembershipMatrix,
        groups: usize,
        rng: &mut R,
    ) -> Self {
        let inner = GroupingPpi::construct(matrix, groups, rng);
        SsPpi {
            inner,
            leaked_frequencies: matrix.frequencies(),
        }
    }

    /// The published index.
    pub fn index(&self) -> &PublishedIndex {
        self.inner.index()
    }

    /// The group assignment used.
    pub fn assignment(&self) -> &GroupAssignment {
        self.inner.assignment()
    }

    /// The exact identity frequencies leaked to providers during
    /// construction — the attacker-visible side channel that makes the
    /// common-identity attack trivial against SS-PPI.
    pub fn leaked_frequencies(&self) -> &[usize] {
        &self.leaked_frequencies
    }

    /// Consumes the PPI, returning the published index.
    pub fn into_index(self) -> PublishedIndex {
        self.inner.into_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{OwnerId, ProviderId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn leak_exposes_exact_frequencies() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = MembershipMatrix::new(20, 3);
        for p in 0..20u32 {
            m.set(ProviderId(p), OwnerId(0), true); // common identity
        }
        m.set(ProviderId(4), OwnerId(1), true);
        let ppi = SsPpi::construct(&m, 4, &mut rng);
        assert_eq!(ppi.leaked_frequencies(), &[20, 1, 0]);
    }

    #[test]
    fn published_index_is_group_shaped() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = MembershipMatrix::new(12, 1);
        m.set(ProviderId(5), OwnerId(0), true);
        let ppi = SsPpi::construct(&m, 3, &mut rng);
        // The claiming group's size (4) bounds the answer.
        assert_eq!(ppi.index().query(OwnerId(0)).len(), 4);
        assert!(ppi.index().matrix().get(ProviderId(5), OwnerId(0)));
    }
}
