//! # eppi-baselines — the PPIs ε-PPI is compared against
//!
//! The paper's evaluation (Fig. 4, Table II) compares ε-PPI with the
//! prior grouping-based PPI designs, both re-implemented here:
//!
//! * [`grouping::GroupingPpi`] — the k-anonymity-inspired random-group
//!   construction of Bawa et al. (\[12\], \[13\]);
//! * [`ss_ppi::SsPpi`] — SS-PPI (\[22\]): a grouping index built with
//!   secret sharing, which leaks exact identity frequencies during
//!   construction (the NoProtect row of Table II).
//!
//! Both produce an `eppi_core::model::PublishedIndex`, so every privacy
//! metric and attack in the workspace applies to them unchanged.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod grouping;
pub mod ss_ppi;

pub use grouping::{GroupAssignment, GroupingPpi};
pub use ss_ppi::SsPpi;
