//! Privacy metrics and degrees (§II-C).
//!
//! The paper measures privacy disclosure by the attacker's confidence
//! that an attack on `(t_j, p_i)` with `M'(i,j) = 1` succeeds:
//! `Pr(M(i,j)=1 | M'(i,j)=1)`, averaged over the published row — which
//! equals `1 − fp_j`, where `fp_j` is the row's false-positive rate. A
//! construction is ε-PRIVATE for owner `t_j` when `fp_j ≥ ε_j`.

use crate::model::{Epsilon, MembershipMatrix, OwnerId, PublishedIndex};
use serde::{Deserialize, Serialize};

/// Discrete privacy degrees of §II-C's information-flow model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivacyDegree {
    /// The information cannot flow to the attacker at all (highest level).
    Unleaked,
    /// Leakage is quantitatively bounded: attacker confidence `≤ 1 − ε`.
    EpsPrivate,
    /// Information flows and no bound can be given.
    NoGuarantee,
    /// The design does not address the leak; attacks succeed with
    /// certainty (lowest level).
    NoProtect,
}

/// Per-owner privacy measurement of one published index against ground
/// truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OwnerPrivacy {
    /// The owner measured.
    pub owner: OwnerId,
    /// True frequency count (`σ_j · m`).
    pub true_frequency: usize,
    /// Published frequency count (row weight of `M'`).
    pub published_frequency: usize,
    /// The achieved false-positive rate `fp_j`, if the row has any
    /// published positives.
    pub false_positive_rate: Option<f64>,
}

impl OwnerPrivacy {
    /// The primary attacker's expected confidence `1 − fp_j` against this
    /// owner; `None` when the published row is empty (nothing to attack).
    pub fn attacker_confidence(&self) -> Option<f64> {
        self.false_positive_rate.map(|fp| 1.0 - fp)
    }

    /// Whether the measurement satisfies the owner's requirement
    /// `fp_j ≥ ε_j`.
    ///
    /// An owner with an empty published row trivially satisfies any ε
    /// (there is nothing for the primary attacker to pick); an owner with
    /// no true records satisfies any ε as well (every published positive
    /// is false).
    pub fn satisfies(&self, eps: Epsilon) -> bool {
        match self.false_positive_rate {
            Some(fp) => fp >= eps.value() - 1e-12,
            None => true,
        }
    }
}

/// Measures the false-positive rate `fp_j` of one owner's published row.
///
/// Returns `None` when the published row is empty.
///
/// # Panics
///
/// Panics if the dimensions of `truth` and `published` disagree.
pub fn owner_privacy(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    owner: OwnerId,
) -> OwnerPrivacy {
    assert_eq!(
        truth.providers(),
        published.matrix().providers(),
        "provider count mismatch"
    );
    assert_eq!(
        truth.owners(),
        published.matrix().owners(),
        "owner count mismatch"
    );
    let true_frequency = truth.frequency(owner);
    let published_frequency = published.published_frequency(owner);
    let false_positive_rate = if published_frequency == 0 {
        None
    } else {
        let mut false_pos = 0usize;
        for p in truth.provider_ids() {
            if published.matrix().get(p, owner) && !truth.get(p, owner) {
                false_pos += 1;
            }
        }
        Some(false_pos as f64 / published_frequency as f64)
    };
    OwnerPrivacy {
        owner,
        true_frequency,
        published_frequency,
        false_positive_rate,
    }
}

/// Measures all owners at once (one matrix pass per owner; suitable for
/// the evaluation sweeps).
pub fn all_owner_privacy(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
) -> Vec<OwnerPrivacy> {
    truth
        .owner_ids()
        .map(|o| owner_privacy(truth, published, o))
        .collect()
}

/// The paper's *success ratio* metric (§V-A): the fraction of owners whose
/// achieved false-positive rate meets their requested `ε_j`.
///
/// Owners whose rows give the attacker nothing to act on (empty published
/// row) count as successes; owners with no true records are excluded only
/// if `exclude_absent` is set (the effectiveness experiments measure
/// indexed identities).
///
/// # Panics
///
/// Panics if `epsilons.len()` differs from the owner count.
pub fn success_ratio(
    truth: &MembershipMatrix,
    published: &PublishedIndex,
    epsilons: &[Epsilon],
    exclude_absent: bool,
) -> f64 {
    assert_eq!(truth.owners(), epsilons.len(), "one ε per owner required");
    let mut total = 0usize;
    let mut ok = 0usize;
    for owner in truth.owner_ids() {
        let m = owner_privacy(truth, published, owner);
        if exclude_absent && m.true_frequency == 0 {
            continue;
        }
        total += 1;
        if m.satisfies(epsilons[owner.index()]) {
            ok += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        ok as f64 / total as f64
    }
}

/// Classifies the privacy degree achieved for one owner given the
/// measured confidence bound, per §II-C.
///
/// `confidence` is the attacker's success probability; `eps` the owner's
/// requirement. The caller decides whether information flowed at all
/// (`leaked`).
pub fn classify_degree(leaked: bool, confidence: Option<f64>, eps: Epsilon) -> PrivacyDegree {
    if !leaked {
        return PrivacyDegree::Unleaked;
    }
    match confidence {
        Some(c) if c >= 1.0 - 1e-12 => PrivacyDegree::NoProtect,
        Some(c) if c <= 1.0 - eps.value() + 1e-12 => PrivacyDegree::EpsPrivate,
        _ => PrivacyDegree::NoGuarantee,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProviderId;

    fn idx_from(m: MembershipMatrix, betas: Vec<f64>) -> PublishedIndex {
        PublishedIndex::new(m, betas)
    }

    #[test]
    fn fp_rate_counts_false_positives() {
        // Truth: p0 has t0. Published: p0, p1, p2 claim t0.
        let mut truth = MembershipMatrix::new(4, 1);
        truth.set(ProviderId(0), OwnerId(0), true);
        let mut pubm = truth.clone();
        pubm.set(ProviderId(1), OwnerId(0), true);
        pubm.set(ProviderId(2), OwnerId(0), true);
        let published = idx_from(pubm, vec![0.5]);
        let m = owner_privacy(&truth, &published, OwnerId(0));
        assert_eq!(m.true_frequency, 1);
        assert_eq!(m.published_frequency, 3);
        assert!((m.false_positive_rate.unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.attacker_confidence().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_row_has_no_rate() {
        let truth = MembershipMatrix::new(3, 1);
        let published = idx_from(MembershipMatrix::new(3, 1), vec![0.0]);
        let m = owner_privacy(&truth, &published, OwnerId(0));
        assert_eq!(m.false_positive_rate, None);
        assert!(m.satisfies(Epsilon::ONE));
    }

    #[test]
    fn no_noise_means_full_confidence() {
        let mut truth = MembershipMatrix::new(3, 1);
        truth.set(ProviderId(1), OwnerId(0), true);
        let published = idx_from(truth.clone(), vec![0.0]);
        let m = owner_privacy(&truth, &published, OwnerId(0));
        assert_eq!(m.false_positive_rate, Some(0.0));
        assert_eq!(m.attacker_confidence(), Some(1.0));
        assert!(!m.satisfies(Epsilon::new(0.5).unwrap()));
        assert!(m.satisfies(Epsilon::ZERO));
    }

    #[test]
    fn success_ratio_mixes_owners() {
        // Owner 0: fp = 2/3 ≥ 0.5 ✓; owner 1: fp = 0 < 0.5 ✗.
        let mut truth = MembershipMatrix::new(3, 2);
        truth.set(ProviderId(0), OwnerId(0), true);
        truth.set(ProviderId(1), OwnerId(1), true);
        let mut pubm = truth.clone();
        pubm.set(ProviderId(1), OwnerId(0), true);
        pubm.set(ProviderId(2), OwnerId(0), true);
        let published = idx_from(pubm, vec![0.5, 0.5]);
        let eps = vec![Epsilon::new(0.5).unwrap(); 2];
        let r = success_ratio(&truth, &published, &eps, false);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exclude_absent_skips_zero_frequency_owners() {
        let truth = MembershipMatrix::new(3, 2);
        let published = idx_from(MembershipMatrix::new(3, 2), vec![0.0, 0.0]);
        let eps = vec![Epsilon::new(0.9).unwrap(); 2];
        // All owners are absent: excluded population is empty ⇒ ratio 1.
        assert_eq!(success_ratio(&truth, &published, &eps, true), 1.0);
        assert_eq!(success_ratio(&truth, &published, &eps, false), 1.0);
    }

    #[test]
    fn degree_classification() {
        let e = Epsilon::new(0.8).unwrap();
        assert_eq!(classify_degree(false, None, e), PrivacyDegree::Unleaked);
        assert_eq!(
            classify_degree(true, Some(1.0), e),
            PrivacyDegree::NoProtect
        );
        assert_eq!(
            classify_degree(true, Some(0.1), e),
            PrivacyDegree::EpsPrivate
        );
        assert_eq!(
            classify_degree(true, Some(0.5), e),
            PrivacyDegree::NoGuarantee
        );
        // Exactly at the bound 1 − ε: ε-private.
        assert_eq!(
            classify_degree(true, Some(0.2), e),
            PrivacyDegree::EpsPrivate
        );
    }

    #[test]
    fn all_owner_privacy_covers_every_owner() {
        let truth = MembershipMatrix::new(2, 5);
        let published = idx_from(MembershipMatrix::new(2, 5), vec![0.0; 5]);
        let all = all_owner_privacy(&truth, &published);
        assert_eq!(all.len(), 5);
        assert_eq!(all[3].owner, OwnerId(3));
    }
}
