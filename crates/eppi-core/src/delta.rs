//! Owner-level change batches between index epochs.
//!
//! ε-PPI as published is deliberately static: re-randomizing the
//! publication coins on every refresh hands an archiving attacker the
//! intersection attack of §III-C (decoys survive `k` independent
//! epochs with probability `β^k`). The epoch lifecycle makes refresh
//! safe *by construction* instead of by abstinence: an [`IndexDelta`]
//! names exactly the owner columns whose content (or ε) changed, the
//! protocol layer re-runs the secure stages over only those columns,
//! and the deterministic publication coins of [`crate::publish`] keep
//! every untouched cell bit-identical across epochs — intersecting two
//! epochs then reveals nothing a single epoch didn't already.
//!
//! The model is provider-agnostic on purpose: a column is re-published
//! wholesale whenever *any* provider's bit for that owner changed, so a
//! delta is just `{owner, kind, ε}` triples plus the owner-count pair
//! it bridges.

use crate::model::{Epsilon, OwnerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why an owner column appears in a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnChange {
    /// The owner is new: its column index is `>= base_owners`.
    Added,
    /// An existing owner's membership (some provider bit) or ε changed.
    Changed,
    /// The owner withdrew everywhere; the column is now all-zero (its
    /// slot is kept — owner ids are never reused).
    Withdrawn,
}

/// One owner column scheduled for re-construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaEntry {
    /// The owner whose column changed.
    pub owner: OwnerId,
    /// What happened to the column.
    pub change: ColumnChange,
    /// The ε the column is (re-)published under.
    pub epsilon: Epsilon,
}

/// A batch of owner-column changes bridging two epochs: the previous
/// epoch had `base_owners` columns, the next has `owners ≥ base_owners`
/// (owner ids are append-only). Entries are kept sorted and unique per
/// owner; recording the same owner twice keeps the latest entry, except
/// that a column added within the batch stays `Added` however often it
/// is touched afterwards.
///
/// Invariant: `change == Added ⇔ owner.index() >= base_owners`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexDelta {
    base_owners: usize,
    owners: usize,
    entries: BTreeMap<OwnerId, DeltaEntry>,
}

impl IndexDelta {
    /// Starts an empty delta on top of an epoch with `base_owners`
    /// columns.
    pub fn new(base_owners: usize) -> Self {
        IndexDelta {
            base_owners,
            owners: base_owners,
            entries: BTreeMap::new(),
        }
    }

    /// Records one owner-column change.
    ///
    /// # Panics
    ///
    /// Panics if the entry violates the `Added ⇔ new column` invariant
    /// or if an added column would leave a gap above the current owner
    /// count (columns must be appended densely).
    pub fn record(&mut self, entry: DeltaEntry) {
        let idx = entry.owner.index();
        if idx >= self.base_owners {
            assert!(
                idx <= self.owners,
                "added owner {idx} would leave a gap (owners = {})",
                self.owners
            );
            self.owners = self.owners.max(idx + 1);
            // A column born in this batch is Added for the whole batch,
            // whatever happens to it afterwards.
            self.entries.insert(
                entry.owner,
                DeltaEntry {
                    change: ColumnChange::Added,
                    ..entry
                },
            );
        } else {
            assert!(
                entry.change != ColumnChange::Added,
                "owner {idx} predates the base epoch ({} owners) but is marked Added",
                self.base_owners
            );
            self.entries.insert(entry.owner, entry);
        }
    }

    /// Owner count of the epoch this delta builds on.
    pub fn base_owners(&self) -> usize {
        self.base_owners
    }

    /// Owner count of the epoch this delta produces.
    pub fn owners(&self) -> usize {
        self.owners
    }

    /// `true` if the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of touched columns `k` — the unit of work of a delta
    /// construction.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entries in owner order.
    pub fn entries(&self) -> impl Iterator<Item = &DeltaEntry> {
        self.entries.values()
    }

    /// The touched owner ids in ascending order.
    pub fn touched(&self) -> Vec<OwnerId> {
        self.entries.keys().copied().collect()
    }

    /// `true` if `owner`'s column is re-constructed by this delta.
    pub fn contains(&self, owner: OwnerId) -> bool {
        self.entries.contains_key(&owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn records_are_deduped_and_sorted() {
        let mut d = IndexDelta::new(4);
        d.record(DeltaEntry {
            owner: OwnerId(2),
            change: ColumnChange::Changed,
            epsilon: e(0.5),
        });
        d.record(DeltaEntry {
            owner: OwnerId(0),
            change: ColumnChange::Withdrawn,
            epsilon: e(0.0),
        });
        d.record(DeltaEntry {
            owner: OwnerId(2),
            change: ColumnChange::Changed,
            epsilon: e(0.9),
        });
        assert_eq!(d.len(), 2);
        assert_eq!(d.touched(), vec![OwnerId(0), OwnerId(2)]);
        let last = d.entries().find(|en| en.owner == OwnerId(2)).unwrap();
        assert_eq!(last.epsilon, e(0.9), "latest entry wins");
        assert_eq!(d.owners(), 4, "no growth without added columns");
    }

    #[test]
    fn added_columns_grow_the_owner_count_and_stay_added() {
        let mut d = IndexDelta::new(3);
        d.record(DeltaEntry {
            owner: OwnerId(3),
            change: ColumnChange::Added,
            epsilon: e(0.2),
        });
        d.record(DeltaEntry {
            owner: OwnerId(4),
            change: ColumnChange::Changed, // normalized to Added
            epsilon: e(0.3),
        });
        // Re-touching an added column keeps it Added.
        d.record(DeltaEntry {
            owner: OwnerId(3),
            change: ColumnChange::Withdrawn,
            epsilon: e(0.2),
        });
        assert_eq!(d.owners(), 5);
        assert!(d
            .entries()
            .all(|en| en.change == ColumnChange::Added && en.owner.index() >= d.base_owners()));
    }

    #[test]
    #[should_panic(expected = "leave a gap")]
    fn sparse_additions_are_rejected() {
        let mut d = IndexDelta::new(2);
        d.record(DeltaEntry {
            owner: OwnerId(5),
            change: ColumnChange::Added,
            epsilon: e(0.1),
        });
    }

    #[test]
    #[should_panic(expected = "marked Added")]
    fn added_below_base_is_rejected() {
        let mut d = IndexDelta::new(2);
        d.record(DeltaEntry {
            owner: OwnerId(1),
            change: ColumnChange::Added,
            epsilon: e(0.1),
        });
    }
}
