//! # eppi-core — the ε-PPI computation model
//!
//! Reproduction of the core contribution of *"ε-PPI: Locator Service in
//! Information Networks with Personalized Privacy Preservation"* (Tang,
//! Liu, Iyengar, Lee, Zhang — ICDCS 2014): a privacy-preserving index
//! whose per-owner privacy degree `ε_j ∈ \[0, 1\]` quantitatively bounds
//! any attacker's confidence at `1 − ε_j`.
//!
//! The crate provides:
//!
//! * [`model`] — owners, providers, membership matrices, the published
//!   index.
//! * [`policy`] — the three β-calculation policies (basic, incremented
//!   expectation, Chernoff-bound) of §III-B.
//! * [`mixing`] — identity mixing against the common-identity attack
//!   (Eq. 6/7).
//! * [`publish`] — randomized publication (Eq. 2), including the
//!   deterministic per-cell coins of the epoch lifecycle.
//! * [`delta`] — owner-level change batches ([`IndexDelta`]) bridging
//!   consecutive index epochs (DESIGN.md §10).
//! * [`privacy`] — false-positive-rate metrics, success ratio, privacy
//!   degrees.
//! * [`mod@construct`] — the centralized two-phase constructor used by the
//!   effectiveness experiments. (The trusted-party-free distributed
//!   realization lives in the `eppi-protocol` crate.)
//! * [`analysis`] — exact Binomial / Chernoff-bound predictions of the
//!   publication success probability (Theorem 3.1 as computable theory).
//! * [`commit`] — the shared domain-separated word-level hash
//!   commitment ([`Digest256`]/[`Hasher256`]) used by the audit layer
//!   (`eppi-audit`) and the durability trailer stamps (DESIGN.md §16).
//! * [`rows`] — packed provider-row extraction and answer types shared
//!   by the serving layout (`eppi-serve`) and the oblivious
//!   private-query subsystem (`eppi-pir`).
//! * [`rowstore`] — pluggable physical storage for packed rows: the
//!   flat dense layout the PIR scans require, and an EWAH-style
//!   compressed bitmap store for the plaintext serve path at
//!   million-owner scale (DESIGN.md §14).
//! * [`sensitivity`] — the provider-sensitivity extension: a second
//!   personalization axis (§I's women's-health-center example), reduced
//!   conservatively onto the per-owner ε knob.
//!
//! ## Quick example
//!
//! ```
//! use eppi_core::construct::{construct, ConstructionConfig};
//! use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
//! use eppi_core::privacy::owner_privacy;
//! use rand::SeedableRng;
//!
//! // A network of 1 000 providers; the owner visited 20 of them and asks
//! // for ε = 0.8 (attacker confidence bounded by 0.2).
//! let mut m = MembershipMatrix::new(1000, 1);
//! for p in 0..20 {
//!     m.set(ProviderId(p), OwnerId(0), true);
//! }
//! let eps = vec![Epsilon::new(0.8)?];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let c = construct(&m, &eps, ConstructionConfig::default(), &mut rng)?;
//!
//! let measured = owner_privacy(&m, &c.index, OwnerId(0));
//! assert!(measured.satisfies(eps[0]));
//! # Ok::<(), eppi_core::error::EppiError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod commit;
pub mod construct;
pub mod delta;
pub mod error;
pub mod mixing;
pub mod model;
pub mod policy;
pub mod privacy;
pub mod publish;
pub mod rows;
pub mod rowstore;
pub mod sensitivity;

pub use commit::{digest_words, Digest256, Hasher256};
pub use construct::{construct, extend_construction, Construction, ConstructionConfig};
pub use delta::{ColumnChange, DeltaEntry, IndexDelta};
pub use error::EppiError;
pub use model::{Epsilon, LocalVector, MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
pub use policy::{BasicPolicy, BetaPolicy, ChernoffPolicy, IncrementedPolicy, PolicyKind};
pub use privacy::{success_ratio, OwnerPrivacy, PrivacyDegree};
pub use rows::{providers_in_row, providers_in_word, row_words, RowAnswer};
pub use rowstore::{
    CompressedRows, CompressedRowsBuilder, DenseRows, RowBackend, RowBlock, RowStore,
};
