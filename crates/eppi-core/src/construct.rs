//! Centralized (trusted, in-memory) ε-PPI construction.
//!
//! This mirrors the paper's two-phase computation model (§III) without the
//! distributed machinery: phase 1 computes per-identity publishing
//! probabilities (β calculation + identity mixing), phase 2 performs the
//! randomized publication. The effectiveness experiments (Fig. 4, Fig. 5)
//! run on this constructor, exactly as the paper's simulation-based
//! evaluation does; the trusted-party-free realization lives in the
//! `eppi-protocol` crate and must produce statistically identical output.

use crate::error::EppiError;
use crate::mixing::{mix, MixPlan};
use crate::model::{Epsilon, MembershipMatrix, PublishedIndex};
use crate::policy::{BetaPolicy, PolicyKind};
use crate::publish::publish_matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one construction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstructionConfig {
    /// The β-calculation policy.
    pub policy: PolicyKind,
    /// Whether to run identity mixing (Eq. 6/7) for common identities.
    /// The paper's ε-PPI always mixes; disabling it reproduces the
    /// common-identity vulnerability for the attack experiments.
    pub mixing: bool,
}

impl Default for ConstructionConfig {
    fn default() -> Self {
        ConstructionConfig {
            policy: PolicyKind::default(),
            mixing: true,
        }
    }
}

/// The outcome of a construction: the published index plus the
/// intermediate quantities the evaluation inspects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Construction {
    /// The published, obscured index `M'`.
    pub index: PublishedIndex,
    /// Raw per-identity β* before mixing/clamping.
    pub raw_betas: Vec<f64>,
    /// The mixing plan (λ, outcomes); `None` when mixing was disabled.
    pub mix_plan: Option<MixPlan>,
}

impl Construction {
    /// The final per-identity publishing probabilities used.
    pub fn betas(&self) -> &[f64] {
        self.index.betas()
    }
}

/// Runs the full two-phase ε-PPI construction over a trusted in-memory
/// view of the network.
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] when `epsilons` does not
/// provide exactly one degree per owner, or a policy-parameter error if
/// `config.policy` is invalid.
///
/// ```
/// use eppi_core::construct::{construct, ConstructionConfig};
/// use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
/// use rand::SeedableRng;
///
/// let mut m = MembershipMatrix::new(100, 1);
/// for p in 0..10 {
///     m.set(ProviderId(p), OwnerId(0), true);
/// }
/// let eps = vec![Epsilon::new(0.5)?];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let c = construct(&m, &eps, ConstructionConfig::default(), &mut rng)?;
/// // Truthful rule: all 10 true providers are in the query answer.
/// assert!(c.index.query(OwnerId(0)).len() >= 10);
/// # Ok::<(), eppi_core::error::EppiError>(())
/// ```
pub fn construct<R: Rng + ?Sized>(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: ConstructionConfig,
    rng: &mut R,
) -> Result<Construction, EppiError> {
    if epsilons.len() != matrix.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "epsilons",
            expected: matrix.owners(),
            actual: epsilons.len(),
        });
    }
    config.policy.validate()?;

    let m = matrix.providers();
    let frequencies = matrix.frequencies();
    let raw_betas: Vec<f64> = frequencies
        .iter()
        .zip(epsilons)
        .map(|(&f, &e)| {
            let sigma = if m == 0 { 0.0 } else { f as f64 / m as f64 };
            config.policy.raw_beta(sigma, e, m)
        })
        .collect();

    let (final_betas, mix_plan) = if config.mixing {
        let plan = mix(&raw_betas, epsilons, rng);
        (plan.final_betas(), Some(plan))
    } else {
        (raw_betas.iter().map(|b| b.clamp(0.0, 1.0)).collect(), None)
    };

    let index = publish_matrix(matrix, &final_betas, rng);
    Ok(Construction {
        index,
        raw_betas,
        mix_plan,
    })
}

/// Extends a previously published index with newly delegated owners
/// **without touching the existing rows** — the incremental path behind
/// a growing network's `Delegate` stream.
///
/// Per-identity independence (each column's β and coin flips are its
/// own) makes this sound for the *new* owners: they get fresh β values
/// computed against the current network and fresh randomized
/// publication. Existing owners keep their published bits verbatim —
/// re-randomizing them would enable the intersection attack
/// (`eppi-attacks::refresh`). The mixing probability λ is recomputed over
/// the full identity set; existing mix decisions stand, so after many
/// common newcomers the decoy fraction can drift below ξ — run a full
/// [`construct`] periodically to restore the exact common-identity
/// guarantee.
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] if `matrix`/`epsilons` do
/// not extend the published index (fewer owners than before, different
/// provider count, or ε count mismatch).
pub fn extend_construction<R: Rng + ?Sized>(
    previous: &PublishedIndex,
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: ConstructionConfig,
    rng: &mut R,
) -> Result<PublishedIndex, EppiError> {
    let old_n = previous.matrix().owners();
    let n = matrix.owners();
    if n < old_n {
        return Err(EppiError::DimensionMismatch {
            what: "owners (extension cannot shrink)",
            expected: old_n,
            actual: n,
        });
    }
    if matrix.providers() != previous.matrix().providers() {
        return Err(EppiError::DimensionMismatch {
            what: "providers",
            expected: previous.matrix().providers(),
            actual: matrix.providers(),
        });
    }
    if epsilons.len() != n {
        return Err(EppiError::DimensionMismatch {
            what: "epsilons",
            expected: n,
            actual: epsilons.len(),
        });
    }
    config.policy.validate()?;

    let m = matrix.providers();
    let frequencies = matrix.frequencies();
    let raw_betas: Vec<f64> = frequencies
        .iter()
        .zip(epsilons)
        .map(|(&f, &e)| config.policy.raw_beta(f as f64 / m.max(1) as f64, e, m))
        .collect();

    // λ over the full identity set; coin flips only for the newcomers.
    let commons = raw_betas.iter().filter(|&&b| b >= 1.0).count();
    let xi = raw_betas
        .iter()
        .zip(epsilons)
        .filter(|(&b, _)| b >= 1.0)
        .map(|(_, e)| e.value())
        .fold(0.0f64, f64::max);
    let lambda = crate::mixing::lambda_for(commons, n, xi);

    let mut betas: Vec<f64> = previous.betas().to_vec();
    for &raw in &raw_betas[old_n..n] {
        let beta = if raw >= 1.0 || (lambda > 0.0 && rng.gen::<f64>() < lambda) {
            1.0
        } else {
            raw.clamp(0.0, 1.0)
        };
        betas.push(beta);
    }

    // Copy the existing published rows, publish only the new columns.
    let mut published = MembershipMatrix::new(m, n);
    for p in matrix.provider_ids() {
        for o in previous.matrix().owner_ids() {
            if previous.matrix().get(p, o) {
                published.set(p, o, true);
            }
        }
    }
    for (j, &beta) in betas.iter().enumerate().take(n).skip(old_n) {
        let owner = crate::model::OwnerId(j as u32);
        for p in matrix.provider_ids() {
            let bit = if matrix.get(p, owner) {
                true
            } else {
                beta > 0.0 && rng.gen::<f64>() < beta
            };
            if bit {
                published.set(p, owner, true);
            }
        }
    }
    Ok(PublishedIndex::new(published, betas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{OwnerId, ProviderId};
    use crate::privacy::success_ratio;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// Builds a matrix where owner j appears in the first `freqs[j]`
    /// providers.
    fn matrix_with_freqs(m: usize, freqs: &[usize]) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, freqs.len());
        for (j, &f) in freqs.iter().enumerate() {
            for p in 0..f {
                mat.set(ProviderId(p as u32), OwnerId(j as u32), true);
            }
        }
        mat
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let m = MembershipMatrix::new(4, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let err = construct(&m, &[eps(0.5)], ConstructionConfig::default(), &mut rng);
        assert!(matches!(err, Err(EppiError::DimensionMismatch { .. })));
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let m = MembershipMatrix::new(4, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ConstructionConfig {
            policy: PolicyKind::Chernoff { gamma: 0.1 },
            mixing: true,
        };
        assert!(construct(&m, &[eps(0.5)], cfg, &mut rng).is_err());
    }

    #[test]
    fn recall_is_always_complete() {
        let mat = matrix_with_freqs(200, &[5, 40, 120, 0]);
        let e = vec![eps(0.3), eps(0.6), eps(0.9), eps(0.5)];
        let mut rng = StdRng::seed_from_u64(9);
        let c = construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap();
        for owner in mat.owner_ids() {
            for p in mat.providers_of(owner) {
                assert!(c.index.matrix().get(p, owner), "lost ({p}, {owner})");
            }
        }
    }

    #[test]
    fn chernoff_meets_epsilon_with_high_ratio() {
        // 2 000 providers; 300 owners at frequency 100 (σ = 0.05), ε = 0.5.
        let m = 2_000usize;
        let freqs = vec![100usize; 300];
        let mat = matrix_with_freqs(m, &freqs);
        let e = vec![eps(0.5); 300];
        let cfg = ConstructionConfig {
            policy: PolicyKind::Chernoff { gamma: 0.9 },
            mixing: true,
        };
        let mut rng = StdRng::seed_from_u64(100);
        let c = construct(&mat, &e, cfg, &mut rng).unwrap();
        let ratio = success_ratio(&mat, &c.index, &e, true);
        assert!(ratio >= 0.9, "success ratio {ratio} below γ");
    }

    #[test]
    fn basic_policy_hovers_near_half() {
        let m = 2_000usize;
        let freqs = vec![100usize; 400];
        let mat = matrix_with_freqs(m, &freqs);
        let e = vec![eps(0.5); 400];
        let cfg = ConstructionConfig {
            policy: PolicyKind::Basic,
            mixing: true,
        };
        let mut rng = StdRng::seed_from_u64(101);
        let c = construct(&mat, &e, cfg, &mut rng).unwrap();
        let ratio = success_ratio(&mat, &c.index, &e, true);
        assert!(
            (0.3..=0.7).contains(&ratio),
            "basic policy ratio {ratio} should be near 0.5"
        );
    }

    #[test]
    fn common_identities_get_beta_one() {
        // Owner 0 in 95/100 providers with ε = 0.5 ⇒ β* ≫ 1 ⇒ common.
        let mat = matrix_with_freqs(100, &[95, 5]);
        let e = vec![eps(0.5), eps(0.5)];
        let mut rng = StdRng::seed_from_u64(4);
        let c = construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap();
        assert!(c.raw_betas[0] >= 1.0);
        assert_eq!(c.betas()[0], 1.0);
        let plan = c.mix_plan.as_ref().unwrap();
        assert_eq!(plan.common_count(), 1);
        // β = 1 publishes every provider.
        assert_eq!(c.index.query(OwnerId(0)).len(), 100);
    }

    #[test]
    fn disabling_mixing_clamps_raw_betas() {
        let mat = matrix_with_freqs(100, &[95, 5]);
        let e = vec![eps(0.5), eps(0.5)];
        let cfg = ConstructionConfig {
            policy: PolicyKind::Basic,
            mixing: false,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let c = construct(&mat, &e, cfg, &mut rng).unwrap();
        assert!(c.mix_plan.is_none());
        assert_eq!(c.betas()[0], 1.0);
        assert!(c.betas()[1] < 1.0);
    }

    #[test]
    fn extension_preserves_old_rows_bit_for_bit() {
        let mat = matrix_with_freqs(120, &[8, 20]);
        let e = vec![eps(0.6); 2];
        let mut rng = StdRng::seed_from_u64(31);
        let first = construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap();

        // Two new owners delegate.
        let mut grown = mat.clone();
        grown.grow_owners(4);
        for p in 0..15u32 {
            grown.set(ProviderId(p), OwnerId(2), true);
        }
        grown.set(ProviderId(40), OwnerId(3), true);
        let e2 = vec![eps(0.6), eps(0.6), eps(0.4), eps(0.9)];
        let extended = extend_construction(
            &first.index,
            &grown,
            &e2,
            ConstructionConfig::default(),
            &mut rng,
        )
        .unwrap();

        // Old columns identical (no re-randomization = no intersection
        // attack surface).
        for p in mat.provider_ids() {
            for o in [OwnerId(0), OwnerId(1)] {
                assert_eq!(
                    extended.matrix().get(p, o),
                    first.index.matrix().get(p, o),
                    "old cell ({p}, {o}) changed"
                );
            }
        }
        assert_eq!(&extended.betas()[..2], first.index.betas());
        // New owners: full recall + β in range.
        for o in [OwnerId(2), OwnerId(3)] {
            for p in grown.providers_of(o) {
                assert!(extended.matrix().get(p, o), "recall for {o}");
            }
        }
        assert!((0.0..=1.0).contains(&extended.betas()[2]));
    }

    #[test]
    fn extension_meets_new_owner_privacy() {
        let mat = matrix_with_freqs(800, &[10]);
        let e = vec![eps(0.5)];
        let mut rng = StdRng::seed_from_u64(32);
        let first = construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap();

        let mut grown = mat.clone();
        grown.grow_owners(2);
        for p in 0..25u32 {
            grown.set(ProviderId(p * 3), OwnerId(1), true);
        }
        let e2 = vec![eps(0.5), eps(0.7)];
        let extended = extend_construction(
            &first.index,
            &grown,
            &e2,
            ConstructionConfig::default(),
            &mut rng,
        )
        .unwrap();
        let p = crate::privacy::owner_privacy(&grown, &extended, OwnerId(1));
        assert!(p.satisfies(e2[1]) || p.false_positive_rate.unwrap_or(0.0) > 0.6);
    }

    #[test]
    fn extension_validates_dimensions() {
        let mat = matrix_with_freqs(20, &[3, 4]);
        let e = vec![eps(0.5); 2];
        let mut rng = StdRng::seed_from_u64(33);
        let first = construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap();
        // Shrinking is rejected.
        let small = matrix_with_freqs(20, &[3]);
        assert!(extend_construction(
            &first.index,
            &small,
            &[eps(0.5)],
            ConstructionConfig::default(),
            &mut rng
        )
        .is_err());
        // Provider mismatch is rejected.
        let other = matrix_with_freqs(21, &[3, 4]);
        assert!(extend_construction(
            &first.index,
            &other,
            &e,
            ConstructionConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn matrix_grow_owners_preserves_bits() {
        let mut m = MembershipMatrix::new(3, 60);
        m.set(ProviderId(1), OwnerId(59), true);
        m.set(ProviderId(2), OwnerId(0), true);
        m.grow_owners(200);
        assert_eq!(m.owners(), 200);
        assert!(m.get(ProviderId(1), OwnerId(59)));
        assert!(m.get(ProviderId(2), OwnerId(0)));
        assert!(!m.get(ProviderId(0), OwnerId(150)));
        assert_eq!(m.ones(), 2);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mat = matrix_with_freqs(500, &[10, 20, 30]);
        let e = vec![eps(0.4); 3];
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            construct(&mat, &e, ConstructionConfig::default(), &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
    }
}
