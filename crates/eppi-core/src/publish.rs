//! Randomized publication (Eq. 2, phase 2 of the construction).
//!
//! Given the per-identity publishing probabilities `β_j`, every provider
//! *independently* publishes its private membership vector:
//!
//! ```text
//! 1 → 1                      (truthful — guarantees 100% recall)
//! 0 → 1 with probability β_j (false positive — obscures membership)
//!   → 0 otherwise
//! ```
//!
//! Each provider runs the same random process on its own row, which is why
//! the distributed realization needs no coordination for this phase.

use crate::model::{LocalVector, MembershipMatrix, OwnerId, PublishedIndex};
use rand::Rng;

/// Publishes one provider's local vector under the given per-owner β
/// values — the operation a single provider performs locally in the
/// distributed protocol.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the vector's owner count.
pub fn publish_vector<R: Rng + ?Sized>(
    vector: &LocalVector,
    betas: &[f64],
    rng: &mut R,
) -> LocalVector {
    assert_eq!(vector.owners(), betas.len(), "one β per owner required");
    let mut out = LocalVector::new(vector.provider(), vector.owners());
    for (j, &beta) in betas.iter().enumerate() {
        let owner = OwnerId(j as u32);
        let bit = if vector.get(owner) {
            true
        } else {
            beta > 0.0 && rng.gen::<f64>() < beta
        };
        if bit {
            out.set(owner, true);
        }
    }
    out
}

/// Publishes the whole matrix (all providers) under the given per-owner β
/// values, producing the public index `M'`.
///
/// This is the trusted/centralized equivalent of every provider running
/// [`publish_vector`] on its own row; the two agree exactly when driven by
/// the same per-row random streams.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the matrix owner count.
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId};
/// use eppi_core::publish::publish_matrix;
/// use rand::SeedableRng;
/// let mut m = MembershipMatrix::new(3, 1);
/// m.set(ProviderId(0), OwnerId(0), true);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let idx = publish_matrix(&m, &[1.0], &mut rng);
/// // β = 1 publishes every provider for the owner.
/// assert_eq!(idx.query(OwnerId(0)).len(), 3);
/// ```
pub fn publish_matrix<R: Rng + ?Sized>(
    matrix: &MembershipMatrix,
    betas: &[f64],
    rng: &mut R,
) -> PublishedIndex {
    assert_eq!(matrix.owners(), betas.len(), "one β per owner required");
    let mut published = MembershipMatrix::new(matrix.providers(), matrix.owners());
    for provider in matrix.provider_ids() {
        let row = publish_vector(&matrix.row(provider), betas, rng);
        published.set_row(&row);
    }
    PublishedIndex::new(published, betas.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProviderId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truthful_rule_preserves_positives() {
        let mut m = MembershipMatrix::new(10, 4);
        for p in 0..10u32 {
            m.set(ProviderId(p), OwnerId(p % 4), true);
        }
        let mut rng = StdRng::seed_from_u64(11);
        let idx = publish_matrix(&m, &[0.0, 0.3, 0.7, 1.0], &mut rng);
        for p in m.provider_ids() {
            for o in m.owner_ids() {
                if m.get(p, o) {
                    assert!(idx.matrix().get(p, o), "lost positive at ({p}, {o})");
                }
            }
        }
    }

    #[test]
    fn beta_zero_publishes_exactly_the_truth() {
        let mut m = MembershipMatrix::new(20, 2);
        m.set(ProviderId(3), OwnerId(0), true);
        m.set(ProviderId(7), OwnerId(1), true);
        let mut rng = StdRng::seed_from_u64(5);
        let idx = publish_matrix(&m, &[0.0, 0.0], &mut rng);
        assert_eq!(idx.matrix(), &m);
    }

    #[test]
    fn beta_one_publishes_everything() {
        let m = MembershipMatrix::new(15, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let idx = publish_matrix(&m, &[1.0, 1.0, 1.0], &mut rng);
        assert_eq!(idx.matrix().ones(), 15 * 3);
    }

    #[test]
    fn false_positive_rate_tracks_beta() {
        // One owner, no true positives, β = 0.3 over 20 000 providers.
        let m = MembershipMatrix::new(20_000, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let idx = publish_matrix(&m, &[0.3], &mut rng);
        let rate = idx.published_frequency(OwnerId(0)) as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
    }

    #[test]
    fn publish_vector_matches_matrix_row_semantics() {
        let mut v = LocalVector::new(ProviderId(0), 5);
        v.set(OwnerId(2), true);
        let mut rng = StdRng::seed_from_u64(3);
        let out = publish_vector(&v, &[0.0; 5], &mut rng);
        assert!(out.get(OwnerId(2)));
        assert_eq!(out.ones(), 1);
    }

    #[test]
    #[should_panic(expected = "one β per owner")]
    fn wrong_beta_len_panics() {
        let m = MembershipMatrix::new(2, 3);
        let mut rng = StdRng::seed_from_u64(0);
        publish_matrix(&m, &[0.1], &mut rng);
    }
}
