//! Randomized publication (Eq. 2, phase 2 of the construction).
//!
//! Given the per-identity publishing probabilities `β_j`, every provider
//! *independently* publishes its private membership vector:
//!
//! ```text
//! 1 → 1                      (truthful — guarantees 100% recall)
//! 0 → 1 with probability β_j (false positive — obscures membership)
//!   → 0 otherwise
//! ```
//!
//! Each provider runs the same random process on its own row, which is why
//! the distributed realization needs no coordination for this phase.

use crate::model::{LocalVector, MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use rand::Rng;

/// The deterministic per-cell publication coin of the epoch lifecycle:
/// a uniform draw from `[0, 1)` keyed by `(epoch_seed, provider,
/// owner)` through a splitmix64-style finalizer.
///
/// Because the coin depends only on the cell's coordinates and the
/// lineage seed — never on the epoch number or on any other cell — a
/// cell whose membership bit and β are unchanged publishes the *same*
/// bit in every epoch. That is the anti-intersection invariant of
/// DESIGN.md §10: archiving consecutive epochs and intersecting them
/// (the §III-C re-publication attack) learns nothing about untouched
/// owners that a single epoch didn't already reveal.
pub fn publication_coin(epoch_seed: u64, provider: ProviderId, owner: OwnerId) -> f64 {
    // Top 53 bits → the unit interval, the standard f64 construction.
    publication_coin_bits(epoch_seed, provider, owner) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The integer form of the publication coin: the top 53 bits of the
/// cell hash, i.e. `k` with `coin = k / 2^53`. This is the value the
/// audit layer's flip circuit compares bit-by-bit against
/// [`publication_threshold`] — the pair is *exactly* equivalent to the
/// floating-point comparison in [`publish_cell`] (see
/// `integer_threshold_matches_float_comparison`).
pub fn publication_coin_bits(epoch_seed: u64, provider: ProviderId, owner: OwnerId) -> u64 {
    let mut h = epoch_seed
        ^ (u64::from(provider.0) + 1).wrapping_mul(0x2545_f491_4f6c_dd1d)
        ^ (u64::from(owner.0) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h >> 11
}

/// The integer decision threshold for `beta`: the smallest `T` with
/// `coin < beta ⟺ publication_coin_bits < T` for every possible coin.
///
/// With `k = coin · 2^53` an integer in `[0, 2^53)`, `k/2^53 < β ⟺
/// k < β·2^53 ⟺ k < ⌈β·2^53⌉` (the scaling by a power of two is exact
/// in `f64`, and `k` is an integer, so rounding the bound up never
/// crosses an achievable `k`). `β ≤ 0 → T = 0` (never decoys, matching
/// the `beta > 0.0` guard) and `β ≥ 1 → T = 2^53` (always), so `T`
/// always fits in 54 bits — the width of the audit circuit's
/// comparator.
pub fn publication_threshold(beta: f64) -> u64 {
    (beta.clamp(0.0, 1.0) * (1u64 << 53) as f64).ceil() as u64
}

/// Publishes one cell under the deterministic coin: truthful on
/// members, a decoy iff the cell's coin falls below `beta`.
pub fn publish_cell(
    epoch_seed: u64,
    provider: ProviderId,
    owner: OwnerId,
    member: bool,
    beta: f64,
) -> bool {
    member || (beta > 0.0 && publication_coin(epoch_seed, provider, owner) < beta)
}

/// [`publish_vector`] with the deterministic per-cell coins instead of
/// a sequential RNG stream — the provider-local publication step of the
/// epoch lifecycle. Cells whose membership and β are unchanged produce
/// the same published bit at every epoch of the lineage.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the vector's owner count.
pub fn publish_vector_at(vector: &LocalVector, betas: &[f64], epoch_seed: u64) -> LocalVector {
    assert_eq!(vector.owners(), betas.len(), "one β per owner required");
    let mut out = LocalVector::new(vector.provider(), vector.owners());
    for (j, &beta) in betas.iter().enumerate() {
        let owner = OwnerId(j as u32);
        if publish_cell(
            epoch_seed,
            vector.provider(),
            owner,
            vector.get(owner),
            beta,
        ) {
            out.set(owner, true);
        }
    }
    out
}

/// [`publish_matrix`] with the deterministic per-cell coins: every
/// provider runs [`publish_vector_at`] on its own row under the shared
/// lineage seed. This is the publication step `eppi-protocol` uses for
/// epoch-versioned constructions.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the matrix owner count.
pub fn publish_matrix_at(
    matrix: &MembershipMatrix,
    betas: &[f64],
    epoch_seed: u64,
) -> PublishedIndex {
    assert_eq!(matrix.owners(), betas.len(), "one β per owner required");
    let mut published = MembershipMatrix::new(matrix.providers(), matrix.owners());
    for provider in matrix.provider_ids() {
        let row = publish_vector_at(&matrix.row(provider), betas, epoch_seed);
        published.set_row(&row);
    }
    PublishedIndex::new(published, betas.to_vec())
}

/// Publishes one provider's local vector under the given per-owner β
/// values — the operation a single provider performs locally in the
/// distributed protocol.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the vector's owner count.
pub fn publish_vector<R: Rng + ?Sized>(
    vector: &LocalVector,
    betas: &[f64],
    rng: &mut R,
) -> LocalVector {
    assert_eq!(vector.owners(), betas.len(), "one β per owner required");
    let mut out = LocalVector::new(vector.provider(), vector.owners());
    for (j, &beta) in betas.iter().enumerate() {
        let owner = OwnerId(j as u32);
        let bit = if vector.get(owner) {
            true
        } else {
            beta > 0.0 && rng.gen::<f64>() < beta
        };
        if bit {
            out.set(owner, true);
        }
    }
    out
}

/// Publishes the whole matrix (all providers) under the given per-owner β
/// values, producing the public index `M'`.
///
/// This is the trusted/centralized equivalent of every provider running
/// [`publish_vector`] on its own row; the two agree exactly when driven by
/// the same per-row random streams.
///
/// # Panics
///
/// Panics if `betas.len()` differs from the matrix owner count.
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId};
/// use eppi_core::publish::publish_matrix;
/// use rand::SeedableRng;
/// let mut m = MembershipMatrix::new(3, 1);
/// m.set(ProviderId(0), OwnerId(0), true);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let idx = publish_matrix(&m, &[1.0], &mut rng);
/// // β = 1 publishes every provider for the owner.
/// assert_eq!(idx.query(OwnerId(0)).len(), 3);
/// ```
pub fn publish_matrix<R: Rng + ?Sized>(
    matrix: &MembershipMatrix,
    betas: &[f64],
    rng: &mut R,
) -> PublishedIndex {
    assert_eq!(matrix.owners(), betas.len(), "one β per owner required");
    let mut published = MembershipMatrix::new(matrix.providers(), matrix.owners());
    for provider in matrix.provider_ids() {
        let row = publish_vector(&matrix.row(provider), betas, rng);
        published.set_row(&row);
    }
    PublishedIndex::new(published, betas.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProviderId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truthful_rule_preserves_positives() {
        let mut m = MembershipMatrix::new(10, 4);
        for p in 0..10u32 {
            m.set(ProviderId(p), OwnerId(p % 4), true);
        }
        let mut rng = StdRng::seed_from_u64(11);
        let idx = publish_matrix(&m, &[0.0, 0.3, 0.7, 1.0], &mut rng);
        for p in m.provider_ids() {
            for o in m.owner_ids() {
                if m.get(p, o) {
                    assert!(idx.matrix().get(p, o), "lost positive at ({p}, {o})");
                }
            }
        }
    }

    #[test]
    fn beta_zero_publishes_exactly_the_truth() {
        let mut m = MembershipMatrix::new(20, 2);
        m.set(ProviderId(3), OwnerId(0), true);
        m.set(ProviderId(7), OwnerId(1), true);
        let mut rng = StdRng::seed_from_u64(5);
        let idx = publish_matrix(&m, &[0.0, 0.0], &mut rng);
        assert_eq!(idx.matrix(), &m);
    }

    #[test]
    fn beta_one_publishes_everything() {
        let m = MembershipMatrix::new(15, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let idx = publish_matrix(&m, &[1.0, 1.0, 1.0], &mut rng);
        assert_eq!(idx.matrix().ones(), 15 * 3);
    }

    #[test]
    fn false_positive_rate_tracks_beta() {
        // One owner, no true positives, β = 0.3 over 20 000 providers.
        let m = MembershipMatrix::new(20_000, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let idx = publish_matrix(&m, &[0.3], &mut rng);
        let rate = idx.published_frequency(OwnerId(0)) as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
    }

    #[test]
    fn publish_vector_matches_matrix_row_semantics() {
        let mut v = LocalVector::new(ProviderId(0), 5);
        v.set(OwnerId(2), true);
        let mut rng = StdRng::seed_from_u64(3);
        let out = publish_vector(&v, &[0.0; 5], &mut rng);
        assert!(out.get(OwnerId(2)));
        assert_eq!(out.ones(), 1);
    }

    #[test]
    #[should_panic(expected = "one β per owner")]
    fn wrong_beta_len_panics() {
        let m = MembershipMatrix::new(2, 3);
        let mut rng = StdRng::seed_from_u64(0);
        publish_matrix(&m, &[0.1], &mut rng);
    }

    #[test]
    fn deterministic_coins_are_uniform_and_stable() {
        // Stability: the coin is a pure function of (seed, cell).
        let a = publication_coin(7, ProviderId(3), OwnerId(9));
        let b = publication_coin(7, ProviderId(3), OwnerId(9));
        assert_eq!(a, b);
        assert_ne!(a, publication_coin(8, ProviderId(3), OwnerId(9)));
        // Uniformity: the empirical mean over many cells is ~1/2.
        let mut sum = 0.0;
        let cells = 40_000;
        for p in 0..200u32 {
            for o in 0..200u32 {
                let coin = publication_coin(42, ProviderId(p), OwnerId(o));
                assert!((0.0..1.0).contains(&coin));
                sum += coin;
            }
        }
        let mean = sum / f64::from(cells);
        assert!((mean - 0.5).abs() < 0.01, "coin mean {mean}");
    }

    #[test]
    fn integer_threshold_matches_float_comparison() {
        // The audit circuit replaces `coin < β` (f64) by
        // `coin_bits < threshold(β)` (54-bit integer compare). The two
        // must agree for every cell, including the β = 0 guard and the
        // always-decoy β = 1 edge.
        let betas = [
            0.0,
            1e-17,
            0.1,
            0.25,
            0.3,
            0.5,
            1.0 / 3.0,
            0.875,
            0.999_999,
            1.0,
        ];
        for &beta in &betas {
            let t = publication_threshold(beta);
            assert!(t <= 1 << 53);
            for p in 0..40u32 {
                for o in 0..40u32 {
                    let (provider, owner) = (ProviderId(p), OwnerId(o));
                    let float = publish_cell(31, provider, owner, false, beta);
                    let integer = publication_coin_bits(31, provider, owner) < t;
                    assert_eq!(float, integer, "β = {beta}, cell ({p}, {o})");
                }
            }
        }
        // Exactly-representable β: T is the exact product, and a coin
        // sitting exactly on the boundary is *not* below it.
        assert_eq!(publication_threshold(0.5), 1 << 52);
        assert_eq!(publication_threshold(0.0), 0);
        assert_eq!(publication_threshold(1.0), 1 << 53);
        assert_eq!(publication_threshold(-0.5), 0, "clamped below");
        assert_eq!(publication_threshold(1.5), 1 << 53, "clamped above");
    }

    #[test]
    fn coin_bits_are_the_coin_mantissa() {
        for p in 0..10u32 {
            for o in 0..10u32 {
                let k = publication_coin_bits(9, ProviderId(p), OwnerId(o));
                assert!(k < 1 << 53);
                let coin = publication_coin(9, ProviderId(p), OwnerId(o));
                assert_eq!(coin, k as f64 * (1.0 / (1u64 << 53) as f64));
            }
        }
    }

    #[test]
    fn deterministic_publication_is_truthful_and_tracks_beta() {
        let mut m = MembershipMatrix::new(20_000, 2);
        for p in 0..500u32 {
            m.set(ProviderId(p), OwnerId(0), true);
        }
        let idx = publish_matrix_at(&m, &[0.3, 0.0], 99);
        for p in 0..500u32 {
            assert!(idx.matrix().get(ProviderId(p), OwnerId(0)), "lost positive");
        }
        let rate = (idx.published_frequency(OwnerId(0)) - 500) as f64 / 19_500.0;
        assert!((rate - 0.3).abs() < 0.02, "observed flip rate {rate}");
        assert_eq!(
            idx.published_frequency(OwnerId(1)),
            0,
            "β = 0 stays truthful"
        );
    }

    #[test]
    fn unchanged_cells_are_bit_identical_across_publications() {
        // Publish the same matrix twice with one column's β changed:
        // only that column may differ — the anti-intersection
        // invariant at the publication layer.
        let mut m = MembershipMatrix::new(300, 6);
        for p in 0..300u32 {
            m.set(ProviderId(p), OwnerId(p % 6), p % 7 == 0);
        }
        let betas_a = [0.4, 0.2, 0.9, 0.1, 0.5, 0.3];
        let mut betas_b = betas_a;
        betas_b[2] = 0.35;
        let a = publish_matrix_at(&m, &betas_a, 7);
        let b = publish_matrix_at(&m, &betas_b, 7);
        for p in m.provider_ids() {
            for o in m.owner_ids() {
                if o != OwnerId(2) {
                    assert_eq!(a.matrix().get(p, o), b.matrix().get(p, o), "({p}, {o})");
                }
            }
        }
    }
}
