//! Identity mixing against the common-identity attack (§III-B.2).
//!
//! A *common identity* appears in (almost) every provider; no amount of
//! false positives can hide which providers hold it, and the raw β value
//! itself leaks the identity frequency σ. The defense is to **mix**:
//! exaggerate the β of each non-common identity to `1` with probability
//! `λ` (Eq. 6), so an attacker looking at the published index cannot tell
//! truly common identities from mixed-up ones.
//!
//! `λ` is set by the heuristic of Eq. 7 so that among the identities that
//! *look* common, the fraction of non-common (decoy) identities is at
//! least `ξ = max ε_j` over the true common identities:
//!
//! ```text
//! λ ≥ ξ/(1−ξ) · C / (n − C)        (C = number of common identities)
//! ```

use crate::model::Epsilon;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a single identity's β was finalized by the mixing step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MixOutcome {
    /// A true common identity (`β* ≥ 1`): published with `β = 1`.
    Common,
    /// A non-common identity whose β was exaggerated to `1` by the λ-coin
    /// (a decoy).
    MixedUp,
    /// A non-common identity published with its raw `β*` (clamped into
    /// `\[0, 1\]`).
    Regular(f64),
}

impl MixOutcome {
    /// The final publishing probability for this identity.
    pub fn beta(self) -> f64 {
        match self {
            MixOutcome::Common | MixOutcome::MixedUp => 1.0,
            MixOutcome::Regular(b) => b,
        }
    }

    /// Whether the identity *looks* common in the published index
    /// (`β = 1`).
    pub fn looks_common(self) -> bool {
        matches!(self, MixOutcome::Common | MixOutcome::MixedUp)
    }
}

/// The λ computation and per-identity mixing decisions for one
/// construction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixPlan {
    lambda: f64,
    xi: f64,
    common_count: usize,
    outcomes: Vec<MixOutcome>,
}

impl MixPlan {
    /// The mixing probability λ applied to non-common identities.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The decoy-fraction target `ξ` (max ε over common identities).
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Number of true common identities `C = Σ_{β*≥1} 1`.
    pub fn common_count(&self) -> usize {
        self.common_count
    }

    /// Per-identity outcomes, indexed by owner.
    pub fn outcomes(&self) -> &[MixOutcome] {
        &self.outcomes
    }

    /// The final per-identity publishing probabilities.
    pub fn final_betas(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.beta()).collect()
    }

    /// Fraction of decoys among the published-common identities — the
    /// quantity bounded below by `ξ` that caps the common-identity
    /// attacker's confidence at `1 − ξ` (§III-C).
    ///
    /// Returns `None` when nothing looks common.
    pub fn achieved_decoy_fraction(&self) -> Option<f64> {
        let looks = self.outcomes.iter().filter(|o| o.looks_common()).count();
        if looks == 0 {
            return None;
        }
        let decoys = self
            .outcomes
            .iter()
            .filter(|o| matches!(o, MixOutcome::MixedUp))
            .count();
        Some(decoys as f64 / looks as f64)
    }
}

/// Computes the mixing probability λ of Eq. 7.
///
/// `common_count` is `C`, `total` is `n`, and `xi` the decoy-fraction
/// target. The result is clamped into `\[0, 1\]`; with no common identities
/// it is `0` (no mixing needed), and if everything is common it is `1`.
pub fn lambda_for(common_count: usize, total: usize, xi: f64) -> f64 {
    if common_count == 0 || xi <= 0.0 {
        return 0.0;
    }
    if total <= common_count {
        return 1.0;
    }
    if xi >= 1.0 {
        return 1.0;
    }
    let c = common_count as f64;
    let rest = (total - common_count) as f64;
    (xi / (1.0 - xi) * c / rest).clamp(0.0, 1.0)
}

/// Applies identity mixing (Eq. 6) to a vector of raw β values.
///
/// Identities with `raw_beta ≥ 1` are common and keep `β = 1`; every
/// other identity is exaggerated to `β = 1` with probability λ, where λ
/// follows Eq. 7 with `ξ = max ε` over the common identities.
///
/// # Panics
///
/// Panics if `raw_betas` and `epsilons` have different lengths.
///
/// ```
/// use eppi_core::mixing::mix;
/// use eppi_core::model::Epsilon;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let raw = vec![2.0, 0.3, 0.1];
/// let eps = vec![Epsilon::new(0.8)?, Epsilon::new(0.5)?, Epsilon::new(0.5)?];
/// let plan = mix(&raw, &eps, &mut rng);
/// assert_eq!(plan.common_count(), 1);
/// assert_eq!(plan.final_betas()[0], 1.0);
/// # Ok::<(), eppi_core::error::EppiError>(())
/// ```
pub fn mix<R: Rng + ?Sized>(raw_betas: &[f64], epsilons: &[Epsilon], rng: &mut R) -> MixPlan {
    assert_eq!(
        raw_betas.len(),
        epsilons.len(),
        "one ε per identity required"
    );
    let common: Vec<bool> = raw_betas.iter().map(|&b| b >= 1.0).collect();
    let common_count = common.iter().filter(|&&c| c).count();
    let xi = common
        .iter()
        .zip(epsilons)
        .filter(|(c, _)| **c)
        .map(|(_, e)| e.value())
        .fold(0.0f64, f64::max);
    let lambda = lambda_for(common_count, raw_betas.len(), xi);

    let outcomes = raw_betas
        .iter()
        .zip(&common)
        .map(|(&raw, &is_common)| {
            if is_common {
                MixOutcome::Common
            } else if lambda > 0.0 && rng.gen::<f64>() < lambda {
                MixOutcome::MixedUp
            } else {
                MixOutcome::Regular(raw.clamp(0.0, 1.0))
            }
        })
        .collect();

    MixPlan {
        lambda,
        xi,
        common_count,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn lambda_equation_7() {
        // C=10, n=1010, ξ=0.5 ⇒ λ = (0.5/0.5)·(10/1000) = 0.01.
        let l = lambda_for(10, 1010, 0.5);
        assert!((l - 0.01).abs() < 1e-12);
        // ξ=0.8 ⇒ λ = 4·(10/1000) = 0.04.
        let l = lambda_for(10, 1010, 0.8);
        assert!((l - 0.04).abs() < 1e-12);
    }

    #[test]
    fn lambda_degenerate_cases() {
        assert_eq!(lambda_for(0, 100, 0.9), 0.0);
        assert_eq!(lambda_for(5, 100, 0.0), 0.0);
        assert_eq!(lambda_for(100, 100, 0.5), 1.0);
        assert_eq!(lambda_for(5, 100, 1.0), 1.0);
        // Clamp: huge ξ relative to decoy pool.
        assert_eq!(lambda_for(99, 100, 0.99), 1.0);
    }

    #[test]
    fn no_commons_means_no_mixing() {
        let mut rng = StdRng::seed_from_u64(1);
        let raw = vec![0.1, 0.5, 0.99];
        let e = vec![eps(0.9); 3];
        let plan = mix(&raw, &e, &mut rng);
        assert_eq!(plan.common_count(), 0);
        assert_eq!(plan.lambda(), 0.0);
        for (o, &r) in plan.outcomes().iter().zip(&raw) {
            assert_eq!(*o, MixOutcome::Regular(r));
        }
        assert_eq!(plan.achieved_decoy_fraction(), None);
    }

    #[test]
    fn commons_always_publish_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let raw = vec![1.0, 5.0, f64::INFINITY, 0.2];
        let e = vec![eps(0.6), eps(0.7), eps(0.3), eps(0.5)];
        let plan = mix(&raw, &e, &mut rng);
        assert_eq!(plan.common_count(), 3);
        assert!((plan.xi() - 0.7).abs() < 1e-12);
        assert_eq!(plan.outcomes()[0], MixOutcome::Common);
        assert_eq!(plan.outcomes()[1], MixOutcome::Common);
        assert_eq!(plan.outcomes()[2], MixOutcome::Common);
        assert_eq!(plan.final_betas()[..3], [1.0, 1.0, 1.0]);
    }

    #[test]
    fn mixing_rate_approximates_lambda() {
        // 10 commons with ξ=0.5 among 10 010 identities ⇒ λ = 0.001·... :
        // use a larger ξ for a measurable rate.
        let n = 20_000usize;
        let commons = 100usize;
        let mut raw = vec![0.2; n];
        for b in raw.iter_mut().take(commons) {
            *b = 2.0;
        }
        let e = vec![eps(0.8); n];
        let mut rng = StdRng::seed_from_u64(3);
        let plan = mix(&raw, &e, &mut rng);
        let expected_lambda = lambda_for(commons, n, 0.8);
        let mixed = plan
            .outcomes()
            .iter()
            .filter(|o| matches!(o, MixOutcome::MixedUp))
            .count();
        let rate = mixed as f64 / (n - commons) as f64;
        assert!(
            (rate - expected_lambda).abs() < 0.2 * expected_lambda + 1e-3,
            "rate {rate} vs λ {expected_lambda}"
        );
    }

    #[test]
    fn decoy_fraction_meets_xi_in_expectation() {
        // With λ per Eq. 7, expected decoys / (commons + decoys) ≥ ξ ... the
        // equality case: decoys ≈ λ(n−C) = ξ/(1−ξ)·C, so fraction =
        // decoys/(C+decoys) = ξ.
        let n = 50_000usize;
        let commons = 200usize;
        let xi = 0.6;
        let mut raw = vec![0.1; n];
        for b in raw.iter_mut().take(commons) {
            *b = 3.0;
        }
        let mut e = vec![eps(0.2); n];
        for item in e.iter_mut().take(commons) {
            *item = eps(xi);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let plan = mix(&raw, &e, &mut rng);
        let frac = plan.achieved_decoy_fraction().unwrap();
        assert!((frac - xi).abs() < 0.05, "decoy fraction {frac} vs ξ {xi}");
    }

    #[test]
    #[should_panic(expected = "one ε per identity")]
    fn mismatched_lengths_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        mix(&[0.1], &[], &mut rng);
    }

    #[test]
    fn outcome_beta_accessors() {
        assert_eq!(MixOutcome::Common.beta(), 1.0);
        assert_eq!(MixOutcome::MixedUp.beta(), 1.0);
        assert_eq!(MixOutcome::Regular(0.25).beta(), 0.25);
        assert!(MixOutcome::Common.looks_common());
        assert!(MixOutcome::MixedUp.looks_common());
        assert!(!MixOutcome::Regular(0.9).looks_common());
    }
}
