//! Core data model of the ε-PPI system.
//!
//! The model follows §II-A of the paper: an information network of `m`
//! autonomous providers storing records of `n` owners. Each provider `p_i`
//! summarizes its local repository by a Boolean *membership vector*
//! `M_i(·)` over the owners; the union of all vectors forms the private
//! membership matrix `M(i, j)`. The construction publishes an obscured
//! matrix `M'(i, j)` (the [`PublishedIndex`]) in which false positives hide
//! the true memberships.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data owner (an *identity* `t_j`, e.g. a patient).
///
/// Owners are dense indices `0..n` into the columns of a
/// [`MembershipMatrix`].
///
/// ```
/// use eppi_core::model::OwnerId;
/// let t0 = OwnerId(0);
/// assert_eq!(t0.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OwnerId(pub u32);

impl OwnerId {
    /// Returns the owner's dense column index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for OwnerId {
    fn from(v: u32) -> Self {
        OwnerId(v)
    }
}

/// Identifier of a provider (`p_i`, e.g. a hospital).
///
/// Providers are dense indices `0..m` into the rows of a
/// [`MembershipMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProviderId(pub u32);

impl ProviderId {
    /// Returns the provider's dense row index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProviderId {
    fn from(v: u32) -> Self {
        ProviderId(v)
    }
}

/// A personalized privacy degree `ε_j ∈ \[0, 1\]` (§II-A, the `Delegate`
/// operation).
///
/// `ε = 0` means no privacy concern (the index may return exactly the true
/// positive providers); `ε = 1` demands perfect obscurity (a query is
/// effectively broadcast to the whole network). The construction guarantees
/// that the false-positive rate of the owner's published row is at least
/// `ε_j`, which bounds an attacker's confidence by `1 − ε_j` (ε-PRIVATE,
/// Eq. 1).
///
/// ```
/// use eppi_core::model::Epsilon;
/// let eps = Epsilon::new(0.8)?;
/// assert!((eps.value() - 0.8).abs() < 1e-12);
/// assert!(Epsilon::new(1.5).is_err());
/// # Ok::<(), eppi_core::error::EppiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Epsilon(f64);

impl Epsilon {
    /// The least privacy concern (`ε = 0`).
    pub const ZERO: Epsilon = Epsilon(0.0);
    /// The strongest privacy demand (`ε = 1`): search degenerates to
    /// broadcast.
    pub const ONE: Epsilon = Epsilon(1.0);

    /// Creates a privacy degree.
    ///
    /// # Errors
    ///
    /// Returns [`EppiError::InvalidEpsilon`](crate::error::EppiError) if
    /// `value` is not a finite number in `\[0, 1\]`.
    pub fn new(value: f64) -> Result<Self, crate::error::EppiError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Epsilon(value))
        } else {
            Err(crate::error::EppiError::InvalidEpsilon(value))
        }
    }

    /// Creates a privacy degree, clamping the input into `\[0, 1\]`.
    ///
    /// Non-finite inputs clamp to `0`.
    pub fn saturating(value: f64) -> Self {
        if value.is_finite() {
            Epsilon(value.clamp(0.0, 1.0))
        } else {
            Epsilon(0.0)
        }
    }

    /// Returns the raw degree in `\[0, 1\]`.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for Epsilon {
    fn default() -> Self {
        Epsilon::ZERO
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = crate::error::EppiError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Epsilon::new(value)
    }
}

const BLOCK_BITS: usize = 64;

/// A dense Boolean matrix of `m` provider rows × `n` owner columns, stored
/// as row-major 64-bit blocks.
///
/// This single representation backs both the private matrix `M` and the
/// published matrix `M'` (see [`PublishedIndex`]).
///
/// ```
/// use eppi_core::model::{MembershipMatrix, OwnerId, ProviderId};
/// let mut m = MembershipMatrix::new(3, 4);
/// m.set(ProviderId(1), OwnerId(2), true);
/// assert!(m.get(ProviderId(1), OwnerId(2)));
/// assert_eq!(m.frequency(OwnerId(2)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipMatrix {
    providers: usize,
    owners: usize,
    blocks_per_row: usize,
    bits: Vec<u64>,
}

impl MembershipMatrix {
    /// Creates an all-zero matrix with `providers` rows and `owners`
    /// columns.
    pub fn new(providers: usize, owners: usize) -> Self {
        let blocks_per_row = owners.div_ceil(BLOCK_BITS).max(1);
        MembershipMatrix {
            providers,
            owners,
            blocks_per_row,
            bits: vec![0; providers * blocks_per_row],
        }
    }

    /// Number of providers `m` (rows).
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// Number of owners `n` (columns).
    pub fn owners(&self) -> usize {
        self.owners
    }

    #[inline]
    fn locate(&self, provider: ProviderId, owner: OwnerId) -> (usize, u64) {
        let p = provider.index();
        let o = owner.index();
        assert!(
            p < self.providers,
            "provider {p} out of range {}",
            self.providers
        );
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        let block = p * self.blocks_per_row + o / BLOCK_BITS;
        let mask = 1u64 << (o % BLOCK_BITS);
        (block, mask)
    }

    /// Reads the membership bit `M(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, provider: ProviderId, owner: OwnerId) -> bool {
        let (block, mask) = self.locate(provider, owner);
        self.bits[block] & mask != 0
    }

    /// Writes the membership bit `M(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, provider: ProviderId, owner: OwnerId, value: bool) {
        let (block, mask) = self.locate(provider, owner);
        if value {
            self.bits[block] |= mask;
        } else {
            self.bits[block] &= !mask;
        }
    }

    /// Returns the identity frequency count of `owner`: the number of
    /// providers with `M(i, j) = 1` (the paper's `σ_j · m`).
    pub fn frequency(&self, owner: OwnerId) -> usize {
        let o = owner.index();
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        let block_off = o / BLOCK_BITS;
        let mask = 1u64 << (o % BLOCK_BITS);
        (0..self.providers)
            .filter(|p| self.bits[p * self.blocks_per_row + block_off] & mask != 0)
            .count()
    }

    /// Returns the relative frequency `σ_j = frequency / m`.
    ///
    /// Returns `0.0` for an empty network.
    pub fn sigma(&self, owner: OwnerId) -> f64 {
        if self.providers == 0 {
            0.0
        } else {
            self.frequency(owner) as f64 / self.providers as f64
        }
    }

    /// Returns all frequencies at once; one pass over the matrix, much
    /// faster than per-owner [`frequency`](Self::frequency) calls for large
    /// `n`.
    pub fn frequencies(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.owners];
        for p in 0..self.providers {
            let row = &self.bits[p * self.blocks_per_row..(p + 1) * self.blocks_per_row];
            for (b, &word) in row.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    let owner = b * BLOCK_BITS + bit;
                    if owner < self.owners {
                        counts[owner] += 1;
                    }
                    w &= w - 1;
                }
            }
        }
        counts
    }

    /// Returns the providers holding records of `owner` (the true positive
    /// list `{p_i : M(i, j) = 1}`).
    pub fn providers_of(&self, owner: OwnerId) -> Vec<ProviderId> {
        let o = owner.index();
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        let block_off = o / BLOCK_BITS;
        let mask = 1u64 << (o % BLOCK_BITS);
        (0..self.providers)
            .filter(|p| self.bits[p * self.blocks_per_row + block_off] & mask != 0)
            .map(|p| ProviderId(p as u32))
            .collect()
    }

    /// Returns one provider's row as raw 64-bit blocks (LSB-first owner
    /// order, possibly with unused high bits in the last block). This is
    /// the zero-copy view used by cache-friendly consumers such as the
    /// serving layer's shard transpose.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn row_words(&self, provider: ProviderId) -> &[u64] {
        let p = provider.index();
        assert!(
            p < self.providers,
            "provider {p} out of range {}",
            self.providers
        );
        &self.bits[p * self.blocks_per_row..(p + 1) * self.blocks_per_row]
    }

    /// Returns one owner's *column* as a packed provider bitmap: bit `i`
    /// of word `i / 64` is `M(i, j)`. The word count is
    /// `m.div_ceil(64).max(1)` — exactly the serving layer's
    /// words-per-row, so a column can be blitted straight into a shard
    /// slot without re-packing.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn column_words(&self, owner: OwnerId) -> Vec<u64> {
        let o = owner.index();
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        let block_off = o / BLOCK_BITS;
        let mask = 1u64 << (o % BLOCK_BITS);
        let words = self.providers.div_ceil(BLOCK_BITS).max(1);
        let mut out = vec![0u64; words];
        for p in 0..self.providers {
            if self.bits[p * self.blocks_per_row + block_off] & mask != 0 {
                out[p / BLOCK_BITS] |= 1u64 << (p % BLOCK_BITS);
            }
        }
        out
    }

    /// Returns one provider's membership vector `M_i(·)` as a Boolean vec
    /// over owners.
    pub fn row(&self, provider: ProviderId) -> LocalVector {
        let p = provider.index();
        assert!(
            p < self.providers,
            "provider {p} out of range {}",
            self.providers
        );
        let row = &self.bits[p * self.blocks_per_row..(p + 1) * self.blocks_per_row];
        LocalVector {
            provider,
            bits: row.to_vec(),
            owners: self.owners,
        }
    }

    /// Installs a provider's local vector as row `i` of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if the vector's owner count disagrees with the matrix or its
    /// provider index is out of range.
    pub fn set_row(&mut self, vector: &LocalVector) {
        assert_eq!(vector.owners, self.owners, "owner count mismatch");
        let p = vector.provider.index();
        assert!(
            p < self.providers,
            "provider {p} out of range {}",
            self.providers
        );
        let dst = &mut self.bits[p * self.blocks_per_row..(p + 1) * self.blocks_per_row];
        dst.copy_from_slice(&vector.bits);
    }

    /// Total number of `1` cells in the matrix.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Grows the matrix to `new_owners` columns (existing bits keep
    /// their positions; new columns start zeroed). Networks grow as
    /// owners keep delegating (§II-A), and per-identity independence
    /// makes column growth cheap.
    ///
    /// # Panics
    ///
    /// Panics if `new_owners` is smaller than the current owner count.
    pub fn grow_owners(&mut self, new_owners: usize) {
        assert!(
            new_owners >= self.owners,
            "cannot shrink owners from {} to {new_owners}",
            self.owners
        );
        let new_blocks = new_owners.div_ceil(BLOCK_BITS).max(1);
        if new_blocks != self.blocks_per_row {
            let mut bits = vec![0u64; self.providers * new_blocks];
            for p in 0..self.providers {
                let src = &self.bits[p * self.blocks_per_row..(p + 1) * self.blocks_per_row];
                bits[p * new_blocks..p * new_blocks + self.blocks_per_row].copy_from_slice(src);
            }
            self.bits = bits;
            self.blocks_per_row = new_blocks;
        }
        self.owners = new_owners;
    }

    /// Iterates over all owner ids `t_0 .. t_{n-1}`.
    pub fn owner_ids(&self) -> impl Iterator<Item = OwnerId> {
        (0..self.owners as u32).map(OwnerId)
    }

    /// Iterates over all provider ids `p_0 .. p_{m-1}`.
    pub fn provider_ids(&self) -> impl Iterator<Item = ProviderId> {
        (0..self.providers as u32).map(ProviderId)
    }
}

/// One provider's private membership vector `M_i(·)` (§II-A, Fig. 2).
///
/// This is the unit of data a provider contributes to the distributed
/// construction protocol; it never leaves the provider in cleartext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalVector {
    provider: ProviderId,
    bits: Vec<u64>,
    owners: usize,
}

impl LocalVector {
    /// Creates an all-zero local vector for `provider` over `owners`
    /// identities.
    pub fn new(provider: ProviderId, owners: usize) -> Self {
        LocalVector {
            provider,
            bits: vec![0; owners.div_ceil(BLOCK_BITS).max(1)],
            owners,
        }
    }

    /// The provider owning this vector.
    pub fn provider(&self) -> ProviderId {
        self.provider
    }

    /// Number of owner columns.
    pub fn owners(&self) -> usize {
        self.owners
    }

    /// Reads the membership bit for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn get(&self, owner: OwnerId) -> bool {
        let o = owner.index();
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        self.bits[o / BLOCK_BITS] & (1u64 << (o % BLOCK_BITS)) != 0
    }

    /// Writes the membership bit for `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `owner` is out of range.
    pub fn set(&mut self, owner: OwnerId, value: bool) {
        let o = owner.index();
        assert!(o < self.owners, "owner {o} out of range {}", self.owners);
        let mask = 1u64 << (o % BLOCK_BITS);
        if value {
            self.bits[o / BLOCK_BITS] |= mask;
        } else {
            self.bits[o / BLOCK_BITS] &= !mask;
        }
    }

    /// Number of identities this provider holds.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The published, obscured index `M'(·, ·)` served by the untrusted PPI
/// server.
///
/// Invariant upheld by the construction (Eq. 2): `M(i,j) = 1 ⇒ M'(i,j) = 1`
/// (truthful publication, hence 100% query recall); `M(i,j) = 0` may flip to
/// `1` with the per-owner probability `β_j` (false positives).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedIndex {
    matrix: MembershipMatrix,
    betas: Vec<f64>,
}

impl PublishedIndex {
    /// Wraps a published matrix together with the per-owner publishing
    /// probabilities used to create it.
    ///
    /// # Panics
    ///
    /// Panics if `betas.len()` differs from the matrix owner count.
    pub fn new(matrix: MembershipMatrix, betas: Vec<f64>) -> Self {
        assert_eq!(matrix.owners(), betas.len(), "one β per owner required");
        PublishedIndex { matrix, betas }
    }

    /// The published Boolean matrix `M'`.
    pub fn matrix(&self) -> &MembershipMatrix {
        &self.matrix
    }

    /// The per-owner publishing probabilities `β_j` (public, per §IV-C the
    /// final β carries no private information once mixing is applied).
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Evaluates `QueryPPI(t_j)`: all providers published as possibly
    /// holding the owner's records.
    pub fn query(&self, owner: OwnerId) -> Vec<ProviderId> {
        self.matrix.providers_of(owner)
    }

    /// The *published* frequency of `owner` — what an attacker observing
    /// `M'` can measure.
    pub fn published_frequency(&self, owner: OwnerId) -> usize {
        self.matrix.frequency(owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_set_get_roundtrip() {
        let mut m = MembershipMatrix::new(5, 130);
        m.set(ProviderId(0), OwnerId(0), true);
        m.set(ProviderId(4), OwnerId(129), true);
        m.set(ProviderId(2), OwnerId(64), true);
        assert!(m.get(ProviderId(0), OwnerId(0)));
        assert!(m.get(ProviderId(4), OwnerId(129)));
        assert!(m.get(ProviderId(2), OwnerId(64)));
        assert!(!m.get(ProviderId(1), OwnerId(0)));
        m.set(ProviderId(2), OwnerId(64), false);
        assert!(!m.get(ProviderId(2), OwnerId(64)));
    }

    #[test]
    fn frequency_counts_rows() {
        let mut m = MembershipMatrix::new(4, 3);
        m.set(ProviderId(0), OwnerId(1), true);
        m.set(ProviderId(1), OwnerId(1), true);
        m.set(ProviderId(3), OwnerId(1), true);
        assert_eq!(m.frequency(OwnerId(1)), 3);
        assert_eq!(m.frequency(OwnerId(0)), 0);
        assert!((m.sigma(OwnerId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn frequencies_matches_per_owner_frequency() {
        let mut m = MembershipMatrix::new(7, 200);
        // Deterministic pseudo-random pattern.
        let mut state = 0x9e3779b97f4a7c15u64;
        for p in 0..7u32 {
            for o in 0..200u32 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 62 == 0 {
                    m.set(ProviderId(p), OwnerId(o), true);
                }
            }
        }
        let all = m.frequencies();
        for o in 0..200u32 {
            assert_eq!(all[o as usize], m.frequency(OwnerId(o)), "owner {o}");
        }
    }

    #[test]
    fn providers_of_lists_true_positives() {
        let mut m = MembershipMatrix::new(6, 2);
        m.set(ProviderId(1), OwnerId(0), true);
        m.set(ProviderId(5), OwnerId(0), true);
        assert_eq!(
            m.providers_of(OwnerId(0)),
            vec![ProviderId(1), ProviderId(5)]
        );
        assert!(m.providers_of(OwnerId(1)).is_empty());
    }

    #[test]
    fn row_and_set_row_roundtrip() {
        let mut m = MembershipMatrix::new(3, 70);
        m.set(ProviderId(1), OwnerId(69), true);
        let row = m.row(ProviderId(1));
        assert!(row.get(OwnerId(69)));
        assert_eq!(row.ones(), 1);

        let mut m2 = MembershipMatrix::new(3, 70);
        m2.set_row(&row);
        assert!(m2.get(ProviderId(1), OwnerId(69)));
        assert_eq!(m2.ones(), 1);
    }

    #[test]
    fn local_vector_set_get() {
        let mut v = LocalVector::new(ProviderId(2), 100);
        assert_eq!(v.provider(), ProviderId(2));
        v.set(OwnerId(63), true);
        v.set(OwnerId(64), true);
        assert!(v.get(OwnerId(63)));
        assert!(v.get(OwnerId(64)));
        assert!(!v.get(OwnerId(65)));
        assert_eq!(v.ones(), 2);
        v.set(OwnerId(63), false);
        assert_eq!(v.ones(), 1);
    }

    #[test]
    fn epsilon_validation() {
        assert!(Epsilon::new(0.0).is_ok());
        assert!(Epsilon::new(1.0).is_ok());
        assert!(Epsilon::new(0.5).is_ok());
        assert!(Epsilon::new(-0.1).is_err());
        assert!(Epsilon::new(1.1).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        assert_eq!(Epsilon::saturating(2.0), Epsilon::ONE);
        assert_eq!(Epsilon::saturating(-3.0), Epsilon::ZERO);
        assert_eq!(Epsilon::saturating(f64::NAN), Epsilon::ZERO);
    }

    #[test]
    fn published_index_query() {
        let mut m = MembershipMatrix::new(4, 2);
        m.set(ProviderId(0), OwnerId(0), true);
        m.set(ProviderId(2), OwnerId(0), true);
        let idx = PublishedIndex::new(m, vec![0.5, 0.1]);
        assert_eq!(idx.query(OwnerId(0)), vec![ProviderId(0), ProviderId(2)]);
        assert_eq!(idx.published_frequency(OwnerId(0)), 2);
        assert_eq!(idx.betas(), &[0.5, 0.1]);
    }

    #[test]
    #[should_panic(expected = "owner")]
    fn matrix_get_out_of_range_panics() {
        let m = MembershipMatrix::new(2, 2);
        m.get(ProviderId(0), OwnerId(2));
    }

    #[test]
    fn display_impls() {
        assert_eq!(OwnerId(3).to_string(), "t3");
        assert_eq!(ProviderId(7).to_string(), "p7");
        assert_eq!(Epsilon::new(0.25).unwrap().to_string(), "ε=0.25");
    }
}
