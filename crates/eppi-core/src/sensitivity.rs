//! Provider-sensitivity extension (motivated by §I, beyond the paper's
//! owner-only knob).
//!
//! The paper's introduction motivates *two* axes of personalization: "a
//! woman may consider her visit to a women's health center much more
//! sensitive than her visit to a general hospital", and "different owners
//! may have different levels of concerns". The ε-PPI mechanism itself
//! personalizes only per owner (`ε_j`); this module closes the gap with
//! a conservative reduction: each provider carries a sensitivity degree
//! `s_i ∈ \[0, 1\]`, and an owner's *effective* privacy degree becomes
//!
//! ```text
//! ε'_j = max( ε_j , max { s_i : M(i, j) = 1 } )
//! ```
//!
//! i.e. visiting a sensitive provider lifts the owner's whole row to
//! that provider's level. Because the false-positive rate is a row-level
//! property (any published positive is equally likely to be the
//! sensitive one from the attacker's viewpoint), bounding the row's
//! confidence by `1 − ε'_j` also bounds the confidence of the
//! `(t_j, sensitive p_i)` pair — the conservative direction.
//!
//! This is an extension (the paper lists per-provider control as
//! motivation but builds the per-owner knob); it composes with the
//! standard constructor by rewriting the ε assignment up front.

use crate::error::EppiError;
use crate::model::{Epsilon, MembershipMatrix};

/// Per-provider sensitivity degrees.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderSensitivity {
    degrees: Vec<Epsilon>,
}

impl ProviderSensitivity {
    /// Creates the assignment; one degree per provider.
    pub fn new(degrees: Vec<Epsilon>) -> Self {
        ProviderSensitivity { degrees }
    }

    /// A uniform assignment (every provider equally sensitive).
    pub fn uniform(providers: usize, degree: Epsilon) -> Self {
        ProviderSensitivity {
            degrees: vec![degree; providers],
        }
    }

    /// Number of providers covered.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// The degree of provider `i`.
    pub fn degree(&self, provider: usize) -> Epsilon {
        self.degrees[provider]
    }

    /// Raises one provider's sensitivity (e.g. marking a specialty
    /// clinic).
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn set(&mut self, provider: usize, degree: Epsilon) {
        self.degrees[provider] = degree;
    }
}

/// Computes the effective per-owner ε assignment: each owner's degree is
/// lifted to the most sensitive provider actually holding their records.
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] if the counts disagree with
/// the matrix.
pub fn effective_epsilons(
    matrix: &MembershipMatrix,
    owner_eps: &[Epsilon],
    sensitivity: &ProviderSensitivity,
) -> Result<Vec<Epsilon>, EppiError> {
    if owner_eps.len() != matrix.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "owner epsilons",
            expected: matrix.owners(),
            actual: owner_eps.len(),
        });
    }
    if sensitivity.len() != matrix.providers() {
        return Err(EppiError::DimensionMismatch {
            what: "provider sensitivities",
            expected: matrix.providers(),
            actual: sensitivity.len(),
        });
    }
    Ok(matrix
        .owner_ids()
        .map(|owner| {
            let base = owner_eps[owner.index()].value();
            let lifted = matrix
                .providers_of(owner)
                .into_iter()
                .map(|p| sensitivity.degree(p.index()).value())
                .fold(base, f64::max);
            Epsilon::saturating(lifted)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, ConstructionConfig};
    use crate::model::{OwnerId, ProviderId};
    use crate::privacy::owner_privacy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn eps(v: f64) -> Epsilon {
        Epsilon::saturating(v)
    }

    #[test]
    fn sensitive_provider_lifts_its_visitors_only() {
        let mut m = MembershipMatrix::new(4, 3);
        m.set(ProviderId(0), OwnerId(0), true); // visits sensitive clinic
        m.set(ProviderId(1), OwnerId(1), true); // visits general hospital
                                                // Owner 2 has no records at all.
        let mut s = ProviderSensitivity::uniform(4, eps(0.1));
        s.set(0, eps(0.9));
        let base = vec![eps(0.3); 3];
        let effective = effective_epsilons(&m, &base, &s).unwrap();
        assert_eq!(effective[0], eps(0.9), "lifted by the clinic");
        assert_eq!(
            effective[1],
            eps(0.3),
            "hospital (0.1) below the owner's 0.3"
        );
        assert_eq!(effective[2], eps(0.3), "no records: base ε stands");
    }

    #[test]
    fn owner_degree_is_never_lowered() {
        let mut m = MembershipMatrix::new(2, 1);
        m.set(ProviderId(0), OwnerId(0), true);
        let s = ProviderSensitivity::uniform(2, eps(0.2));
        let effective = effective_epsilons(&m, &[eps(0.8)], &s).unwrap();
        assert_eq!(effective[0], eps(0.8));
    }

    #[test]
    fn composes_with_construction() {
        // A VIP-clinic visitor ends up with clinic-level obscurity even
        // though the owner asked for little.
        let mut m = MembershipMatrix::new(500, 1);
        m.set(ProviderId(7), OwnerId(0), true);
        let mut s = ProviderSensitivity::uniform(500, eps(0.0));
        s.set(7, eps(0.9));
        let effective = effective_epsilons(&m, &[eps(0.1)], &s).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let built = construct(&m, &effective, ConstructionConfig::default(), &mut rng).unwrap();
        let p = owner_privacy(&m, &built.index, OwnerId(0));
        assert!(
            p.satisfies(eps(0.9)) || p.false_positive_rate.unwrap() > 0.8,
            "clinic-level privacy enforced: fp = {:?}",
            p.false_positive_rate
        );
    }

    #[test]
    fn dimensions_validated() {
        let m = MembershipMatrix::new(3, 2);
        let s = ProviderSensitivity::uniform(2, eps(0.5));
        assert!(effective_epsilons(&m, &[eps(0.1); 2], &s).is_err());
        let s = ProviderSensitivity::uniform(3, eps(0.5));
        assert!(effective_epsilons(&m, &[eps(0.1)], &s).is_err());
        assert!(effective_epsilons(&m, &[eps(0.1); 2], &s).is_ok());
    }
}
