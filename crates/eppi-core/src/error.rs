//! Error types for the ε-PPI core crate.

use std::error::Error;
use std::fmt;

/// Errors raised by ε-PPI model construction and validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EppiError {
    /// A privacy degree outside `\[0, 1\]` (or non-finite) was supplied.
    InvalidEpsilon(f64),
    /// A policy parameter was out of its valid domain (e.g. Chernoff
    /// success ratio `γ ≤ 0.5`).
    InvalidPolicyParameter {
        /// Parameter name, e.g. `"gamma"`.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable domain description, e.g. `"(0.5, 1)"`.
        expected: &'static str,
    },
    /// Dimensions of two model objects disagree (e.g. ε assignment vs
    /// matrix owner count).
    DimensionMismatch {
        /// What was being matched.
        what: &'static str,
        /// The expected size.
        expected: usize,
        /// The size actually supplied.
        actual: usize,
    },
    /// The network is too small for the requested operation (e.g. fewer
    /// providers than the collusion-tolerance parameter `c`).
    NetworkTooSmall {
        /// Number of providers available.
        providers: usize,
        /// Minimum required.
        required: usize,
    },
    /// Recovered protocol state failed a semantic validity check when
    /// resuming an epoch lineage (dimensions are reported separately
    /// via [`EppiError::DimensionMismatch`]).
    InvalidResumeState {
        /// Which invariant the state violates.
        what: &'static str,
    },
}

impl fmt::Display for EppiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EppiError::InvalidEpsilon(v) => {
                write!(
                    f,
                    "privacy degree must be a finite value in [0, 1], got {v}"
                )
            }
            EppiError::InvalidPolicyParameter {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "policy parameter `{name}` must be in {expected}, got {value}"
                )
            }
            EppiError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "dimension mismatch for {what}: expected {expected}, got {actual}"
                )
            }
            EppiError::NetworkTooSmall {
                providers,
                required,
            } => {
                write!(f, "network has {providers} providers but the operation requires at least {required}")
            }
            EppiError::InvalidResumeState { what } => {
                write!(f, "recovered epoch state is invalid: {what}")
            }
        }
    }
}

impl Error for EppiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = EppiError::InvalidEpsilon(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = EppiError::InvalidPolicyParameter {
            name: "gamma",
            value: 0.2,
            expected: "(0.5, 1)",
        };
        assert!(e.to_string().contains("gamma"));
        let e = EppiError::DimensionMismatch {
            what: "epsilons",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = EppiError::NetworkTooSmall {
            providers: 2,
            required: 3,
        };
        assert!(e.to_string().contains("at least 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EppiError>();
    }
}
