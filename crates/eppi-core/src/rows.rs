//! Packed provider-row extraction and answer types.
//!
//! The owner-major serving layout (`eppi-serve`) and the oblivious
//! private-query subsystem (`eppi-pir`) traffic in the same physical
//! row shape: one owner's provider set packed LSB-first into `u64`
//! words — bit `i` of word `i / 64` says whether provider `p_i` was
//! published for the owner. This module is the shared vocabulary for
//! that shape: the word-count helper, the word-level decode back into
//! the canonical ascending [`ProviderId`] list that `QueryPPI`
//! returns, and a typed [`RowAnswer`] carrying a packed row together
//! with the provider count needed to decode it (the form in which a
//! PIR answer share travels before recombination).

use crate::model::ProviderId;

/// Bits per packed row word.
pub const ROW_WORD_BITS: usize = 64;

/// Number of `u64` words in a packed provider row over `providers`
/// providers — `ceil(m / 64)`, minimum 1 so even an empty network has
/// a well-formed (all-zero) row.
pub fn row_words(providers: usize) -> usize {
    providers.div_ceil(ROW_WORD_BITS).max(1)
}

/// Decodes a packed provider row into the ascending [`ProviderId`]
/// list `QueryPPI` answers with. Bits at positions `>= providers`
/// (unused high bits of the last word) are ignored, so decoding a row
/// recombined from PIR answer shares is safe even if padding bits got
/// XOR-noise cancelled into them.
pub fn providers_in_row(words: &[u64], providers: usize) -> Vec<ProviderId> {
    let mut out = Vec::new();
    for (block, &w) in words.iter().enumerate() {
        providers_in_word(w, block * ROW_WORD_BITS, providers, &mut out);
    }
    out
}

/// Decodes the set bits of one packed word (whose bit 0 represents
/// provider `base`) into `out`, in ascending order, ignoring positions
/// `>= providers`. The word-level primitive behind [`providers_in_row`],
/// shared with the compressed-row decoder in [`crate::rowstore`] so
/// both stores decode literal words identically.
pub fn providers_in_word(word: u64, base: usize, providers: usize, out: &mut Vec<ProviderId>) {
    let mut bits = word;
    while bits != 0 {
        let p = base + bits.trailing_zeros() as usize;
        bits &= bits - 1;
        if p >= providers {
            break;
        }
        out.push(ProviderId(p as u32));
    }
}

/// A packed provider row plus the provider count that scopes it — the
/// unit a private-query server returns (one XOR-accumulated share per
/// query) and the unit a client decodes after recombining shares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowAnswer {
    words: Vec<u64>,
    providers: usize,
}

impl RowAnswer {
    /// Wraps a packed row.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not exactly [`row_words`]`(providers)`
    /// long — a mis-sized share would silently truncate providers.
    pub fn new(words: Vec<u64>, providers: usize) -> Self {
        assert_eq!(
            words.len(),
            row_words(providers),
            "row of {} words cannot cover {providers} providers",
            words.len()
        );
        RowAnswer { words, providers }
    }

    /// An all-zero row (the answer for an owner nobody published).
    pub fn zero(providers: usize) -> Self {
        RowAnswer {
            words: vec![0; row_words(providers)],
            providers,
        }
    }

    /// The packed words, LSB-first provider order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The provider count the row is scoped to.
    pub fn providers(&self) -> usize {
        self.providers
    }

    /// XORs `other` into this row — the 2-server PIR recombination
    /// step (and, algebraically, GF(2) row addition).
    ///
    /// # Panics
    ///
    /// Panics if the two rows are scoped to different provider counts.
    pub fn xor_assign(&mut self, other: &RowAnswer) {
        assert_eq!(
            self.providers, other.providers,
            "cannot recombine rows over different provider counts"
        );
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Decodes into the ascending provider list (see
    /// [`providers_in_row`]).
    pub fn decode(&self) -> Vec<ProviderId> {
        providers_in_row(&self.words, self.providers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_words_matches_matrix_layout() {
        assert_eq!(row_words(0), 1);
        assert_eq!(row_words(1), 1);
        assert_eq!(row_words(64), 1);
        assert_eq!(row_words(65), 2);
        assert_eq!(row_words(10_000), 157);
    }

    #[test]
    fn decode_lists_set_bits_in_ascending_order() {
        let words = vec![(1 << 0) | (1 << 63), 1 << 5];
        assert_eq!(
            providers_in_row(&words, 128),
            vec![ProviderId(0), ProviderId(63), ProviderId(69)]
        );
        // Bits beyond the provider count are padding, not providers.
        assert_eq!(
            providers_in_row(&words, 64),
            vec![ProviderId(0), ProviderId(63)]
        );
        assert_eq!(providers_in_row(&words, 1), vec![ProviderId(0)]);
    }

    #[test]
    fn row_answer_recombines_by_xor() {
        let mut a = RowAnswer::new(vec![0b1010, 0], 70);
        let b = RowAnswer::new(vec![0b0110, 1], 70);
        a.xor_assign(&b);
        assert_eq!(a.words(), &[0b1100, 1]);
        assert_eq!(
            a.decode(),
            vec![ProviderId(2), ProviderId(3), ProviderId(64)]
        );
        assert!(RowAnswer::zero(70).decode().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn mis_sized_rows_are_rejected() {
        RowAnswer::new(vec![0; 1], 100);
    }

    #[test]
    #[should_panic(expected = "different provider counts")]
    fn cross_scope_recombination_is_rejected() {
        RowAnswer::zero(64).xor_assign(&RowAnswer::zero(128));
    }
}
