//! Pluggable storage backends for packed provider rows.
//!
//! The serving layer keeps one packed provider bitmap per owner (see
//! [`crate::rows`] for the shape). How those bitmaps are *stored* is a
//! scale decision, not a semantic one, so this module abstracts it
//! behind [`RowStore`] with two backends:
//!
//! * [`DenseRows`] — the flat slot-major `u64` block the layout has
//!   always used. Every row occupies exactly `words_per_row` words at
//!   a computable offset, which is what the oblivious PIR scan kernels
//!   (`eppi-pir`) require: their memory traffic must depend only on
//!   the block shape, never on row content, so the PIR replicas keep
//!   this backend unconditionally.
//! * [`CompressedRows`] — a word-aligned EWAH-style compressed bitmap
//!   store for the plaintext serve path. The published matrix is
//!   boolean and strongly skewed (most owners visit a handful of the
//!   `m` providers), so run-length-encoding the all-zero (and all-one)
//!   words cuts resident memory by roughly the inverse density — ~10×
//!   or better at paper-like sparsity — while the word-level decode
//!   kernels keep per-query cost proportional to the row's *content*,
//!   not the provider universe.
//!
//! [`RowBlock`] is the closed enum the sharded layout actually holds:
//! it dispatches [`RowStore`] to whichever backend was selected
//! ([`RowBackend`]) and exposes the dense words ([`RowBlock::as_dense`])
//! only when they physically exist, so a compressed block can never be
//! scanned obliviously by accident.
//!
//! ## Compressed format
//!
//! Each row is encoded as a sequence of `u64` tokens over its
//! `words_per_row` uncompressed words:
//!
//! ```text
//! marker word:  bit 63        fill value (0 = zero words, 1 = all-one words)
//!               bits 32..63   fill run length, in words (31 bits)
//!               bits 0..32    literal word count that follows
//! literals:     `literal count` verbatim u64 words
//! ```
//!
//! Markers and literals for every row of a block live in one shared
//! stream with a per-row offset table, so a block is two allocations
//! however many rows it holds. Every marker covers at least one
//! uncompressed word, which bounds the stream at `2 ×` the dense size
//! even for adversarial bit patterns; sparse rows collapse to a few
//! words each.

use crate::model::ProviderId;
use crate::rows::{providers_in_word, row_words, ROW_WORD_BITS};
use std::fmt;

/// Which physical row layout a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBackend {
    /// Flat slot-major packed words — the PIR-scannable layout.
    Dense,
    /// EWAH-style word-level run-length compression.
    Compressed,
}

impl RowBackend {
    /// Stable lowercase name, used as a telemetry label value and a
    /// codec tag.
    pub fn name(self) -> &'static str {
        match self {
            RowBackend::Dense => "dense",
            RowBackend::Compressed => "compressed",
        }
    }
}

impl fmt::Display for RowBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Read-only access to a block of packed provider rows, independent of
/// the physical layout. Slot addressing is the store's own (the caller
/// maps owners to slots); all stores over the same `providers` universe
/// answer bit-identically for the same logical rows.
pub trait RowStore: fmt::Debug + Send + Sync {
    /// Number of rows resident in the block.
    fn rows(&self) -> usize;

    /// Provider universe the rows are scoped to.
    fn providers(&self) -> usize;

    /// Uncompressed words per row (`ceil(providers / 64)`, min 1).
    fn words_per_row(&self) -> usize {
        row_words(self.providers())
    }

    /// Decompresses row `slot` into `out` (exactly
    /// [`words_per_row`](Self::words_per_row) words).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `out` is mis-sized.
    fn read_row_into(&self, slot: usize, out: &mut [u64]);

    /// Decodes row `slot` straight into the ascending provider list
    /// `QueryPPI` answers with — the serve read path. Backends override
    /// this when they can decode without materializing the dense row.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    fn providers_in_slot(&self, slot: usize) -> Vec<ProviderId> {
        let mut row = vec![0u64; self.words_per_row()];
        self.read_row_into(slot, &mut row);
        crate::rows::providers_in_row(&row, self.providers())
    }

    /// Bytes of heap memory the block actually holds resident — the
    /// quantity behind the `serve.index_bytes` telemetry gauge.
    fn resident_bytes(&self) -> usize;
}

/// The flat slot-major packed layout: row `s` occupies words
/// `s * words_per_row .. (s + 1) * words_per_row`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseRows {
    words: Vec<u64>,
    providers: usize,
    words_per_row: usize,
}

impl DenseRows {
    /// Wraps a slot-major word buffer.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not a whole number of rows for the
    /// `providers` universe.
    pub fn from_words(words: Vec<u64>, providers: usize) -> Self {
        let words_per_row = row_words(providers);
        assert_eq!(
            words.len() % words_per_row,
            0,
            "ragged dense block: {} words, {words_per_row} per row",
            words.len()
        );
        DenseRows {
            words,
            providers,
            words_per_row,
        }
    }

    /// The whole packed block, slot-major — the shape the oblivious
    /// scan kernels consume.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Row `slot` as a word slice (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn row(&self, slot: usize) -> &[u64] {
        &self.words[slot * self.words_per_row..(slot + 1) * self.words_per_row]
    }
}

/// The dense block *is* its word slice — what makes the PIR scan
/// kernels generic over "anything physically dense" without knowing
/// this crate's store types.
impl AsRef<[u64]> for DenseRows {
    fn as_ref(&self) -> &[u64] {
        &self.words
    }
}

impl RowStore for DenseRows {
    fn rows(&self) -> usize {
        self.words.len() / self.words_per_row
    }

    fn providers(&self) -> usize {
        self.providers
    }

    fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    fn read_row_into(&self, slot: usize, out: &mut [u64]) {
        out.copy_from_slice(self.row(slot));
    }

    fn providers_in_slot(&self, slot: usize) -> Vec<ProviderId> {
        crate::rows::providers_in_row(self.row(slot), self.providers)
    }

    fn resident_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Marker-word field layout (see the module docs).
const FILL_ONE: u64 = 1 << 63;
const RUN_SHIFT: u32 = 32;
const RUN_MAX: u64 = (1 << 31) - 1;
const LIT_MASK: u64 = (1 << 32) - 1;

#[inline]
fn marker(fill_one: bool, run: u64, literals: u64) -> u64 {
    debug_assert!(run <= RUN_MAX && literals <= LIT_MASK);
    (if fill_one { FILL_ONE } else { 0 }) | (run << RUN_SHIFT) | literals
}

/// The EWAH-style compressed store: one shared token stream plus a
/// per-row offset table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedRows {
    /// Concatenated marker/literal tokens of every row.
    stream: Vec<u64>,
    /// `rows() + 1` offsets into `stream`; row `s` spans
    /// `offsets[s] .. offsets[s + 1]`.
    offsets: Vec<u32>,
    providers: usize,
    words_per_row: usize,
}

impl CompressedRows {
    /// Compresses a slot-major dense block.
    ///
    /// # Panics
    ///
    /// Panics if `words` is ragged for the `providers` universe.
    pub fn from_dense_words(words: &[u64], providers: usize) -> Self {
        let words_per_row = row_words(providers);
        assert_eq!(
            words.len() % words_per_row,
            0,
            "ragged dense block: {} words, {words_per_row} per row",
            words.len()
        );
        let mut builder = CompressedRowsBuilder::new(providers);
        for row in words.chunks_exact(words_per_row) {
            builder.push_row(row);
        }
        builder.finish()
    }

    /// Rebuilds the compressed stream from raw parts — the codec's
    /// decode path. Validates that the offsets tile the stream and that
    /// every row's tokens decompress to exactly `words_per_row` words.
    ///
    /// # Errors
    ///
    /// A static description of the first structural defect found.
    pub fn from_parts(
        stream: Vec<u64>,
        offsets: Vec<u32>,
        providers: usize,
    ) -> Result<Self, &'static str> {
        if offsets.first() != Some(&0) {
            return Err("offset table must start at 0");
        }
        if *offsets.last().unwrap() as usize != stream.len() {
            return Err("offset table must end at the stream length");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offset table must be monotone");
        }
        let store = CompressedRows {
            stream,
            offsets,
            providers,
            words_per_row: row_words(providers),
        };
        for slot in 0..store.rows() {
            let mut covered = 0usize;
            let mut tokens = store.row_tokens(slot).iter();
            while let Some(&m) = tokens.next() {
                let run = ((m >> RUN_SHIFT) & RUN_MAX) as usize;
                let lits = (m & LIT_MASK) as usize;
                covered += run + lits;
                for _ in 0..lits {
                    if tokens.next().is_none() {
                        return Err("marker promises more literals than the row holds");
                    }
                }
            }
            if covered != store.words_per_row {
                return Err("row tokens do not cover exactly words_per_row words");
            }
        }
        Ok(store)
    }

    /// The raw token stream (for serialization).
    pub fn stream(&self) -> &[u64] {
        &self.stream
    }

    /// The raw offset table (for serialization).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    fn row_tokens(&self, slot: usize) -> &[u64] {
        &self.stream[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }

    /// Word-level batch decode: answers several slots in one call,
    /// reusing nothing but saving the per-call dispatch — the kernel
    /// the serve batch path uses after coalescing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any slot is out of range.
    pub fn providers_in_slots(&self, slots: &[u32]) -> Vec<Vec<ProviderId>> {
        slots
            .iter()
            .map(|&s| self.providers_in_slot(s as usize))
            .collect()
    }
}

impl RowStore for CompressedRows {
    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn providers(&self) -> usize {
        self.providers
    }

    fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    fn read_row_into(&self, slot: usize, out: &mut [u64]) {
        assert_eq!(out.len(), self.words_per_row, "mis-sized row buffer");
        let mut at = 0usize;
        let mut tokens = self.row_tokens(slot).iter();
        while let Some(&m) = tokens.next() {
            let run = ((m >> RUN_SHIFT) & RUN_MAX) as usize;
            let fill = if m & FILL_ONE != 0 { !0u64 } else { 0 };
            out[at..at + run].fill(fill);
            at += run;
            let lits = (m & LIT_MASK) as usize;
            for w in out[at..at + lits].iter_mut() {
                *w = *tokens.next().expect("validated stream");
            }
            at += lits;
        }
        debug_assert_eq!(at, self.words_per_row);
    }

    /// Word-level decode straight off the token stream: fill-one runs
    /// emit consecutive provider ids, literal words decode bit-by-bit,
    /// fill-zero runs are skipped entirely — per-query work tracks the
    /// row's content, not the provider universe.
    fn providers_in_slot(&self, slot: usize) -> Vec<ProviderId> {
        let mut out = Vec::new();
        let mut word_at = 0usize;
        let mut tokens = self.row_tokens(slot).iter();
        while let Some(&m) = tokens.next() {
            let run = ((m >> RUN_SHIFT) & RUN_MAX) as usize;
            if m & FILL_ONE != 0 {
                let start = word_at * ROW_WORD_BITS;
                let end = ((word_at + run) * ROW_WORD_BITS).min(self.providers);
                out.extend((start..end).map(|p| ProviderId(p as u32)));
            }
            word_at += run;
            let lits = (m & LIT_MASK) as usize;
            for _ in 0..lits {
                let w = *tokens.next().expect("validated stream");
                providers_in_word(w, word_at * ROW_WORD_BITS, self.providers, &mut out);
                word_at += 1;
            }
        }
        out
    }

    fn resident_bytes(&self) -> usize {
        self.stream.capacity() * 8 + self.offsets.capacity() * 4
    }
}

/// Incremental [`CompressedRows`] construction, one dense row at a
/// time.
#[derive(Debug)]
pub struct CompressedRowsBuilder {
    stream: Vec<u64>,
    offsets: Vec<u32>,
    providers: usize,
    words_per_row: usize,
}

impl CompressedRowsBuilder {
    /// An empty builder over the `providers` universe.
    pub fn new(providers: usize) -> Self {
        CompressedRowsBuilder {
            stream: Vec::new(),
            offsets: vec![0],
            providers,
            words_per_row: row_words(providers),
        }
    }

    /// Appends one dense row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `words_per_row` words.
    pub fn push_row(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.words_per_row, "mis-sized row");
        let mut i = 0usize;
        while i < row.len() {
            // Greedy: one fill run (of either polarity), then literals
            // until the next compressible run of 2+ identical fills. A
            // lone fill word inside literals stays literal — a marker
            // would cost the same word and fragment the stream.
            let fill_one = row[i] == !0u64;
            let mut run = 0u64;
            if row[i] == 0 || fill_one {
                let fill = row[i];
                while i < row.len() && row[i] == fill && run < RUN_MAX {
                    run += 1;
                    i += 1;
                }
            }
            let lit_start = i;
            while i < row.len() {
                let w = row[i];
                if (w == 0 || w == !0u64) && (i + 1 == row.len() || row[i + 1] == w) {
                    break;
                }
                i += 1;
            }
            let lits = (i - lit_start) as u64;
            self.stream.push(marker(fill_one, run, lits));
            self.stream.extend_from_slice(&row[lit_start..i]);
        }
        if self.words_per_row == 0 {
            // Unreachable (row_words >= 1) but keeps the invariant
            // explicit: every row owns at least one marker.
            self.stream.push(marker(false, 0, 0));
        }
        assert!(
            self.stream.len() <= u32::MAX as usize,
            "compressed stream exceeds the 32-bit offset space"
        );
        self.offsets.push(self.stream.len() as u32);
    }

    /// Seals the builder into an immutable store.
    pub fn finish(self) -> CompressedRows {
        let mut stream = self.stream;
        let mut offsets = self.offsets;
        stream.shrink_to_fit();
        offsets.shrink_to_fit();
        CompressedRows {
            stream,
            offsets,
            providers: self.providers,
            words_per_row: self.words_per_row,
        }
    }
}

/// The backend-tagged block the sharded serving layout holds: a closed
/// enum rather than a trait object, so the PIR path can demand the
/// dense words statically ([`as_dense`](Self::as_dense)) and `PartialEq`
/// / cloning stay trivially derivable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowBlock {
    /// Flat packed words (PIR-scannable).
    Dense(DenseRows),
    /// EWAH-compressed words (plaintext serve only).
    Compressed(CompressedRows),
}

impl RowBlock {
    /// Builds a block of the requested backend from a slot-major dense
    /// buffer (the transpose step always produces dense words first).
    ///
    /// # Panics
    ///
    /// Panics if `words` is ragged for the `providers` universe.
    pub fn build(backend: RowBackend, words: Vec<u64>, providers: usize) -> Self {
        match backend {
            RowBackend::Dense => RowBlock::Dense(DenseRows::from_words(words, providers)),
            RowBackend::Compressed => {
                RowBlock::Compressed(CompressedRows::from_dense_words(&words, providers))
            }
        }
    }

    /// Which backend this block physically uses.
    pub fn backend(&self) -> RowBackend {
        match self {
            RowBlock::Dense(_) => RowBackend::Dense,
            RowBlock::Compressed(_) => RowBackend::Compressed,
        }
    }

    /// The dense store, when the block physically is one. The oblivious
    /// scan path goes through here and nowhere else: a compressed block
    /// answers `None`, and the caller must refuse to scan rather than
    /// silently decompress (a decompression's memory traffic would
    /// depend on row content — exactly what obliviousness forbids).
    pub fn as_dense(&self) -> Option<&DenseRows> {
        match self {
            RowBlock::Dense(d) => Some(d),
            RowBlock::Compressed(_) => None,
        }
    }

    /// Decompresses the whole block back into a slot-major dense
    /// buffer — the copy-on-write rebuild path for dirty shards.
    pub fn to_dense_words(&self) -> Vec<u64> {
        match self {
            RowBlock::Dense(d) => d.words().to_vec(),
            RowBlock::Compressed(c) => {
                let wpr = c.words_per_row();
                let mut out = vec![0u64; c.rows() * wpr];
                for (slot, row) in out.chunks_exact_mut(wpr).enumerate() {
                    c.read_row_into(slot, row);
                }
                out
            }
        }
    }
}

impl RowStore for RowBlock {
    fn rows(&self) -> usize {
        match self {
            RowBlock::Dense(d) => d.rows(),
            RowBlock::Compressed(c) => c.rows(),
        }
    }

    fn providers(&self) -> usize {
        match self {
            RowBlock::Dense(d) => d.providers(),
            RowBlock::Compressed(c) => c.providers(),
        }
    }

    fn words_per_row(&self) -> usize {
        match self {
            RowBlock::Dense(d) => d.words_per_row(),
            RowBlock::Compressed(c) => c.words_per_row(),
        }
    }

    fn read_row_into(&self, slot: usize, out: &mut [u64]) {
        match self {
            RowBlock::Dense(d) => d.read_row_into(slot, out),
            RowBlock::Compressed(c) => c.read_row_into(slot, out),
        }
    }

    fn providers_in_slot(&self, slot: usize) -> Vec<ProviderId> {
        match self {
            RowBlock::Dense(d) => d.providers_in_slot(slot),
            RowBlock::Compressed(c) => c.providers_in_slot(slot),
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            RowBlock::Dense(d) => d.resident_bytes(),
            RowBlock::Compressed(c) => c.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_block(rng: &mut StdRng, rows: usize, providers: usize, density: f64) -> Vec<u64> {
        let wpr = row_words(providers);
        let mut words = vec![0u64; rows * wpr];
        for r in 0..rows {
            for p in 0..providers {
                if rng.gen_bool(density) {
                    words[r * wpr + p / 64] |= 1 << (p % 64);
                }
            }
        }
        words
    }

    fn assert_equivalent(words: &[u64], providers: usize) {
        let dense = DenseRows::from_words(words.to_vec(), providers);
        let comp = CompressedRows::from_dense_words(words, providers);
        assert_eq!(dense.rows(), comp.rows());
        assert_eq!(dense.words_per_row(), comp.words_per_row());
        let mut buf = vec![0u64; dense.words_per_row()];
        for slot in 0..dense.rows() {
            comp.read_row_into(slot, &mut buf);
            assert_eq!(buf, dense.row(slot), "slot {slot} roundtrip");
            assert_eq!(
                comp.providers_in_slot(slot),
                dense.providers_in_slot(slot),
                "slot {slot} decode"
            );
        }
    }

    #[test]
    fn compressed_equals_dense_across_densities() {
        let mut rng = StdRng::seed_from_u64(7);
        for density in [0.0, 0.001, 0.02, 0.3, 0.7, 1.0] {
            for providers in [1, 63, 64, 65, 200, 1000] {
                let words = random_block(&mut rng, 17, providers, density);
                assert_equivalent(&words, providers);
            }
        }
    }

    #[test]
    fn pathological_patterns_roundtrip() {
        let providers = 64 * 6;
        let wpr = row_words(providers);
        let rows: Vec<Vec<u64>> = vec![
            vec![0; wpr],                                 // all zero
            vec![!0; wpr],                                // all ones
            (0..wpr as u64).map(|i| i % 2).collect(),     // alternating
            vec![0, !0, 0, !0, 0, !0],                    // fill flip-flop
            vec![0xdead_beef; wpr],                       // all literal
            vec![0, 0, 0xdead_beef, !0, !0, 0x0bad_f00d], // mixed runs
        ];
        let words: Vec<u64> = rows.concat();
        assert_equivalent(&words, providers);
    }

    #[test]
    fn sparse_rows_compress_by_roughly_inverse_density() {
        let mut rng = StdRng::seed_from_u64(8);
        // ~8 set bits over 10 000 providers per row, paper-like skew.
        let providers = 10_000;
        let wpr = row_words(providers);
        let rows = 512;
        let mut words = vec![0u64; rows * wpr];
        for r in 0..rows {
            for _ in 0..8 {
                let p = rng.gen_range(0..providers);
                words[r * wpr + p / 64] |= 1 << (p % 64);
            }
        }
        let dense = DenseRows::from_words(words.clone(), providers);
        let comp = CompressedRows::from_dense_words(&words, providers);
        let ratio = comp.resident_bytes() as f64 / dense.resident_bytes() as f64;
        assert!(ratio < 0.2, "compression ratio only {ratio:.3}");
        assert_equivalent(&words, providers);
    }

    #[test]
    fn worst_case_stream_stays_within_twice_dense() {
        // Alternate literal and zero words — maximal marker overhead.
        let providers = 64 * 8;
        let row: Vec<u64> = (0..8u64)
            .map(|i| if i % 2 == 0 { 0x5 } else { 0 })
            .collect();
        let comp = CompressedRows::from_dense_words(&row, providers);
        assert!(comp.stream().len() <= 2 * row.len());
        assert_equivalent(&row, providers);
    }

    #[test]
    fn builder_matches_bulk_compression() {
        let mut rng = StdRng::seed_from_u64(9);
        let providers = 300;
        let wpr = row_words(providers);
        let words = random_block(&mut rng, 9, providers, 0.1);
        let bulk = CompressedRows::from_dense_words(&words, providers);
        let mut builder = CompressedRowsBuilder::new(providers);
        for row in words.chunks_exact(wpr) {
            builder.push_row(row);
        }
        assert_eq!(builder.finish(), bulk);
    }

    #[test]
    fn from_parts_validates_structure() {
        let words = vec![0u64, 3, 0, 0];
        let comp = CompressedRows::from_dense_words(&words, 128);
        let ok = CompressedRows::from_parts(comp.stream().to_vec(), comp.offsets().to_vec(), 128)
            .unwrap();
        assert_eq!(ok, comp);
        // Truncated stream: the last offset no longer matches.
        let bad = CompressedRows::from_parts(
            comp.stream()[..comp.stream().len() - 1].to_vec(),
            comp.offsets().to_vec(),
            128,
        );
        assert!(bad.is_err());
        // A marker promising literals beyond the row.
        let bad = CompressedRows::from_parts(vec![marker(false, 0, 9)], vec![0, 1], 64);
        assert!(bad.is_err());
        // Coverage shortfall.
        let bad = CompressedRows::from_parts(vec![marker(false, 1, 0)], vec![0, 1], 128);
        assert!(bad.is_err());
    }

    #[test]
    fn row_block_dispatches_and_guards_the_dense_path() {
        let words = vec![0b101u64, 0, !0, 7];
        let dense = RowBlock::build(RowBackend::Dense, words.clone(), 100);
        let comp = RowBlock::build(RowBackend::Compressed, words.clone(), 100);
        assert_eq!(dense.backend(), RowBackend::Dense);
        assert_eq!(comp.backend(), RowBackend::Compressed);
        assert!(dense.as_dense().is_some());
        assert!(comp.as_dense().is_none());
        assert_eq!(dense.to_dense_words(), words);
        assert_eq!(comp.to_dense_words(), words);
        for slot in 0..2 {
            assert_eq!(comp.providers_in_slot(slot), dense.providers_in_slot(slot));
        }
        assert!(comp.resident_bytes() > 0);
    }

    #[test]
    fn empty_universe_has_well_formed_rows() {
        let dense = RowBlock::build(RowBackend::Dense, vec![0, 0], 0);
        let comp = RowBlock::build(RowBackend::Compressed, vec![0, 0], 0);
        assert_eq!(dense.rows(), 2);
        assert_eq!(comp.rows(), 2);
        assert!(comp.providers_in_slot(1).is_empty());
    }
}
