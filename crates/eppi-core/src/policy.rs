//! β-calculation policies (§III-B of the paper).
//!
//! Randomized publication flips a provider's `0` cell for owner `t_j` to a
//! published `1` with probability `β_j`. The amount of resulting false
//! positives determines whether the owner's privacy requirement
//! `fp_j ≥ ε_j` is met. The paper proposes three policies mapping
//! `(σ_j, ε_j, m)` to `β_j` with different quantitative guarantees:
//!
//! * [`BasicPolicy`] — expectation-based (Eq. 3): meets the requirement
//!   with only ~50% probability.
//! * [`IncrementedPolicy`] — adds a constant `Δ` (Eq. 4): better but with
//!   no direct control of the success ratio.
//! * [`ChernoffPolicy`] — Chernoff-bound-based (Eq. 5, Theorem 3.1):
//!   statistically guarantees the requirement with configurable success
//!   ratio `γ`.
//!
//! A *raw* β of `1` or more marks a **common identity** (§III-B.2): the
//! identity appears in so many providers that even publishing every
//! negative as a false positive cannot reach `ε_j`. Common identities are
//! handled by identity mixing ([`crate::mixing`]).

use crate::error::EppiError;
use crate::model::Epsilon;
use serde::{Deserialize, Serialize};

/// The expectation-based publishing probability of Eq. 3:
/// `β_b = [(σ⁻¹ − 1)(ε⁻¹ − 1)]⁻¹`.
///
/// Degenerate inputs follow the limits of the formula: `σ = 0` or `ε = 0`
/// yield `0`; `σ = 1` or `ε = 1` yield `+∞` (a common identity /
/// broadcast demand).
pub fn beta_basic(sigma: f64, eps: Epsilon) -> f64 {
    let e = eps.value();
    if sigma <= 0.0 || e <= 0.0 {
        return 0.0;
    }
    if sigma >= 1.0 || e >= 1.0 {
        return f64::INFINITY;
    }
    let denom = (1.0 / sigma - 1.0) * (1.0 / e - 1.0);
    if denom <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / denom
    }
}

/// A policy computing the per-identity publishing probability `β_j`.
///
/// Implementations must be monotonically non-decreasing in both `σ` and
/// `ε`; [`sigma_threshold`](BetaPolicy::sigma_threshold) relies on this to
/// bisect for the common-identity frequency threshold `σ'`.
pub trait BetaPolicy {
    /// The raw (unclamped) probability `β*`. Values `≥ 1` (including
    /// `+∞`) mark the identity as *common* for this `(ε, m)`.
    fn raw_beta(&self, sigma: f64, eps: Epsilon, m: usize) -> f64;

    /// The effective publishing probability, clamped into `\[0, 1\]`.
    fn beta(&self, sigma: f64, eps: Epsilon, m: usize) -> f64 {
        self.raw_beta(sigma, eps, m).clamp(0.0, 1.0)
    }

    /// The frequency threshold `σ'` above which `β* ≥ 1` — i.e. the
    /// smallest relative frequency at which an identity with privacy
    /// degree `ε` counts as common (used by the CountBelow stage of the
    /// construction protocol, Alg. 1 line 2).
    ///
    /// The default implementation bisects `raw_beta` over `σ ∈ \[0, 1\]`;
    /// policies with a closed form override it.
    fn sigma_threshold(&self, eps: Epsilon, m: usize) -> f64 {
        if self.raw_beta(0.0, eps, m) >= 1.0 {
            return 0.0;
        }
        if self.raw_beta(1.0, eps, m) < 1.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.raw_beta(mid, eps, m) >= 1.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Short, stable policy name for reports.
    fn name(&self) -> &'static str;
}

/// The basic expectation-based policy `β_b` (Eq. 3).
///
/// Sets β so the *expected* number of false positives among the
/// `m(1 − σ)` negative providers is exactly `ε · m(1 − σ)`
/// — which is exceeded only about half the time.
///
/// ```
/// use eppi_core::policy::{BasicPolicy, BetaPolicy};
/// use eppi_core::model::Epsilon;
/// let beta = BasicPolicy.beta(0.5, Epsilon::new(0.5)?, 1000);
/// assert!((beta - 1.0).abs() < 1e-12); // σ=ε=0.5 ⇒ β_b = 1
/// # Ok::<(), eppi_core::error::EppiError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicPolicy;

impl BetaPolicy for BasicPolicy {
    fn raw_beta(&self, sigma: f64, eps: Epsilon, _m: usize) -> f64 {
        beta_basic(sigma, eps)
    }

    fn sigma_threshold(&self, eps: Epsilon, _m: usize) -> f64 {
        // β_b = 1  ⇔  σ' = 1 − ε.
        1.0 - eps.value()
    }

    fn name(&self) -> &'static str {
        "basic"
    }
}

/// The incremented expectation-based policy `β_d = β_b + Δ` (Eq. 4).
///
/// The constant increment raises the success ratio above 50%, but the
/// paper notes there is no direct connection between `Δ` and the achieved
/// ratio — the motivation for [`ChernoffPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementedPolicy {
    delta: f64,
}

impl IncrementedPolicy {
    /// Creates the policy with increment `Δ`.
    ///
    /// # Errors
    ///
    /// Returns [`EppiError::InvalidPolicyParameter`] unless `Δ` is finite
    /// and in `\[0, 1\]`.
    pub fn new(delta: f64) -> Result<Self, EppiError> {
        if delta.is_finite() && (0.0..=1.0).contains(&delta) {
            Ok(IncrementedPolicy { delta })
        } else {
            Err(EppiError::InvalidPolicyParameter {
                name: "delta",
                value: delta,
                expected: "[0, 1]",
            })
        }
    }

    /// The configured increment `Δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

impl BetaPolicy for IncrementedPolicy {
    fn raw_beta(&self, sigma: f64, eps: Epsilon, _m: usize) -> f64 {
        let b = beta_basic(sigma, eps);
        if sigma <= 0.0 {
            // An absent identity needs no false positives at all.
            0.0
        } else {
            b + self.delta
        }
    }

    fn sigma_threshold(&self, eps: Epsilon, _m: usize) -> f64 {
        // β_b + Δ = 1 ⇔ β_b = 1 − Δ; with A = ε⁻¹ − 1:
        // σ' = (1−Δ)A / ((1−Δ)A + 1).
        let e = eps.value();
        if self.delta >= 1.0 {
            return 0.0;
        }
        if e <= 0.0 {
            return 1.0;
        }
        if e >= 1.0 {
            return 0.0;
        }
        let a = 1.0 / e - 1.0;
        let k = (1.0 - self.delta) * a;
        k / (k + 1.0)
    }

    fn name(&self) -> &'static str {
        "inc-exp"
    }
}

/// The Chernoff-bound-based policy `β_c` (Eq. 5 / Theorem 3.1).
///
/// With `G = ln(1/(1−γ)) / ((1−σ) m)`,
/// `β_c = β_b + G + sqrt(G² + 2 β_b G)` statistically guarantees
/// `fp_j ≥ ε_j` with probability at least the configured success ratio
/// `γ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChernoffPolicy {
    gamma: f64,
}

impl ChernoffPolicy {
    /// Creates the policy with target success ratio `γ`.
    ///
    /// # Errors
    ///
    /// Returns [`EppiError::InvalidPolicyParameter`] unless
    /// `γ ∈ (0.5, 1)` — the theorem requires a ratio strictly above the
    /// expectation baseline and strictly below certainty.
    pub fn new(gamma: f64) -> Result<Self, EppiError> {
        if gamma.is_finite() && gamma > 0.5 && gamma < 1.0 {
            Ok(ChernoffPolicy { gamma })
        } else {
            Err(EppiError::InvalidPolicyParameter {
                name: "gamma",
                value: gamma,
                expected: "(0.5, 1)",
            })
        }
    }

    /// The configured success ratio `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl BetaPolicy for ChernoffPolicy {
    fn raw_beta(&self, sigma: f64, eps: Epsilon, m: usize) -> f64 {
        if sigma <= 0.0 || eps.value() <= 0.0 {
            // No records, or no privacy requirement: noise is pure cost.
            return 0.0;
        }
        let b = beta_basic(sigma, eps);
        if !b.is_finite() {
            return f64::INFINITY;
        }
        if m == 0 || sigma >= 1.0 {
            return f64::INFINITY;
        }
        let g = (1.0 / (1.0 - self.gamma)).ln() / ((1.0 - sigma) * m as f64);
        b + g + (g * g + 2.0 * b * g).sqrt()
    }

    fn name(&self) -> &'static str {
        "chernoff"
    }
}

/// A serializable, dynamically-dispatchable choice among the three paper
/// policies — convenient for experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// [`BasicPolicy`].
    Basic,
    /// [`IncrementedPolicy`] with increment `Δ`.
    Incremented {
        /// The increment `Δ`.
        delta: f64,
    },
    /// [`ChernoffPolicy`] with success ratio `γ`.
    Chernoff {
        /// The target success ratio `γ`.
        gamma: f64,
    },
}

impl PolicyKind {
    /// Validates the embedded parameters.
    ///
    /// # Errors
    ///
    /// Propagates the parameter errors of the concrete policy
    /// constructors.
    pub fn validate(self) -> Result<(), EppiError> {
        match self {
            PolicyKind::Basic => Ok(()),
            PolicyKind::Incremented { delta } => IncrementedPolicy::new(delta).map(|_| ()),
            PolicyKind::Chernoff { gamma } => ChernoffPolicy::new(gamma).map(|_| ()),
        }
    }
}

impl Default for PolicyKind {
    /// The paper's default effectiveness configuration: Chernoff with
    /// `γ = 0.9`.
    fn default() -> Self {
        PolicyKind::Chernoff { gamma: 0.9 }
    }
}

impl BetaPolicy for PolicyKind {
    fn raw_beta(&self, sigma: f64, eps: Epsilon, m: usize) -> f64 {
        match *self {
            PolicyKind::Basic => BasicPolicy.raw_beta(sigma, eps, m),
            PolicyKind::Incremented { delta } => {
                IncrementedPolicy { delta }.raw_beta(sigma, eps, m)
            }
            PolicyKind::Chernoff { gamma } => ChernoffPolicy { gamma }.raw_beta(sigma, eps, m),
        }
    }

    fn sigma_threshold(&self, eps: Epsilon, m: usize) -> f64 {
        match *self {
            PolicyKind::Basic => BasicPolicy.sigma_threshold(eps, m),
            PolicyKind::Incremented { delta } => {
                IncrementedPolicy { delta }.sigma_threshold(eps, m)
            }
            PolicyKind::Chernoff { gamma } => ChernoffPolicy { gamma }.sigma_threshold(eps, m),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            PolicyKind::Basic => "basic",
            PolicyKind::Incremented { .. } => "inc-exp",
            PolicyKind::Chernoff { .. } => "chernoff",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn basic_matches_equation_3() {
        // σ=0.1, ε=0.5 ⇒ β_b = 1/((10−1)(2−1)) = 1/9.
        let b = BasicPolicy.raw_beta(0.1, eps(0.5), 1000);
        assert!((b - 1.0 / 9.0).abs() < 1e-12);
        // σ=0.5, ε=0.8 ⇒ β_b = 1/((2−1)(1.25−1)) = 4.
        let b = BasicPolicy.raw_beta(0.5, eps(0.8), 1000);
        assert!((b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn basic_degenerate_cases() {
        assert_eq!(BasicPolicy.raw_beta(0.0, eps(0.5), 100), 0.0);
        assert_eq!(BasicPolicy.raw_beta(0.5, eps(0.0), 100), 0.0);
        assert_eq!(BasicPolicy.raw_beta(1.0, eps(0.5), 100), f64::INFINITY);
        assert_eq!(BasicPolicy.raw_beta(0.5, eps(1.0), 100), f64::INFINITY);
    }

    #[test]
    fn basic_sigma_threshold_closed_form() {
        for e in [0.1, 0.5, 0.8] {
            let s = BasicPolicy.sigma_threshold(eps(e), 10_000);
            assert!((s - (1.0 - e)).abs() < 1e-9, "ε={e}: got {s}");
            // At the threshold the raw β reaches (approximately) 1.
            let b = BasicPolicy.raw_beta(s + 1e-9, eps(e), 10_000);
            assert!(b >= 1.0 - 1e-6, "ε={e}: β at σ' = {b}");
        }
    }

    #[test]
    fn incremented_adds_delta() {
        let p = IncrementedPolicy::new(0.02).unwrap();
        let b = p.raw_beta(0.1, eps(0.5), 1000);
        assert!((b - (1.0 / 9.0 + 0.02)).abs() < 1e-12);
        assert_eq!(p.raw_beta(0.0, eps(0.5), 1000), 0.0);
    }

    #[test]
    fn incremented_threshold_matches_bisection() {
        let p = IncrementedPolicy::new(0.05).unwrap();
        for e in [0.2, 0.5, 0.9] {
            let closed = p.sigma_threshold(eps(e), 10_000);
            // Reference: generic bisection from the trait default.
            struct Ref(IncrementedPolicy);
            impl BetaPolicy for Ref {
                fn raw_beta(&self, s: f64, e: Epsilon, m: usize) -> f64 {
                    self.0.raw_beta(s, e, m)
                }
                fn name(&self) -> &'static str {
                    "ref"
                }
            }
            let bisected = Ref(p).sigma_threshold(eps(e), 10_000);
            assert!(
                (closed - bisected).abs() < 1e-6,
                "ε={e}: {closed} vs {bisected}"
            );
        }
    }

    #[test]
    fn incremented_rejects_bad_delta() {
        assert!(IncrementedPolicy::new(-0.1).is_err());
        assert!(IncrementedPolicy::new(1.5).is_err());
        assert!(IncrementedPolicy::new(f64::NAN).is_err());
    }

    #[test]
    fn chernoff_dominates_basic() {
        let p = ChernoffPolicy::new(0.9).unwrap();
        for sigma in [0.01, 0.1, 0.3, 0.6] {
            for e in [0.1, 0.5, 0.8] {
                let bc = p.raw_beta(sigma, eps(e), 10_000);
                let bb = BasicPolicy.raw_beta(sigma, eps(e), 10_000);
                assert!(bc > bb, "σ={sigma} ε={e}: chernoff {bc} ≤ basic {bb}");
            }
        }
    }

    #[test]
    fn chernoff_matches_equation_5() {
        let gamma = 0.9;
        let p = ChernoffPolicy::new(gamma).unwrap();
        let (sigma, e, m) = (0.1, 0.5, 10_000usize);
        let bb = beta_basic(sigma, eps(e));
        let g = (1.0 / (1.0 - gamma)).ln() / ((1.0 - sigma) * m as f64);
        let expected = bb + g + (g * g + 2.0 * bb * g).sqrt();
        let got = p.raw_beta(sigma, eps(e), m);
        assert!((got - expected).abs() < 1e-15);
    }

    #[test]
    fn chernoff_gap_shrinks_with_m() {
        // G → 0 as m grows, so β_c → β_b.
        let p = ChernoffPolicy::new(0.9).unwrap();
        let bb = beta_basic(0.1, eps(0.5));
        let small = p.raw_beta(0.1, eps(0.5), 100) - bb;
        let large = p.raw_beta(0.1, eps(0.5), 100_000) - bb;
        assert!(small > large);
        assert!(large > 0.0);
    }

    #[test]
    fn chernoff_rejects_bad_gamma() {
        assert!(ChernoffPolicy::new(0.5).is_err());
        assert!(ChernoffPolicy::new(1.0).is_err());
        assert!(ChernoffPolicy::new(0.0).is_err());
        assert!(ChernoffPolicy::new(f64::NAN).is_err());
        assert!(ChernoffPolicy::new(0.99).is_ok());
    }

    #[test]
    fn raw_beta_monotone_in_sigma_and_eps() {
        let policies: Vec<Box<dyn BetaPolicy>> = vec![
            Box::new(BasicPolicy),
            Box::new(IncrementedPolicy::new(0.02).unwrap()),
            Box::new(ChernoffPolicy::new(0.9).unwrap()),
        ];
        for p in &policies {
            let mut prev = -1.0;
            for i in 1..20 {
                let sigma = i as f64 / 20.0;
                let b = p.raw_beta(sigma, eps(0.5), 1000);
                assert!(b >= prev, "{}: not monotone in σ at {sigma}", p.name());
                prev = b;
            }
            let mut prev = -1.0;
            for i in 1..20 {
                let e = i as f64 / 20.0;
                let b = p.raw_beta(0.2, eps(e), 1000);
                assert!(b >= prev, "{}: not monotone in ε at {e}", p.name());
                prev = b;
            }
        }
    }

    #[test]
    fn policy_kind_dispatch_matches_concrete() {
        let k = PolicyKind::Chernoff { gamma: 0.9 };
        let c = ChernoffPolicy::new(0.9).unwrap();
        assert_eq!(
            k.raw_beta(0.1, eps(0.5), 1000),
            c.raw_beta(0.1, eps(0.5), 1000)
        );
        assert_eq!(k.name(), "chernoff");
        assert_eq!(PolicyKind::Basic.name(), "basic");
        assert_eq!(PolicyKind::Incremented { delta: 0.02 }.name(), "inc-exp");
        assert!(PolicyKind::Chernoff { gamma: 0.2 }.validate().is_err());
        assert!(PolicyKind::default().validate().is_ok());
    }

    #[test]
    fn beta_is_clamped() {
        // σ=ε=0.9 gives a huge raw β; clamped β must be 1.
        let raw = BasicPolicy.raw_beta(0.9, eps(0.9), 100);
        assert!(raw > 1.0);
        assert_eq!(BasicPolicy.beta(0.9, eps(0.9), 100), 1.0);
    }

    #[test]
    fn chernoff_threshold_below_basic_threshold() {
        // Chernoff β is larger, so it crosses 1 at a smaller σ.
        let c = ChernoffPolicy::new(0.9).unwrap();
        let tb = BasicPolicy.sigma_threshold(eps(0.5), 10_000);
        let tc = c.sigma_threshold(eps(0.5), 10_000);
        assert!(tc < tb, "chernoff σ'={tc} should be below basic σ'={tb}");
        assert!(tc > 0.0);
    }
}
