//! Analytical predictions for the randomized publication process.
//!
//! The publication of one identity is a sum of `T = m(1 − σ)` Bernoulli
//! trials (Appendix A-A of the paper). This module computes the *exact*
//! success probability `p_p = Pr[fp_j ≥ ε_j]` from the Binomial law, and
//! the Chernoff lower bound of Theorem 3.1 — so experiments can be
//! checked against theory, not just against themselves.

use crate::model::Epsilon;
use crate::policy::BetaPolicy;

/// Natural log of the Binomial pmf `P(X = k)` for `X ~ B(n, p)`,
/// computed stably through `ln Γ` (Stirling-series `ln_gamma`).
fn ln_binom_pmf(n: u64, k: u64, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p >= 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()
}

/// `ln C(n, k)` via `ln Γ`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (|error| < 1e-10 over
/// the ranges used here).
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Exact upper-tail probability `P(X ≥ k)` for `X ~ B(n, p)`.
///
/// Sums the pmf from the tail; `O(n)` but numerically stable in log
/// space, fine for the evaluation's `n ≤ 25,000`.
pub fn binomial_tail_ge(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let mut total = 0.0f64;
    for x in k..=n {
        total += ln_binom_pmf(n, x, p).exp();
        // The pmf decays fast past the mean; stop once negligible.
        if x as f64 > n as f64 * p && ln_binom_pmf(n, x, p) < -40.0 {
            break;
        }
    }
    total.min(1.0)
}

/// The number of false positives needed so that `fp_j ≥ ε`:
/// `X / (X + σm) ≥ ε ⇔ X ≥ σm·ε/(1 − ε)` (Appendix A-A).
///
/// Returns `None` when ε = 1 and the identity has any records (no
/// finite X suffices short of... X can never make fp = 1 with true
/// positives present, yet broadcast is still the best achievable).
pub fn required_false_positives(true_frequency: u64, eps: Epsilon) -> Option<u64> {
    let e = eps.value();
    if true_frequency == 0 || e <= 0.0 {
        return Some(0);
    }
    if e >= 1.0 {
        return None;
    }
    Some(
        (true_frequency as f64 * e / (1.0 - e) - 1e-9)
            .ceil()
            .max(0.0) as u64,
    )
}

/// The *exact* success probability `p_p = Pr[fp_j ≥ ε]` of publishing
/// one identity with probability `beta` in an `m`-provider network where
/// the identity truly appears `f` times.
pub fn exact_success_probability(m: u64, f: u64, eps: Epsilon, beta: f64) -> f64 {
    match required_false_positives(f, eps) {
        None => 0.0,
        Some(0) => 1.0,
        Some(k) => binomial_tail_ge(m - f, k, beta.clamp(0.0, 1.0)),
    }
}

/// The Chernoff lower bound of Theorem 3.1 applied to an arbitrary β:
/// `p_p ≥ 1 − exp(−δ² T β / 2)` with `δ = 1 − β_b/β`, `T = m − f`.
///
/// Returns 0 when `β ≤ β_b` (the bound is vacuous below the mean).
pub fn chernoff_lower_bound(m: u64, f: u64, eps: Epsilon, beta: f64) -> f64 {
    let sigma = f as f64 / m as f64;
    let bb = crate::policy::beta_basic(sigma, eps);
    if !bb.is_finite() || beta <= bb || beta <= 0.0 {
        return 0.0;
    }
    let t = (m - f) as f64;
    let delta = 1.0 - bb / beta;
    1.0 - (-delta * delta * t * beta / 2.0).exp()
}

/// Predicts the success probability of a policy at one configuration —
/// the theoretical curve behind Fig. 5.
pub fn predicted_success<P: BetaPolicy>(policy: &P, m: u64, f: u64, eps: Epsilon) -> f64 {
    let sigma = f as f64 / m as f64;
    let beta = policy.beta(sigma, eps, m as usize);
    exact_success_probability(m, f, eps, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BasicPolicy, ChernoffPolicy};

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let fact: f64 = (1..=n).map(|i| i as f64).product();
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9,
                "Γ({n}+1)"
            );
        }
    }

    #[test]
    fn binomial_tail_sanity() {
        // B(4, 0.5): P(X ≥ 2) = 11/16.
        assert!((binomial_tail_ge(4, 2, 0.5) - 11.0 / 16.0).abs() < 1e-9);
        assert_eq!(binomial_tail_ge(10, 0, 0.3), 1.0);
        assert_eq!(binomial_tail_ge(10, 11, 0.3), 0.0);
        assert!((binomial_tail_ge(1, 1, 0.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn binomial_tail_matches_monte_carlo() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (n, k, p) = (200u64, 30u64, 0.12f64);
        let trials = 40_000;
        let hits = (0..trials)
            .filter(|_| (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64 >= k)
            .count();
        let emp = hits as f64 / trials as f64;
        let exact = binomial_tail_ge(n, k, p);
        assert!(
            (emp - exact).abs() < 0.01,
            "empirical {emp} vs exact {exact}"
        );
    }

    #[test]
    fn required_false_positives_formula() {
        let e = Epsilon::saturating(0.5);
        // fp ≥ 0.5 with 10 true positives needs X ≥ 10.
        assert_eq!(required_false_positives(10, e), Some(10));
        // ε = 0.8: X ≥ 4·f.
        assert_eq!(
            required_false_positives(5, Epsilon::saturating(0.8)),
            Some(20)
        );
        assert_eq!(required_false_positives(0, e), Some(0));
        assert_eq!(required_false_positives(3, Epsilon::ZERO), Some(0));
        assert_eq!(required_false_positives(3, Epsilon::ONE), None);
    }

    #[test]
    fn basic_policy_predicts_near_half() {
        // The expectation-based policy should land near 0.5 for moderate
        // parameters — the Fig. 5 "basic ≈ 0.5" line, from theory.
        let p = predicted_success(&BasicPolicy, 10_000, 100, Epsilon::saturating(0.5));
        assert!((0.35..0.65).contains(&p), "basic predicted {p}");
    }

    #[test]
    fn chernoff_policy_prediction_exceeds_gamma() {
        let gamma = 0.9;
        let pol = ChernoffPolicy::new(gamma).unwrap();
        for f in [10u64, 100, 500] {
            let p = predicted_success(&pol, 10_000, f, Epsilon::saturating(0.5));
            assert!(p >= gamma, "f={f}: predicted {p} < γ");
        }
    }

    #[test]
    fn chernoff_bound_is_a_lower_bound_on_exact() {
        let eps = Epsilon::saturating(0.5);
        for f in [20u64, 200] {
            for beta_scale in [1.2, 1.5, 2.0] {
                let sigma = f as f64 / 2000.0;
                let beta = (crate::policy::beta_basic(sigma, eps) * beta_scale).min(1.0);
                let exact = exact_success_probability(2000, f, eps, beta);
                let bound = chernoff_lower_bound(2000, f, eps, beta);
                assert!(
                    bound <= exact + 1e-9,
                    "f={f} scale={beta_scale}: bound {bound} exceeds exact {exact}"
                );
            }
        }
    }

    #[test]
    fn theorem_3_1_gamma_guarantee_holds_in_theory() {
        // The β_c of Eq. 5 must give an exact success probability ≥ γ —
        // Theorem 3.1 verified against the exact Binomial law.
        let gamma = 0.9;
        let pol = ChernoffPolicy::new(gamma).unwrap();
        let eps = Epsilon::saturating(0.5);
        for (m, f) in [(1000u64, 10u64), (1000, 100), (10_000, 500), (100, 10)] {
            let beta = pol.beta(f as f64 / m as f64, eps, m as usize);
            if beta >= 1.0 {
                continue; // common identity: handled by mixing.
            }
            let p = exact_success_probability(m, f, eps, beta);
            assert!(p >= gamma, "m={m} f={f}: exact p_p {p} < γ");
        }
    }
}
