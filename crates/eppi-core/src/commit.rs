//! Domain-separated word-level hash commitments (DESIGN.md §16).
//!
//! Every subsystem that needs to *bind* a packed bit-vector — the audit
//! layer committing to published columns and publication decisions
//! (`eppi-audit`), the durability layer stamping the audit trailer it
//! persists next to an epoch — shares this one helper instead of
//! growing its own ad-hoc mixer. The construction is a 4×64-bit sponge
//! over the splitmix64 finalizer: words are absorbed into rotating
//! lanes and a cross-lane permutation runs every rate-full block and
//! between logical fields, so `absorb_words(&[a, b])` and two separate
//! single-word fields produce different digests.
//!
//! This is a *documented stand-in* for a standardized hash (the
//! offline build vendors no cryptographic hash crate): collision
//! resistance is heuristic, not reduction-backed, which is the same
//! trade the deterministic publication coin already makes. What the
//! repo relies on — and what the tests pin — is (a) determinism,
//! (b) domain separation, and (c) strict sensitivity to every absorbed
//! word, byte, and field boundary.

use std::fmt;

/// The splitmix64 increment; also used as the per-round constant.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer — the same mixer the deterministic
/// publication coin uses, so the whole repo leans on one primitive.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 256-bit digest: the output of [`Hasher256`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest256(pub [u64; 4]);

impl Digest256 {
    /// Serializes the digest as 32 little-endian bytes (the durability
    /// codec's wire form).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (chunk, lane) in out.chunks_exact_mut(8).zip(self.0) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        out
    }

    /// Rebuilds a digest from its 32-byte wire form.
    pub fn from_bytes(bytes: &[u8; 32]) -> Digest256 {
        let mut lanes = [0u64; 4];
        for (lane, chunk) in lanes.iter_mut().zip(bytes.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Digest256(lanes)
    }
}

impl fmt::Display for Digest256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lane in self.0 {
            write!(f, "{lane:016x}")?;
        }
        Ok(())
    }
}

/// Incremental word-level hasher producing a [`Digest256`].
///
/// Created with a domain string ([`Hasher256::new`]); absorb whole
/// words ([`absorb_u64`](Hasher256::absorb_u64),
/// [`absorb_words`](Hasher256::absorb_words)) or byte strings
/// ([`absorb_bytes`](Hasher256::absorb_bytes)); finish with
/// [`finalize`](Hasher256::finalize). Every absorb call is a framed
/// field: the word count is folded in, so moving a word across a call
/// boundary changes the digest.
#[derive(Debug, Clone)]
pub struct Hasher256 {
    state: [u64; 4],
    /// Words absorbed since the last permutation (0..4).
    lane: usize,
    /// Total words absorbed, folded in at finalization.
    absorbed: u64,
}

impl Hasher256 {
    /// Starts a hasher bound to `domain`: hashers with different
    /// domains never collide by construction (the domain bytes are the
    /// first framed field).
    pub fn new(domain: &str) -> Hasher256 {
        let mut h = Hasher256 {
            // Fractional parts of √2, √3, √5, √7 — "nothing up my
            // sleeve" initial lanes (SHA-256's H0..H3 seeds).
            state: [
                0x6a09_e667_f3bc_c908,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
                0xa54f_f53a_5f1d_36f1,
            ],
            lane: 0,
            absorbed: 0,
        };
        h.absorb_bytes(domain.as_bytes());
        h
    }

    /// The cross-lane permutation: four rounds of splitmix finalization
    /// with rotation-coupled lane feedback.
    fn permute(&mut self) {
        let [mut a, mut b, mut c, mut d] = self.state;
        for round in 1..=4u64 {
            a = mix64(a.wrapping_add(b).wrapping_add(GAMMA.wrapping_mul(round)));
            b = mix64(b ^ c.rotate_left(17));
            c = mix64(c.wrapping_add(d.rotate_left(43)));
            d = mix64(d ^ a.rotate_left(29));
        }
        self.state = [a, b, c, d];
        self.lane = 0;
    }

    /// Absorbs one word into the next lane, permuting on a full rate
    /// block.
    pub fn absorb_u64(&mut self, word: u64) {
        self.state[self.lane] ^= word;
        self.absorbed = self.absorbed.wrapping_add(1);
        self.lane += 1;
        if self.lane == 4 {
            self.permute();
        }
    }

    /// Absorbs a packed word slice as one framed field: the length is
    /// absorbed first, so adjacent fields cannot slide into each other.
    pub fn absorb_words(&mut self, words: &[u64]) {
        self.absorb_u64(words.len() as u64);
        for &w in words {
            self.absorb_u64(w);
        }
    }

    /// Absorbs a byte string as one framed field (length prefix, then
    /// little-endian zero-padded words).
    pub fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.absorb_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.absorb_u64(u64::from_le_bytes(word));
        }
    }

    /// Finishes the sponge: folds the absorbed-word count in, runs two
    /// final permutations (padding/extension separation), and squeezes
    /// the state out as the digest.
    pub fn finalize(mut self) -> Digest256 {
        let total = self.absorbed;
        self.absorb_u64(total ^ GAMMA);
        self.permute();
        self.permute();
        Digest256(self.state)
    }
}

/// One-shot convenience: digest a packed word slice under `domain`.
pub fn digest_words(domain: &str, words: &[u64]) -> Digest256 {
    let mut h = Hasher256::new(domain);
    h.absorb_words(words);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_domain_separated() {
        let a = digest_words("eppi.test.a", &[1, 2, 3]);
        let b = digest_words("eppi.test.a", &[1, 2, 3]);
        let c = digest_words("eppi.test.b", &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c, "domains must separate");
    }

    #[test]
    fn sensitive_to_every_word_and_position() {
        let base = digest_words("eppi.test", &[7, 8, 9, 10, 11]);
        for i in 0..5 {
            for bit in [0u32, 31, 63] {
                let mut words = [7u64, 8, 9, 10, 11];
                words[i] ^= 1 << bit;
                assert_ne!(
                    base,
                    digest_words("eppi.test", &words),
                    "word {i} bit {bit}"
                );
            }
        }
        // Swapping equal-length neighbours changes the digest.
        assert_ne!(
            digest_words("eppi.test", &[8, 7, 9, 10, 11]),
            base,
            "order must matter"
        );
    }

    #[test]
    fn field_framing_prevents_sliding() {
        let mut a = Hasher256::new("eppi.frame");
        a.absorb_words(&[1, 2]);
        a.absorb_words(&[3]);
        let mut b = Hasher256::new("eppi.frame");
        b.absorb_words(&[1]);
        b.absorb_words(&[2, 3]);
        assert_ne!(a.finalize(), b.finalize(), "field boundaries must bind");
    }

    #[test]
    fn byte_lengths_bind() {
        let mut a = Hasher256::new("eppi.bytes");
        a.absorb_bytes(b"abc");
        let mut b = Hasher256::new("eppi.bytes");
        b.absorb_bytes(b"abc\0");
        assert_ne!(a.finalize(), b.finalize(), "zero-padding must not collide");
    }

    #[test]
    fn digest_roundtrips_through_bytes() {
        let d = digest_words("eppi.rt", &[0xdead_beef, 42]);
        assert_eq!(Digest256::from_bytes(&d.to_bytes()), d);
        assert_eq!(format!("{d}").len(), 64);
    }

    #[test]
    fn empty_input_still_binds_domain() {
        assert_ne!(
            digest_words("eppi.empty.a", &[]),
            digest_words("eppi.empty.b", &[])
        );
    }
}
