//! Client-side query-vector generation and recombination.
//!
//! A [`SelectionVector`] is a packed bit vector over the database's
//! `n` rows (row ≡ owner id — the row space is dense and uniform by
//! construction). The client sends one vector to each of the two
//! non-colluding servers; [`QueryPair::generate`] produces the pair
//! `(a, a ⊕ e_target)` whose XOR selects exactly the target row while
//! each half stays marginally uniform.

use rand::RngCore;

const WORD_BITS: usize = 64;

/// A packed selection vector over `rows` database rows: bit `j` set
/// means row `j` participates in the server's XOR accumulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionVector {
    words: Vec<u64>,
    rows: usize,
}

impl SelectionVector {
    /// The all-zero vector (selects nothing).
    pub fn zero(rows: usize) -> Self {
        SelectionVector {
            words: vec![0; rows.div_ceil(WORD_BITS)],
            rows,
        }
    }

    /// A uniformly random vector — what a single server observes for
    /// *every* query, whatever the target. Unused high bits of the
    /// last word are masked to zero so equality and XOR behave
    /// set-like.
    pub fn random<R: RngCore + ?Sized>(rows: usize, rng: &mut R) -> Self {
        let mut v = SelectionVector::zero(rows);
        for w in &mut v.words {
            *w = rng.next_u64();
        }
        v.mask_tail();
        v
    }

    /// The indicator vector `e_row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn singleton(rows: usize, row: usize) -> Self {
        let mut v = SelectionVector::zero(rows);
        v.flip(row);
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.rows % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows the vector spans.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The packed words (LSB-first row order).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Flips the selection bit of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn flip(&mut self, row: usize) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.words[row / WORD_BITS] ^= 1u64 << (row % WORD_BITS);
    }

    /// Reads the selection bit of `row` (`false` beyond the vector).
    pub fn bit(&self, row: usize) -> bool {
        self.mask(row as u32) != 0
    }

    /// Branchless all-ones/all-zero mask for `row`: `!0` if selected,
    /// `0` otherwise — including for rows beyond the vector, so a
    /// server holding more rows than the vector spans (a vector built
    /// against an older epoch racing an append) deterministically
    /// skips the surplus rows on both servers. This is the scan
    /// kernels' hot accessor.
    #[inline]
    pub fn mask(&self, row: u32) -> u64 {
        let word = self
            .words
            .get(row as usize / WORD_BITS)
            .copied()
            .unwrap_or(0);
        0u64.wrapping_sub((word >> (row as usize % WORD_BITS)) & 1)
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The element-wise XOR of two equal-span vectors.
    ///
    /// # Panics
    ///
    /// Panics if the spans differ.
    pub fn xor(&self, other: &SelectionVector) -> SelectionVector {
        assert_eq!(self.rows, other.rows, "vector spans differ");
        SelectionVector {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| a ^ b)
                .collect(),
            rows: self.rows,
        }
    }
}

/// The two per-server halves of one private query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPair {
    /// Sent to server A: uniformly random.
    pub a: SelectionVector,
    /// Sent to server B: `a ⊕ e_target` (or `a` itself for a null
    /// query) — also marginally uniform.
    pub b: SelectionVector,
}

impl QueryPair {
    /// Generates the pair retrieving row `target` out of `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= rows`.
    pub fn generate<R: RngCore + ?Sized>(rows: usize, target: usize, rng: &mut R) -> Self {
        let a = SelectionVector::random(rows, rng);
        let mut b = a.clone();
        b.flip(target);
        QueryPair { a, b }
    }

    /// Generates a *null* pair (`b = a`): the servers do identical
    /// work and the recombined answer is the all-zero row. Used for
    /// owners outside the current row space — an unknown owner must
    /// cost exactly what a real one costs, and answer empty exactly
    /// like the plaintext path does.
    pub fn null<R: RngCore + ?Sized>(rows: usize, rng: &mut R) -> Self {
        let a = SelectionVector::random(rows, rng);
        QueryPair { b: a.clone(), a }
    }

    /// The row the pair retrieves: `None` for a null pair.
    pub fn target(&self) -> Option<usize> {
        let diff = self.a.xor(&self.b);
        (0..diff.rows()).find(|&r| diff.bit(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn singleton_selects_exactly_one_row() {
        for rows in [1, 63, 64, 65, 130] {
            let v = SelectionVector::singleton(rows, rows - 1);
            assert_eq!(v.count(), 1);
            assert!(v.bit(rows - 1));
            assert_eq!(v.mask((rows - 1) as u32), !0);
            assert_eq!(v.mask(rows as u32), 0, "out of range selects nothing");
        }
    }

    #[test]
    fn random_vectors_mask_tail_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        for rows in [1, 5, 64, 65, 127] {
            let v = SelectionVector::random(rows, &mut rng);
            for beyond in rows..rows.next_multiple_of(64) {
                assert!(!v.bit(beyond), "tail bit {beyond} leaked ({rows} rows)");
            }
        }
    }

    #[test]
    fn pair_difference_is_the_target_indicator() {
        let mut rng = StdRng::seed_from_u64(8);
        for rows in [1, 64, 100] {
            for target in [0, rows / 2, rows - 1] {
                let pair = QueryPair::generate(rows, target, &mut rng);
                let diff = pair.a.xor(&pair.b);
                assert_eq!(diff.count(), 1);
                assert!(diff.bit(target));
                assert_eq!(pair.target(), Some(target));
            }
        }
    }

    #[test]
    fn null_pair_selects_nothing_jointly() {
        let mut rng = StdRng::seed_from_u64(9);
        let pair = QueryPair::null(80, &mut rng);
        assert_eq!(pair.a, pair.b);
        assert_eq!(pair.a.xor(&pair.b).count(), 0);
        assert_eq!(pair.target(), None);
    }

    /// Marginal uniformity smoke check: over many generations for a
    /// *fixed* target, each server's bit at the target row is set
    /// about half the time — observing one half reveals nothing.
    #[test]
    fn single_server_view_is_target_independent() {
        let mut rng = StdRng::seed_from_u64(10);
        let (rows, target, trials) = (96, 17, 2_000);
        let mut a_set = 0usize;
        let mut b_set = 0usize;
        for _ in 0..trials {
            let pair = QueryPair::generate(rows, target, &mut rng);
            a_set += usize::from(pair.a.bit(target));
            b_set += usize::from(pair.b.bit(target));
        }
        for (name, set) in [("a", a_set), ("b", b_set)] {
            let frac = set as f64 / trials as f64;
            assert!(
                (0.44..=0.56).contains(&frac),
                "server {name} bit biased: {frac}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flipping_beyond_the_span_panics() {
        SelectionVector::zero(4).flip(4);
    }
}
