//! # eppi-pir — private queries for the locator service
//!
//! The ε-PPI construction protects *providers'* membership bits: the
//! published `M'` bounds what anyone learns about who holds an owner's
//! records. It does nothing for the *searcher* — the locator service
//! still sees exactly which owner every `QueryPPI` asks about. This
//! crate closes that hole with classic information-theoretic 2-server
//! XOR-PIR (Chor–Goldreich–Kushilevitz–Sudan) specialized to the
//! serving layer's owner-major row layout:
//!
//! * The database is the published index laid out as one packed `u64`
//!   provider bitmap per owner (the dense, uniform row space that
//!   column mixing already guarantees — every owner has a row of the
//!   same shape, so rows are directly indexable by owner id).
//! * A querying client picks a uniformly random [`SelectionVector`]
//!   `a` over the `n` rows and sends `a` to server A and
//!   `b = a ⊕ e_j` to server B ([`QueryPair::generate`]). Each vector
//!   alone is uniform over all `2^n` vectors, independent of `j`:
//!   a single server learns *nothing* about the queried owner
//!   (perfect privacy against one non-colluding server).
//! * Each server XOR-accumulates the rows its vector selects
//!   ([`scan::xor_scan`] / [`scan::xor_scan_indexed`]) — a branchless
//!   word-level pass that reads **every** row regardless of the
//!   query, so the scan shape (rows touched, words read, instruction
//!   stream) is identical for every query.
//! * The client XORs the two answer shares; everything but row `j`
//!   cancels, leaving the owner's exact published row
//!   ([`eppi_core::rows::RowAnswer`]), decoded to the same ascending
//!   provider list the plaintext path returns — bit-identical.
//!
//! The linear scan is the price of obliviousness; the batched kernels
//! ([`scan::xor_scan_batch`] / [`scan::xor_scan_indexed_batch`])
//! amortize it the way Peer2PIR does for its locator retrofits: one
//! pass over the rows answers a whole batch of selection vectors, so
//! per-query cost falls from `O(n·w)` toward `O(n·w / B + n)`.
//!
//! The serving integration — a two-replica `PrivateEngine` front-end
//! that scatters scans across the worker-per-shard engine and keeps
//! queries consistent across epoch installs — lives in
//! `eppi-serve::private`; this crate is the dependency-light protocol
//! core (only `eppi-core` for ids and row decoding).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod query;
pub mod scan;

pub use query::{QueryPair, SelectionVector};
pub use scan::{xor_scan, xor_scan_batch, xor_scan_indexed, xor_scan_indexed_batch};
