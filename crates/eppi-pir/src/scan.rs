//! Server-side oblivious XOR scan kernels.
//!
//! A PIR server answers a [`SelectionVector`] by XOR-accumulating the
//! selected rows of its packed row block. The kernels here are
//! deliberately *branchless over the selection*: every row is read and
//! combined under an all-ones/all-zero mask whether or not it is
//! selected, so the memory traffic and instruction stream — the whole
//! observable scan shape — are identical for every query. That linear
//! pass is the obliviousness invariant the serve-mode tests pin down
//! (`pir.scanned_words` moves by exactly the same amount for every
//! query), and the batched kernels are where Peer2PIR's lesson lands:
//! one pass over the rows serves a whole batch of vectors, amortizing
//! the scan.
//!
//! Two addressing modes:
//!
//! * **dense** ([`xor_scan`], [`xor_scan_batch`]) — slot `s` holds row
//!   `s`; for flat, unsharded row blocks.
//! * **indexed** ([`xor_scan_indexed`], [`xor_scan_indexed_batch`]) —
//!   slot `s` holds row `row_ids[s]`; for the owner-hash shard layout,
//!   where each shard stores an arbitrary subset of the global row
//!   space and partial answers XOR together across shards.

use crate::query::SelectionVector;
use eppi_core::model::OwnerId;

fn check_acc(words_per_row: usize, acc: &[u64]) {
    assert_eq!(
        acc.len(),
        words_per_row,
        "accumulator of {} words cannot hold {words_per_row}-word rows",
        acc.len()
    );
}

#[inline]
fn xor_masked(acc: &mut [u64], row: &[u64], mask: u64) {
    for (a, &w) in acc.iter_mut().zip(row) {
        *a ^= w & mask;
    }
}

/// XOR-accumulates the selected rows of a dense block (slot ≡ row id)
/// into `acc`. Returns the number of `u64` words scanned — always the
/// block's word count, independent of the query.
///
/// Generic over anything physically laid out as flat packed words
/// (`&[u64]`, `Vec<u64>`, `eppi_core::rowstore::DenseRows`, …) — the
/// kernels never see the storage type, only the dense words, which is
/// exactly the property the obliviousness invariant needs.
///
/// # Panics
///
/// Panics if `rows` is not a whole number of `words_per_row`-word rows
/// or `acc` is mis-sized.
pub fn xor_scan<R: AsRef<[u64]> + ?Sized>(
    rows: &R,
    words_per_row: usize,
    query: &SelectionVector,
    acc: &mut [u64],
) -> u64 {
    let rows = rows.as_ref();
    check_acc(words_per_row, acc);
    assert_eq!(rows.len() % words_per_row.max(1), 0, "ragged row block");
    for (slot, row) in rows.chunks_exact(words_per_row).enumerate() {
        xor_masked(acc, row, query.mask(slot as u32));
    }
    rows.len() as u64
}

/// Batched [`xor_scan`]: one pass over the rows answers every query in
/// `queries` (`accs[i]` accumulates query `i`). Each row is read once
/// and applied under each query's mask while still cache-hot — the
/// batching that amortizes the linear scan. Returns words scanned
/// (counted once; the row pass is shared).
///
/// # Panics
///
/// Panics if `queries` and `accs` differ in length, any accumulator is
/// mis-sized, or the row block is ragged.
pub fn xor_scan_batch<R: AsRef<[u64]> + ?Sized>(
    rows: &R,
    words_per_row: usize,
    queries: &[SelectionVector],
    accs: &mut [Vec<u64>],
) -> u64 {
    let rows = rows.as_ref();
    assert_eq!(queries.len(), accs.len(), "one accumulator per query");
    for acc in accs.iter() {
        check_acc(words_per_row, acc);
    }
    assert_eq!(rows.len() % words_per_row.max(1), 0, "ragged row block");
    for (slot, row) in rows.chunks_exact(words_per_row).enumerate() {
        for (query, acc) in queries.iter().zip(accs.iter_mut()) {
            xor_masked(acc, row, query.mask(slot as u32));
        }
    }
    rows.len() as u64
}

/// As [`xor_scan`] for an indexed block: slot `s` holds global row
/// `row_ids[s]` (the shard layout's slot → owner map). Rows whose id
/// lies beyond the vector's span contribute nothing, on every server
/// alike.
///
/// # Panics
///
/// Panics if `rows` does not hold exactly one row per id or `acc` is
/// mis-sized.
pub fn xor_scan_indexed<R: AsRef<[u64]> + ?Sized>(
    rows: &R,
    words_per_row: usize,
    row_ids: &[OwnerId],
    query: &SelectionVector,
    acc: &mut [u64],
) -> u64 {
    let rows = rows.as_ref();
    check_acc(words_per_row, acc);
    assert_eq!(
        rows.len(),
        row_ids.len() * words_per_row,
        "ragged row block"
    );
    for (row, &id) in rows.chunks_exact(words_per_row.max(1)).zip(row_ids) {
        xor_masked(acc, row, query.mask(id.0));
    }
    rows.len() as u64
}

/// Batched [`xor_scan_indexed`] — the kernel the serve engine's shard
/// workers run. Returns words scanned (one shared row pass).
///
/// # Panics
///
/// Panics if `queries` and `accs` differ in length, any accumulator is
/// mis-sized, or the row block is ragged.
pub fn xor_scan_indexed_batch<R: AsRef<[u64]> + ?Sized>(
    rows: &R,
    words_per_row: usize,
    row_ids: &[OwnerId],
    queries: &[SelectionVector],
    accs: &mut [Vec<u64>],
) -> u64 {
    let rows = rows.as_ref();
    assert_eq!(queries.len(), accs.len(), "one accumulator per query");
    for acc in accs.iter() {
        check_acc(words_per_row, acc);
    }
    assert_eq!(
        rows.len(),
        row_ids.len() * words_per_row,
        "ragged row block"
    );
    for (row, &id) in rows.chunks_exact(words_per_row.max(1)).zip(row_ids) {
        for (query, acc) in queries.iter().zip(accs.iter_mut()) {
            xor_masked(acc, row, query.mask(id.0));
        }
    }
    rows.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryPair;
    use eppi_core::rows::RowAnswer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random dense row block: `n` rows of `wpr` words.
    fn random_block(rng: &mut StdRng, n: usize, wpr: usize) -> Vec<u64> {
        (0..n * wpr).map(|_| rng.gen::<u64>()).collect()
    }

    fn row(block: &[u64], wpr: usize, j: usize) -> &[u64] {
        &block[j * wpr..(j + 1) * wpr]
    }

    #[test]
    fn two_server_recombination_recovers_the_exact_row() {
        let mut rng = StdRng::seed_from_u64(31);
        for (n, wpr) in [(1, 1), (64, 2), (100, 3)] {
            let block = random_block(&mut rng, n, wpr);
            for target in [0, n / 2, n - 1] {
                let pair = QueryPair::generate(n, target, &mut rng);
                let mut share_a = vec![0u64; wpr];
                let mut share_b = vec![0u64; wpr];
                assert_eq!(
                    xor_scan(&block, wpr, &pair.a, &mut share_a),
                    (n * wpr) as u64
                );
                xor_scan(&block, wpr, &pair.b, &mut share_b);
                let mut got = RowAnswer::new(share_a, wpr * 64);
                got.xor_assign(&RowAnswer::new(share_b, wpr * 64));
                assert_eq!(got.words(), row(&block, wpr, target), "row {target}");
            }
        }
    }

    #[test]
    fn indexed_scan_matches_dense_scan_under_permutation() {
        let mut rng = StdRng::seed_from_u64(32);
        let (n, wpr) = (37, 2);
        let block = random_block(&mut rng, n, wpr);
        // A "shard" holding rows in scrambled order.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let shard_rows: Vec<u64> = ids
            .iter()
            .flat_map(|&id| row(&block, wpr, id as usize).to_vec())
            .collect();
        let owner_ids: Vec<OwnerId> = ids.iter().map(|&i| OwnerId(i)).collect();
        let query = SelectionVector::random(n, &mut rng);
        let mut dense = vec![0u64; wpr];
        let mut indexed = vec![0u64; wpr];
        xor_scan(&block, wpr, &query, &mut dense);
        xor_scan_indexed(&shard_rows, wpr, &owner_ids, &query, &mut indexed);
        assert_eq!(dense, indexed);
    }

    #[test]
    fn batch_equals_independent_single_scans() {
        let mut rng = StdRng::seed_from_u64(33);
        let (n, wpr, batch) = (50, 3, 7);
        let block = random_block(&mut rng, n, wpr);
        let queries: Vec<SelectionVector> = (0..batch)
            .map(|_| SelectionVector::random(n, &mut rng))
            .collect();
        let mut accs = vec![vec![0u64; wpr]; batch];
        let scanned = xor_scan_batch(&block, wpr, &queries, &mut accs);
        assert_eq!(scanned, (n * wpr) as u64, "one shared pass");
        for (query, acc) in queries.iter().zip(&accs) {
            let mut single = vec![0u64; wpr];
            xor_scan(&block, wpr, query, &mut single);
            assert_eq!(&single, acc);
        }
        // Indexed batch agrees too (identity id map).
        let ids: Vec<OwnerId> = (0..n as u32).map(OwnerId).collect();
        let mut accs2 = vec![vec![0u64; wpr]; batch];
        xor_scan_indexed_batch(&block, wpr, &ids, &queries, &mut accs2);
        assert_eq!(accs, accs2);
    }

    #[test]
    fn rows_beyond_the_vector_span_are_never_selected() {
        let mut rng = StdRng::seed_from_u64(34);
        let wpr = 2;
        // Server holds 10 rows; the vector only spans 6 (an epoch
        // append raced the client). The surplus rows must not leak in.
        let block = random_block(&mut rng, 10, wpr);
        let pair = QueryPair::generate(6, 3, &mut rng);
        let mut share_a = vec![0u64; wpr];
        let mut share_b = vec![0u64; wpr];
        xor_scan(&block, wpr, &pair.a, &mut share_a);
        xor_scan(&block, wpr, &pair.b, &mut share_b);
        for (a, b) in share_a.iter_mut().zip(&share_b) {
            *a ^= b;
        }
        assert_eq!(share_a, row(&block, wpr, 3));
    }

    #[test]
    fn scan_shape_is_query_independent() {
        let mut rng = StdRng::seed_from_u64(35);
        let (n, wpr) = (64, 2);
        let block = random_block(&mut rng, n, wpr);
        let mut acc = vec![0u64; wpr];
        let everything = SelectionVector::random(n, &mut rng);
        let nothing = SelectionVector::zero(n);
        let one = SelectionVector::singleton(n, 9);
        let words: Vec<u64> = [everything, nothing, one]
            .iter()
            .map(|q| {
                acc.iter_mut().for_each(|w| *w = 0);
                xor_scan(&block, wpr, q, &mut acc)
            })
            .collect();
        assert_eq!(words, vec![(n * wpr) as u64; 3]);
    }

    #[test]
    #[should_panic(expected = "ragged row block")]
    fn ragged_blocks_are_rejected() {
        let mut acc = vec![0u64; 2];
        xor_scan(&[1, 2, 3], 2, &SelectionVector::zero(2), &mut acc);
    }
}
