//! The *pure MPC* construction baseline (§V-B).
//!
//! The comparator the paper measures against: instead of reducing the
//! secure sum to `c` coordinators with SecSumShare, every one of the `m`
//! providers feeds its private membership bits straight into one big
//! generic-MPC circuit that performs the whole β computation. Correct,
//! but the circuit grows with `m` and every AND-gate opening is an
//! all-to-all exchange among `m` parties — the super-linear cost of
//! Fig. 6a/6b.
//!
//! One deliberate concession favours the baseline: λ would require a
//! preliminary secure count (a second pass); we grant the baseline the
//! final λ as a public input so it runs in a single pass. Even with this
//! head start the MPC-reduced ε-PPI protocol wins, which is the paper's
//! point.

use crate::countbelow::{Backend, StageReport};
use crate::threaded_gmw::execute_threaded;
use eppi_core::error::EppiError;
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, PublishedIndex};
use eppi_core::policy::{BetaPolicy, PolicyKind};
use eppi_core::publish::publish_vector;
use eppi_mpc::circuits::{
    lambda_threshold, FixedPoint, NaiveConstructionCircuit, PureConstructionCircuit,
};
use eppi_mpc::gmw;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of the pure-MPC baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PureMpcConfig {
    /// The β-calculation policy (public parameters).
    pub policy: PolicyKind,
    /// Bits per mixing coin.
    pub coin_bits: usize,
    /// The mixing probability λ, granted as a public input (see module
    /// docs).
    pub lambda: f64,
    /// MPC backend.
    pub backend: Backend,
    /// Seed for all randomness.
    pub seed: u64,
    /// Whether the baseline performs the full β computation (division,
    /// multiplication, square root of Eq. 5) *inside* the circuit — the
    /// truly naive approach the paper's Formula-9 reordering eliminates.
    /// `false` grants the baseline the reordering too and keeps only the
    /// threshold comparison in-circuit.
    pub in_circuit_beta: bool,
    /// Fractional bits of the in-circuit fixed-point arithmetic.
    pub frac_bits: usize,
}

impl Default for PureMpcConfig {
    fn default() -> Self {
        PureMpcConfig {
            policy: PolicyKind::default(),
            coin_bits: 8,
            lambda: 0.0,
            backend: Backend::InProcess,
            seed: 0,
            in_circuit_beta: false,
            frac_bits: 8,
        }
    }
}

/// Result and cost of a pure-MPC construction.
#[derive(Debug, Clone)]
pub struct PureMpcConstruction {
    /// The published index (statistically identical to the ε-PPI
    /// protocol's output under the same policy).
    pub index: PublishedIndex,
    /// Number of common identities.
    pub common_count: u64,
    /// Per-identity mix decisions.
    pub decisions: Vec<bool>,
    /// MPC cost (the whole construction is one secure stage).
    pub stage: StageReport,
    /// End-to-end wall-clock time.
    pub wall: Duration,
}

/// Runs the pure-MPC baseline over the network described by `matrix`.
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] or a policy-parameter error
/// on invalid inputs.
pub fn construct_pure_mpc(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &PureMpcConfig,
) -> Result<PureMpcConstruction, EppiError> {
    if epsilons.len() != matrix.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "epsilons",
            expected: matrix.owners(),
            actual: epsilons.len(),
        });
    }
    config.policy.validate()?;
    let m = matrix.providers();
    let n = matrix.owners();
    if m == 0 {
        return Err(EppiError::NetworkTooSmall {
            providers: 0,
            required: 1,
        });
    }

    let started = Instant::now();
    let lam = lambda_threshold(config.lambda, config.coin_bits);

    // Compile either the naive full-β circuit or the threshold-only
    // variant (which grants the baseline Formula 9's reordering).
    enum Compiled {
        Compare(PureConstructionCircuit),
        Naive(NaiveConstructionCircuit),
    }
    let compiled = if config.in_circuit_beta {
        let fp = FixedPoint {
            frac_bits: config.frac_bits,
        };
        let a_fps: Vec<u64> = epsilons
            .iter()
            .map(|e| {
                let v = e.value();
                if v <= 0.0 {
                    // ε = 0: never common — an astronomically large A
                    // keeps β below 1 for every frequency.
                    u64::MAX >> 16
                } else {
                    fp.encode(1.0 / v - 1.0)
                }
            })
            .collect();
        let l_fp = match config.policy {
            PolicyKind::Chernoff { gamma } => fp.encode((1.0 / (1.0 - gamma)).ln()),
            PolicyKind::Basic | PolicyKind::Incremented { .. } => 0,
        };
        Compiled::Naive(NaiveConstructionCircuit::build(
            m,
            &a_fps,
            l_fp,
            fp,
            config.coin_bits,
            lam,
        ))
    } else {
        let thresholds = crate::construct::frequency_thresholds(config.policy, epsilons, m);
        Compiled::Compare(PureConstructionCircuit::build(
            m,
            &thresholds,
            config.coin_bits,
            lam,
        ))
    };
    let (circuit, layout) = match &compiled {
        Compiled::Compare(c) => (c.circuit(), c.layout()),
        Compiled::Naive(c) => (c.circuit(), c.layout()),
    };

    let inputs: Vec<Vec<bool>> = matrix
        .provider_ids()
        .map(|p| {
            let row = matrix.row(p);
            let membership: Vec<bool> = (0..n).map(|j| row.get(OwnerId(j as u32))).collect();
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ 0x9u64 ^ (p.index() as u64).wrapping_mul(0x9e3779b97f4a7c15),
            );
            let coins: Vec<u64> = (0..n)
                .map(|_| rng.gen_range(0..(1u64 << config.coin_bits)))
                .collect();
            match &compiled {
                Compiled::Compare(c) => c.encode_party_input(&membership, &coins),
                Compiled::Naive(c) => c.encode_party_input(&membership, &coins),
            }
        })
        .collect();

    let stats = circuit.stats();
    let (out, messages, bits, bytes) = match config.backend {
        Backend::InProcess => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xfeed);
            let (out, g) = gmw::execute(circuit, layout, &inputs, &mut rng);
            (out, g.messages, g.bits_sent, g.bytes)
        }
        Backend::Threaded => {
            let (out, r) = execute_threaded(circuit, layout, &inputs, config.seed);
            (out, r.messages, r.bits_sent, r.bytes)
        }
        Backend::Simulated => {
            let (out, net) = crate::sim_gmw::execute_simulated(
                circuit,
                layout,
                &inputs,
                eppi_net::sim::LinkModel::LAN,
                config.seed,
            );
            (out, net.messages, net.bits, net.bytes)
        }
        Backend::Pipelined { workers } => {
            // The whole-construction circuit is one monolithic lane;
            // the pipeline still streams triples and coalesces sends.
            let lanes = [crate::pipelined_gmw::LaneSpec {
                circuit,
                layout,
                inputs: &inputs,
                seed: config.seed,
            }];
            let (mut outs, r) = crate::pipelined_gmw::execute_pipelined(
                &lanes,
                &crate::pipelined_gmw::PipelineConfig::with_workers(workers),
            )
            .expect("in-process pipeline cannot lose a party");
            (outs.swap_remove(0), r.messages, r.bits_sent, r.bytes)
        }
    };
    let (common_count, decisions, masked_freqs) = match &compiled {
        Compiled::Compare(c) => c.decode(&out),
        Compiled::Naive(c) => c.decode(&out),
    };

    // Cleartext: β from the revealed frequencies of unmixed identities.
    let betas: Vec<f64> = decisions
        .iter()
        .zip(&masked_freqs)
        .zip(epsilons)
        .map(|((&mixed, &freq), &e)| {
            if mixed {
                1.0
            } else {
                config.policy.beta(freq as f64 / m as f64, e, m)
            }
        })
        .collect();

    let mut published = MembershipMatrix::new(m, n);
    for provider in matrix.provider_ids() {
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ 0x9b1 ^ (provider.index() as u64).wrapping_mul(0x2545f4914f6cdd1d),
        );
        let row = publish_vector(&matrix.row(provider), &betas, &mut rng);
        published.set_row(&row);
    }

    Ok(PureMpcConstruction {
        index: PublishedIndex::new(published, betas),
        common_count,
        decisions,
        stage: StageReport {
            circuit: stats,
            messages,
            bits,
            bytes,
            ..StageReport::default()
        },
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct_distributed, ProtocolConfig};
    use eppi_core::model::ProviderId;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn matrix_with_freqs(m: usize, freqs: &[usize]) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, freqs.len());
        for (j, &f) in freqs.iter().enumerate() {
            for p in 0..f {
                mat.set(ProviderId(p as u32), OwnerId(j as u32), true);
            }
        }
        mat
    }

    #[test]
    fn pure_mpc_finds_commons_and_publishes() {
        let mat = matrix_with_freqs(8, &[7, 1]);
        let e = vec![eps(0.5); 2];
        let out = construct_pure_mpc(&mat, &e, &PureMpcConfig::default()).unwrap();
        assert_eq!(out.common_count, 1);
        assert!(out.decisions[0]);
        assert!(!out.decisions[1]);
        // Common identity broadcasts.
        assert_eq!(out.index.query(OwnerId(0)).len(), 8);
        // Recall for the rare identity.
        assert!(out.index.matrix().get(ProviderId(0), OwnerId(1)));
    }

    #[test]
    fn agrees_with_mpc_reduced_protocol_on_betas() {
        let mat = matrix_with_freqs(12, &[3, 9, 6]);
        let e = vec![eps(0.4), eps(0.6), eps(0.5)];
        let pure = construct_pure_mpc(
            &mat,
            &e,
            &PureMpcConfig {
                policy: PolicyKind::Basic,
                seed: 4,
                ..PureMpcConfig::default()
            },
        )
        .unwrap();
        let reduced = construct_distributed(
            &mat,
            &e,
            &ProtocolConfig {
                policy: PolicyKind::Basic,
                seed: 4,
                ..ProtocolConfig::default()
            },
        )
        .unwrap();
        // With λ = 0 in both runs (no commons ⇒ λ = 0 in reduced; pure is
        // configured with λ = 0), the β vectors must agree exactly.
        for j in 0..3 {
            if !pure.decisions[j] && !reduced.decisions[j] {
                assert!(
                    (pure.index.betas()[j] - reduced.index.betas()[j]).abs() < 1e-12,
                    "identity {j}"
                );
            }
        }
        assert_eq!(pure.common_count, reduced.common_count);
    }

    #[test]
    fn cost_grows_with_providers() {
        let e = vec![eps(0.5)];
        let small = construct_pure_mpc(&matrix_with_freqs(4, &[2]), &e, &PureMpcConfig::default())
            .unwrap()
            .stage;
        let large = construct_pure_mpc(&matrix_with_freqs(16, &[2]), &e, &PureMpcConfig::default())
            .unwrap()
            .stage;
        assert!(large.circuit.total_gates > 2 * small.circuit.total_gates);
        assert!(
            large.bytes > 4 * small.bytes,
            "all-to-all openings grow quadratically"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mat = matrix_with_freqs(4, &[1]);
        assert!(construct_pure_mpc(&mat, &[], &PureMpcConfig::default()).is_err());
    }

    #[test]
    fn naive_in_circuit_beta_agrees_with_compare_only() {
        // Same network, both baseline flavours: the common decision and
        // published index must agree (fixed-point precision is ample at
        // these sizes).
        let mat = matrix_with_freqs(10, &[9, 3, 1]);
        let e = vec![eps(0.5); 3];
        let base = PureMpcConfig {
            seed: 6,
            ..PureMpcConfig::default()
        };
        let compare = construct_pure_mpc(&mat, &e, &base).unwrap();
        let naive = construct_pure_mpc(
            &mat,
            &e,
            &PureMpcConfig {
                in_circuit_beta: true,
                ..base
            },
        )
        .unwrap();
        assert_eq!(compare.common_count, naive.common_count);
        assert_eq!(compare.decisions, naive.decisions);
        assert_eq!(compare.index.betas(), naive.index.betas());
        // …and the naive circuit is dramatically bigger: Eq. 5's square
        // root and divisions live inside it.
        assert!(
            naive.stage.circuit.total_gates > 10 * compare.stage.circuit.total_gates,
            "naive {} vs compare {}",
            naive.stage.circuit.total_gates,
            compare.stage.circuit.total_gates
        );
    }
}
