//! GMW evaluation over the round-based network simulator.
//!
//! One of the three execution backends of the single packed GMW core
//! ([`eppi_mpc::gmw_core`]): the protocol logic lives in
//! [`PartyCore`], and this module only supplies the transport — a
//! [`SimTransport`] hub whose every exchange runs as one round of the
//! deterministic [`eppi_net::sim::Simulator`] under the configurable
//! [`LinkModel`]. The run therefore accumulates *simulated network
//! time*, the quantity that dominated the paper's Emulab numbers (their
//! LAN round trips, not CPU, set the curve); it is the backend behind
//! the Fig. 6a latency curves at party counts no thread-per-party run
//! could reach.
//!
//! Message flow per party: one packed input-share batch to every peer
//! (round 1), then per AND layer one broadcast
//! [`PackedBatch`](eppi_net::transport::PackedBatch) carrying
//! the layer's `d`/`e` openings word-aligned (64 gates per `u64` word —
//! not a per-gate bit pair), then one packed output-share broadcast.
//! Rounds advance in lockstep because the simulator delivers all of
//! round `r`'s messages before round `r + 1`. The returned
//! [`NetStats`] follow the workspace traffic convention (see
//! `eppi-net`'s crate docs): logical payload bits in
//! [`NetStats::bits`], packed on-the-wire bytes in [`NetStats::bytes`].

use eppi_mpc::circuit::{Circuit, InputLayout};
use eppi_mpc::gmw_core::{deal_packed_triples, run_lockstep, PartyCore, Schedule};
use eppi_net::sim::{LinkModel, NetStats};
use eppi_net::transport::SimTransport;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Executes `circuit` among `layout.parties()` simulated parties and
/// returns the opened outputs plus the network statistics (rounds,
/// bits, bytes, simulated time under `link`).
///
/// # Panics
///
/// Panics if the layout/input shapes disagree with the circuit, or if
/// the parties open different outputs (a protocol bug).
pub fn execute_simulated(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    link: LinkModel,
    seed: u64,
) -> (Vec<bool>, NetStats) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    assert_eq!(inputs.len(), layout.parties(), "one input vector per party");
    let parties = layout.parties();
    let sched = Schedule::new(circuit);

    // Dealer (offline phase) and per-party RNGs, seeded exactly as the
    // pre-refactor backend so runs stay reproducible per seed.
    let mut dealer_rng = StdRng::seed_from_u64(seed ^ 0xdea1);
    let mut triples = deal_packed_triples(parties, &sched, &mut dealer_rng);
    let mut rngs: Vec<StdRng> = (0..parties)
        .map(|p| StdRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0x9e3779b97f4a7c15)))
        .collect();

    let mut cores: Vec<PartyCore<'_>> = (0..parties)
        .map(|p| PartyCore::new(circuit, layout, &sched, p, std::mem::take(&mut triples[p])))
        .collect();
    let mut hub = SimTransport::hub(parties, link);
    let outputs = run_lockstep(&mut cores, &mut hub, |p, core| {
        core.share_inputs(&inputs[p], &mut rngs[p])
    });
    let stats = hub[0].stats();
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};

    #[test]
    fn matches_cleartext_and_other_backends() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(5);
        let b = cb.input_word(5);
        let sum = cb.add_words_expand(&a, &b);
        let ge = {
            let c5 = cb.const_word(20, 6);
            cb.ge_words(&sum, &c5)
        };
        let mut outs = sum.bits().to_vec();
        outs.push(ge);
        let circuit = cb.finish(outs);
        let layout = InputLayout::new(vec![5, 5]);
        for (x, y) in [(0u64, 0u64), (7, 19), (31, 31)] {
            let inputs = vec![to_bits(x, 5), to_bits(y, 5)];
            let clear = circuit.eval(&layout.flatten(&inputs));
            let (sim_out, stats) =
                execute_simulated(&circuit, &layout, &inputs, LinkModel::LAN, 77);
            assert_eq!(sim_out, clear, "x={x} y={y}");
            assert_eq!(word_value(&sim_out[..6]), x + y);
            assert!(
                stats.rounds >= circuit.stats().and_depth,
                "one round per layer"
            );
        }
    }

    #[test]
    fn simulated_time_scales_with_and_depth() {
        // Deeper circuits take more simulated rounds → more latency.
        let build = |chain: usize| {
            let mut cb = CircuitBuilder::new();
            let mut w = cb.input();
            let x = cb.input();
            for _ in 0..chain {
                w = cb.and(w, x);
            }
            (cb.finish(vec![w]), InputLayout::new(vec![1, 1]))
        };
        let (short, l1) = build(2);
        let (long, l2) = build(16);
        let inputs = vec![vec![true], vec![true]];
        let (_, s1) = execute_simulated(&short, &l1, &inputs, LinkModel::LAN, 1);
        let (_, s2) = execute_simulated(&long, &l2, &inputs, LinkModel::LAN, 1);
        assert!(s2.rounds > s1.rounds);
        assert!(s2.simulated_us > s1.simulated_us);
    }

    #[test]
    fn reports_logical_bits_alongside_bytes() {
        use eppi_mpc::gmw_core::logical_bits;
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(6);
        let b = cb.input_word(6);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![6, 6]);
        let inputs = vec![to_bits(9, 6), to_bits(40, 6)];
        let (out, stats) = execute_simulated(&circuit, &layout, &inputs, LinkModel::LAN, 5);
        assert_eq!(out, vec![true]);
        assert_eq!(stats.bits, logical_bits(&circuit, &layout));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn count_below_runs_simulated() {
        use eppi_mpc::circuits::CountBelowCircuit;
        use eppi_mpc::field::Modulus;
        use eppi_mpc::share::split;
        use rand::SeedableRng;
        let thresholds = [25u64, 60];
        let cc = CountBelowCircuit::build(3, &thresholds, 8);
        let q = Modulus::pow2(8);
        let mut rng = StdRng::seed_from_u64(2);
        let freqs = [30u64, 10];
        let mut per = vec![vec![0u64; 2]; 3];
        for (j, &f) in freqs.iter().enumerate() {
            let s = split(f, 3, q, &mut rng);
            for (k, &v) in s.values().iter().enumerate() {
                per[k][j] = v;
            }
        }
        let inputs: Vec<Vec<bool>> = per.iter().map(|s| cc.encode_party_input(s)).collect();
        let (out, stats) = execute_simulated(cc.circuit(), cc.layout(), &inputs, LinkModel::LAN, 3);
        assert_eq!(cc.decode_count(&out), 1);
        assert!(stats.simulated_us > 0.0);
        assert!(stats.bytes > 0);
    }
}
