//! GMW evaluation over the round-based network simulator.
//!
//! The third execution backend: the same level-synchronized Beaver
//! protocol as [`crate::threaded_gmw`], but with each party as a
//! [`eppi_net::sim::Node`] so every AND layer costs one simulated
//! communication round under the configurable [`LinkModel`] — producing
//! *simulated network time*, the quantity that dominated the paper's
//! Emulab numbers (their LAN round trips, not CPU, set the curve).
//!
//! Message flow per party: one input-share batch to every peer (round
//! 1), then per AND layer one `d/e` batch broadcast, then one
//! output-share broadcast. Rounds advance in lockstep because the
//! simulator delivers all of round `r`'s messages before round `r + 1`.

use eppi_mpc::circuit::{Circuit, Gate, InputLayout};
use eppi_net::sim::{Context, LinkModel, NetStats, Node, Simulator};
use eppi_net::{NodeId, WireSize};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::rc::Rc;

/// Per-level schedule shared by all parties (same construction as the
/// threaded backend).
#[derive(Debug)]
struct Schedule {
    levels: Vec<(Vec<usize>, Vec<usize>)>,
    triple_index: Vec<usize>,
}

fn schedule(circuit: &Circuit) -> Schedule {
    let inputs = circuit.inputs();
    let mut wire_level = vec![0usize; circuit.wires()];
    let mut levels: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut triple_index = vec![usize::MAX; circuit.gates().len()];
    let mut next_triple = 0usize;
    for (k, gate) in circuit.gates().iter().enumerate() {
        let this = inputs + k;
        let (level, is_and) = match *gate {
            Gate::Xor(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), false),
            Gate::Not(a) => (wire_level[a.index()], false),
            Gate::Const(_) => (0, false),
            Gate::And(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), true),
        };
        if levels.len() <= level {
            levels.resize_with(level + 1, Default::default);
        }
        if is_and {
            levels[level].1.push(k);
            wire_level[this] = level + 1;
            triple_index[k] = next_triple;
            next_triple += 1;
        } else {
            levels[level].0.push(k);
            wire_level[this] = level;
        }
    }
    Schedule {
        levels,
        triple_index,
    }
}

/// Protocol messages: tagged batches of bits.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GmwMsg {
    /// Input shares for the sender's input wires (wire-offset order).
    InputShares(Vec<bool>),
    /// `d/e` shares for one AND layer.
    Layer(usize, Vec<bool>),
    /// Output shares.
    Outputs(Vec<bool>),
}

impl WireSize for GmwMsg {
    fn wire_size(&self) -> usize {
        match self {
            GmwMsg::InputShares(v) | GmwMsg::Outputs(v) => v.len().div_ceil(8) + 1,
            GmwMsg::Layer(_, v) => v.len().div_ceil(8) + 3,
        }
    }
}

/// Immutable data shared by all party nodes.
struct Shared {
    circuit: Circuit,
    layout: InputLayout,
    sched: Schedule,
    /// `[party][triple] -> (a, b, c)` shares.
    triples: Vec<Vec<(bool, bool, bool)>>,
}

/// One GMW party as a simulation node.
struct PartyNode {
    shared: Rc<Shared>,
    me: usize,
    inputs: Vec<bool>,
    rng: StdRng,
    shares: Vec<bool>,
    /// Received input-share batches, by sender.
    input_batches: HashMap<usize, Vec<bool>>,
    /// Received layer batches: layer → sender → batch.
    layer_batches: HashMap<usize, HashMap<usize, Vec<bool>>>,
    /// My own d/e bits for the pending layer.
    my_de: Vec<bool>,
    current_layer: usize,
    /// Received output batches.
    output_batches: HashMap<usize, Vec<bool>>,
    my_outputs: Vec<bool>,
    /// Opened outputs once every share arrived.
    result: Option<Vec<bool>>,
}

impl PartyNode {
    fn parties(&self) -> usize {
        self.shared.layout.parties()
    }

    fn broadcast(&self, ctx: &mut Context<GmwMsg>, msg: GmwMsg) {
        for p in 0..self.parties() {
            if p != self.me {
                ctx.send(NodeId(p), msg.clone());
            }
        }
    }

    /// Evaluates free gates of the current level and prepares the AND
    /// layer's d/e batch (or finishes if no layers remain).
    fn advance(&mut self, ctx: &mut Context<GmwMsg>) {
        loop {
            let shared = Rc::clone(&self.shared);
            let n_inputs = shared.circuit.inputs();
            if self.current_layer >= shared.sched.levels.len() {
                // All gates done: open outputs.
                self.my_outputs = shared
                    .circuit
                    .outputs()
                    .iter()
                    .map(|o| self.shares[o.index()])
                    .collect();
                if self.parties() == 1 {
                    self.result = Some(self.my_outputs.clone());
                } else {
                    self.broadcast(ctx, GmwMsg::Outputs(self.my_outputs.clone()));
                    self.try_open_outputs();
                }
                return;
            }
            let (free, ands) = &shared.sched.levels[self.current_layer];
            for &k in free {
                let v = match shared.circuit.gates()[k] {
                    Gate::Xor(a, b) => self.shares[a.index()] ^ self.shares[b.index()],
                    Gate::Not(a) => {
                        if self.me == 0 {
                            !self.shares[a.index()]
                        } else {
                            self.shares[a.index()]
                        }
                    }
                    Gate::Const(v) => self.me == 0 && v,
                    Gate::And(..) => unreachable!("AND scheduled as free"),
                };
                self.shares[n_inputs + k] = v;
            }
            if ands.is_empty() {
                self.current_layer += 1;
                continue;
            }
            // Prepare and broadcast this layer's d/e shares.
            self.my_de = Vec::with_capacity(ands.len() * 2);
            for &k in ands {
                let (a, b) = match shared.circuit.gates()[k] {
                    Gate::And(a, b) => (a, b),
                    _ => unreachable!(),
                };
                let (ta, tb, _) = shared.triples[self.me][shared.sched.triple_index[k]];
                self.my_de.push(self.shares[a.index()] ^ ta);
                self.my_de.push(self.shares[b.index()] ^ tb);
            }
            if self.parties() == 1 {
                self.finish_layer();
                continue;
            }
            self.broadcast(ctx, GmwMsg::Layer(self.current_layer, self.my_de.clone()));
            // Maybe the peers' batches already arrived (lockstep rounds
            // make this impossible, but stay defensive).
            if !self.try_finish_layer() {
                return;
            }
        }
    }

    /// Combines the layer openings once every peer delivered; returns
    /// whether the layer completed.
    fn try_finish_layer(&mut self) -> bool {
        let have = self
            .layer_batches
            .get(&self.current_layer)
            .map_or(0, HashMap::len);
        if have < self.parties() - 1 {
            return false;
        }
        self.finish_layer();
        true
    }

    fn finish_layer(&mut self) {
        let shared = Rc::clone(&self.shared);
        let n_inputs = shared.circuit.inputs();
        let ands = &shared.sched.levels[self.current_layer].1;
        let mut opened = self.my_de.clone();
        if let Some(batches) = self.layer_batches.remove(&self.current_layer) {
            for batch in batches.into_values() {
                for (i, s) in batch.into_iter().enumerate() {
                    opened[i] ^= s;
                }
            }
        }
        for (idx, &k) in ands.iter().enumerate() {
            let d = opened[idx * 2];
            let e = opened[idx * 2 + 1];
            let (ta, tb, tc) = shared.triples[self.me][shared.sched.triple_index[k]];
            let mut z = tc ^ (d & tb) ^ (e & ta);
            if self.me == 0 {
                z ^= d & e;
            }
            self.shares[n_inputs + k] = z;
        }
        self.current_layer += 1;
    }

    fn try_open_outputs(&mut self) {
        if self.output_batches.len() < self.parties() - 1 || self.my_outputs.is_empty() {
            if self.shared.circuit.outputs().is_empty() {
                self.result = Some(Vec::new());
            }
            if self.output_batches.len() < self.parties() - 1 {
                return;
            }
        }
        let mut opened = self.my_outputs.clone();
        for batch in self.output_batches.values() {
            for (i, &s) in batch.iter().enumerate() {
                opened[i] ^= s;
            }
        }
        self.result = Some(opened);
    }

    fn try_start_layers(&mut self, ctx: &mut Context<GmwMsg>) {
        if self.input_batches.len() == self.parties() - 1 {
            // Install peers' input shares, then run.
            let batches = std::mem::take(&mut self.input_batches);
            for (sender, batch) in batches {
                let range = self.shared.layout.range_of(sender);
                for (off, s) in batch.into_iter().enumerate() {
                    self.shares[range.start + off] = s;
                }
            }
            self.advance(ctx);
        }
    }
}

impl Node<GmwMsg> for PartyNode {
    fn on_start(&mut self, ctx: &mut Context<GmwMsg>) {
        // Share my inputs: peers get random bits, I keep the correction.
        let my_range = self.shared.layout.range_of(self.me);
        let parties = self.parties();
        let mut to_peer: Vec<Vec<bool>> = vec![Vec::new(); parties];
        for (off, &bit) in self.inputs.clone().iter().enumerate() {
            let mut acc = false;
            for (p, batch) in to_peer.iter_mut().enumerate() {
                if p != self.me {
                    let s: bool = self.rng.gen();
                    acc ^= s;
                    batch.push(s);
                }
            }
            self.shares[my_range.start + off] = bit ^ acc;
        }
        if parties == 1 {
            self.advance(ctx);
            return;
        }
        for (p, batch) in to_peer.into_iter().enumerate() {
            if p != self.me {
                ctx.send(NodeId(p), GmwMsg::InputShares(batch));
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: GmwMsg, ctx: &mut Context<GmwMsg>) {
        match msg {
            GmwMsg::InputShares(batch) => {
                self.input_batches.insert(from.index(), batch);
                self.try_start_layers(ctx);
            }
            GmwMsg::Layer(layer, batch) => {
                self.layer_batches
                    .entry(layer)
                    .or_default()
                    .insert(from.index(), batch);
                if layer == self.current_layer && !self.my_de.is_empty() && self.try_finish_layer()
                {
                    self.advance(ctx);
                }
            }
            GmwMsg::Outputs(batch) => {
                self.output_batches.insert(from.index(), batch);
                self.try_open_outputs();
            }
        }
    }
}

/// Executes `circuit` among `layout.parties()` simulated parties and
/// returns the opened outputs plus the network statistics (rounds,
/// bytes, simulated time under `link`).
///
/// # Panics
///
/// Panics if the layout/input shapes disagree with the circuit, or if
/// the protocol fails to converge (a bug).
pub fn execute_simulated(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    link: LinkModel,
    seed: u64,
) -> (Vec<bool>, NetStats) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    assert_eq!(inputs.len(), layout.parties(), "one input vector per party");
    let parties = layout.parties();
    let sched = schedule(circuit);
    let and_gates = circuit.stats().and_gates;

    // Dealer (offline phase).
    let mut dealer_rng = StdRng::seed_from_u64(seed ^ 0xdea1);
    let mut triples = vec![Vec::with_capacity(and_gates); parties];
    for _ in 0..and_gates {
        let a: bool = dealer_rng.gen();
        let b: bool = dealer_rng.gen();
        let mut rem = (a, b, a & b);
        for t in triples.iter_mut().take(parties - 1) {
            let share = (dealer_rng.gen(), dealer_rng.gen(), dealer_rng.gen());
            t.push(share);
            rem = (rem.0 ^ share.0, rem.1 ^ share.1, rem.2 ^ share.2);
        }
        triples[parties - 1].push(rem);
    }

    let shared = Rc::new(Shared {
        circuit: circuit.clone(),
        layout: layout.clone(),
        sched,
        triples,
    });

    let nodes: Vec<PartyNode> = (0..parties)
        .map(|p| PartyNode {
            shared: Rc::clone(&shared),
            me: p,
            inputs: inputs[p].clone(),
            rng: StdRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            shares: vec![false; circuit.wires()],
            input_batches: HashMap::new(),
            layer_batches: HashMap::new(),
            my_de: Vec::new(),
            current_layer: 0,
            output_batches: HashMap::new(),
            my_outputs: Vec::new(),
            result: None,
        })
        .collect();

    let mut sim = Simulator::new(nodes, link);
    let stats = sim.run(circuit.stats().and_depth + 8);
    let nodes = sim.into_nodes();
    let result = nodes[0].result.clone().expect("protocol must converge");
    for (p, node) in nodes.iter().enumerate() {
        assert_eq!(
            node.result.as_ref(),
            Some(&result),
            "party {p} disagrees on the opened outputs"
        );
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};

    #[test]
    fn matches_cleartext_and_other_backends() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(5);
        let b = cb.input_word(5);
        let sum = cb.add_words_expand(&a, &b);
        let ge = {
            let c5 = cb.const_word(20, 6);
            cb.ge_words(&sum, &c5)
        };
        let mut outs = sum.bits().to_vec();
        outs.push(ge);
        let circuit = cb.finish(outs);
        let layout = InputLayout::new(vec![5, 5]);
        for (x, y) in [(0u64, 0u64), (7, 19), (31, 31)] {
            let inputs = vec![to_bits(x, 5), to_bits(y, 5)];
            let clear = circuit.eval(&layout.flatten(&inputs));
            let (sim_out, stats) =
                execute_simulated(&circuit, &layout, &inputs, LinkModel::LAN, 77);
            assert_eq!(sim_out, clear, "x={x} y={y}");
            assert_eq!(word_value(&sim_out[..6]), x + y);
            assert!(
                stats.rounds >= circuit.stats().and_depth,
                "one round per layer"
            );
        }
    }

    #[test]
    fn simulated_time_scales_with_and_depth() {
        // Deeper circuits take more simulated rounds → more latency.
        let build = |chain: usize| {
            let mut cb = CircuitBuilder::new();
            let mut w = cb.input();
            let x = cb.input();
            for _ in 0..chain {
                w = cb.and(w, x);
            }
            (cb.finish(vec![w]), InputLayout::new(vec![1, 1]))
        };
        let (short, l1) = build(2);
        let (long, l2) = build(16);
        let inputs = vec![vec![true], vec![true]];
        let (_, s1) = execute_simulated(&short, &l1, &inputs, LinkModel::LAN, 1);
        let (_, s2) = execute_simulated(&long, &l2, &inputs, LinkModel::LAN, 1);
        assert!(s2.rounds > s1.rounds);
        assert!(s2.simulated_us > s1.simulated_us);
    }

    #[test]
    fn count_below_runs_simulated() {
        use eppi_mpc::circuits::CountBelowCircuit;
        use eppi_mpc::field::Modulus;
        use eppi_mpc::share::split;
        let thresholds = [25u64, 60];
        let cc = CountBelowCircuit::build(3, &thresholds, 8);
        let q = Modulus::pow2(8);
        let mut rng = StdRng::seed_from_u64(2);
        let freqs = [30u64, 10];
        let mut per = vec![vec![0u64; 2]; 3];
        for (j, &f) in freqs.iter().enumerate() {
            let s = split(f, 3, q, &mut rng);
            for (k, &v) in s.values().iter().enumerate() {
                per[k][j] = v;
            }
        }
        let inputs: Vec<Vec<bool>> = per.iter().map(|s| cc.encode_party_input(s)).collect();
        let (out, stats) = execute_simulated(cc.circuit(), cc.layout(), &inputs, LinkModel::LAN, 3);
        assert_eq!(cc.decode_count(&out), 1);
        assert!(stats.simulated_us > 0.0);
        assert!(stats.bytes > 0);
    }
}
