//! The trusted-party-free two-phase ε-PPI construction (Alg. 1, Fig. 3).
//!
//! This is the paper's headline protocol: no trusted third party and no
//! mutual trust between providers. The computation flow follows the
//! MPC-minimizing reordering of Formula 9:
//!
//! 1. In **cleartext**, every party derives the public per-identity
//!    frequency thresholds `t_j = σ'_j · m` from the (public) privacy
//!    degrees `ε_j` — the heavy floating-point policy math happens on
//!    public data only.
//! 2. **SecSumShare** reduces the `m`-provider secure frequency sum to
//!    `c` coordinator share vectors (cheap, constant rounds).
//! 3. **CountBelow MPC** among the `c` coordinators reveals only the
//!    *number* of common identities; λ follows from Eq. 7 in cleartext.
//! 4. **Mix-decision MPC** reveals one bit per identity:
//!    `common ∨ coin(λ)`. Identities with bit 1 publish with `β = 1`;
//!    only for the rest do the coordinators reconstruct the frequency
//!    and evaluate `β*` in cleartext — mixed and common identities'
//!    frequencies are never revealed, defeating the common-identity
//!    attack.
//! 5. **Randomized publication** runs locally at every provider (Eq. 2).
//!
//! The decoy-fraction target ξ is taken as `max_j ε_j` over *all*
//! identities — a conservative upper bound of the paper's
//! `max ε over common identities`, since which identities are common is
//! exactly what stays hidden from the protocol participants.

use crate::countbelow::{run_count_below, run_mix_decision, Backend, StageReport};
use crate::secsum::{secsumshare_sim, secsumshare_threaded_stats};
use eppi_core::error::EppiError;
use eppi_core::mixing::lambda_for;
use eppi_core::model::{Epsilon, MembershipMatrix, PublishedIndex};
use eppi_core::policy::{BetaPolicy, PolicyKind};
use eppi_core::publish::publish_vector_at;
use eppi_mpc::field::Modulus;
use eppi_mpc::share::recombine_raw;
use eppi_net::sim::{LinkModel, NetStats};
use eppi_telemetry::Registry;
use std::time::{Duration, Instant};

/// Configuration of the distributed construction protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Collusion-tolerance parameter: number of coordinators `c`
    /// (the paper's experiments use `c = 3`).
    pub c: usize,
    /// The β-calculation policy (public parameters).
    pub policy: PolicyKind,
    /// Bits per coin used for the Bernoulli(λ) mixing coin.
    pub coin_bits: usize,
    /// Link model for the SecSumShare traffic accounting.
    pub link: LinkModel,
    /// MPC backend for the coordinator stage.
    pub backend: Backend,
    /// Seed driving every random choice of the run.
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            c: 3,
            policy: PolicyKind::default(),
            coin_bits: 16,
            link: LinkModel::LAN,
            backend: Backend::InProcess,
            seed: 0,
        }
    }
}

/// Wall-clock split of one construction run by protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseWall {
    /// Cleartext threshold derivation (Alg. 1 line 2).
    pub thresholds: Duration,
    /// SecSumShare across all providers (phase 1.1).
    pub secsum: Duration,
    /// CountBelow MPC among the coordinators (phase 1.2a).
    pub count: Duration,
    /// Cleartext λ derivation from the revealed count (Eq. 7) —
    /// deliberately separate from `mix` so the MPC phase timings stay
    /// pure MPC.
    pub lambda: Duration,
    /// Mix-decision MPC among the coordinators (phase 1.2b).
    pub mix: Duration,
    /// β evaluation + randomized publication (phase 2).
    pub publish: Duration,
}

impl PhaseWall {
    /// `(name, duration)` pairs in protocol order — the iteration the
    /// telemetry exporter and report tables share.
    pub fn named(&self) -> [(&'static str, Duration); 6] {
        [
            ("thresholds", self.thresholds),
            ("secsum", self.secsum),
            ("count", self.count),
            ("lambda", self.lambda),
            ("mix", self.mix),
            ("publish", self.publish),
        ]
    }
}

/// Cost breakdown of one distributed construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConstructionReport {
    /// SecSumShare traffic (phase 1.1).
    pub secsum: NetStats,
    /// CountBelow MPC cost (phase 1.2a).
    pub count_stage: StageReport,
    /// Mix-decision MPC cost (phase 1.2b).
    pub mix_stage: StageReport,
    /// Per-phase wall-clock split of the run.
    pub phases: PhaseWall,
    /// End-to-end wall-clock time of the protocol run.
    pub wall: Duration,
    /// Epoch the run produced (`0` for a from-scratch construction; see
    /// `epoch::construct_delta` for the incremental path).
    pub epoch: u64,
    /// Owner columns the secure stages ran over: `n` for a full
    /// construction, `k = |delta|` for a delta — the unit of work the
    /// epoch lifecycle keeps independent of `n − k`.
    pub columns: usize,
}

impl ConstructionReport {
    /// Total MPC circuit size (the paper's Fig. 6b metric): gates of
    /// both coordinator circuits.
    pub fn circuit_size(&self) -> usize {
        self.count_stage.circuit.total_gates + self.mix_stage.circuit.total_gates
    }
}

/// Result of the distributed construction.
#[derive(Debug, Clone)]
pub struct DistributedConstruction {
    /// The published, obscured index `M'`.
    pub index: PublishedIndex,
    /// Number of common identities found by CountBelow.
    pub common_count: u64,
    /// The mixing probability λ used (Eq. 7).
    pub lambda: f64,
    /// Per-identity mix decisions (`true` ⇒ published with β = 1).
    pub decisions: Vec<bool>,
    /// Cost breakdown.
    pub report: ConstructionReport,
}

/// Derives the public per-identity frequency thresholds `t_j = ⌈σ'_j·m⌉`
/// above which an identity counts as common for its `ε_j` (Alg. 1
/// line 2: "σ′(·) is calculated under condition β* = 1").
pub fn frequency_thresholds(policy: PolicyKind, epsilons: &[Epsilon], m: usize) -> Vec<u64> {
    epsilons
        .iter()
        .map(|&e| {
            let sigma = policy.sigma_threshold(e, m);
            // f ≥ σ'·m for integer f ⇔ f ≥ ⌈σ'·m⌉ (tolerating float
            // noise just below an integer boundary).
            (sigma * m as f64 - 1e-9).ceil().max(0.0) as u64
        })
        .collect()
}

/// Share-group width: smallest `w` with `2^w > m` (sums fit without
/// wrap).
pub fn share_width(m: usize) -> usize {
    (usize::BITS - m.leading_zeros()) as usize
}

/// Runs the full trusted-party-free ε-PPI construction over the network
/// described by `matrix` (each row being one provider's private local
/// vector).
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] when `epsilons` does not
/// match the owner count, [`EppiError::NetworkTooSmall`] when there are
/// fewer providers than coordinators, or a policy-parameter error for an
/// invalid `config.policy`.
pub fn construct_distributed(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
) -> Result<DistributedConstruction, EppiError> {
    construct_distributed_with_registry(matrix, epsilons, config, eppi_telemetry::global())
}

/// [`construct_distributed`] reporting telemetry into a caller-owned
/// registry: per-phase wall times land in the
/// `construct.phase_ns{phase=…}` histogram family ([`PhaseWall::named`]
/// order), the run total in `construct.wall_ns`, MPC circuit sizes in
/// `construct.gates{stage=…}`, and SecSumShare traffic in
/// `secsum.messages` / `secsum.bytes`.
///
/// # Errors
///
/// Same contract as [`construct_distributed`].
pub fn construct_distributed_with_registry(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
    registry: &Registry,
) -> Result<DistributedConstruction, EppiError> {
    construct_full(matrix, epsilons, config, registry).map(|full| full.out)
}

/// A full construction plus the protocol state the epoch lifecycle
/// retains between runs (`epoch::IndexEpoch`): the coordinator share
/// vectors and the public thresholds, which a later `construct_delta`
/// needs to update the common count incrementally.
pub(crate) struct FullConstruction {
    pub out: DistributedConstruction,
    /// `shares[k][j]`: coordinator `k`'s additive frequency share of
    /// owner `j`.
    pub shares: Vec<Vec<u64>>,
    /// The public per-owner frequency thresholds `t_j`.
    pub thresholds: Vec<u64>,
}

pub(crate) fn construct_full(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
    registry: &Registry,
) -> Result<FullConstruction, EppiError> {
    if epsilons.len() != matrix.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "epsilons",
            expected: matrix.owners(),
            actual: epsilons.len(),
        });
    }
    config.policy.validate()?;
    let m = matrix.providers();
    let n = matrix.owners();
    if m < config.c || config.c == 0 {
        return Err(EppiError::NetworkTooSmall {
            providers: m,
            required: config.c.max(1),
        });
    }

    let started = Instant::now();
    let width = share_width(m);
    let modulus = Modulus::pow2(width as u32);

    // Cleartext: public thresholds from public ε's (Formula 9 push-down).
    let phase = Instant::now();
    let thresholds = frequency_thresholds(config.policy, epsilons, m);
    let thresholds_wall = phase.elapsed();

    // Phase 1.1 — SecSumShare across all m providers.
    let phase = Instant::now();
    let vectors: Vec<_> = matrix.provider_ids().map(|p| matrix.row(p)).collect();
    // The full batch rides the same backend split as the delta path:
    // thread-backed backends sum over real threads, the simulated ones
    // keep the round simulator. Per-provider seeding is identical, so
    // the shares — and every downstream bit — do not depend on this
    // choice.
    let secsum = match config.backend {
        crate::Backend::Threaded | crate::Backend::Pipelined { .. } => {
            secsumshare_threaded_stats(&vectors, config.c, modulus, config.seed)
        }
        crate::Backend::InProcess | crate::Backend::Simulated => {
            secsumshare_sim(&vectors, config.c, modulus, config.link, config.seed)
        }
    };
    let secsum_wall = phase.elapsed();

    // Phase 1.2a — CountBelow among the c coordinators.
    let phase = Instant::now();
    let (common_count, count_stage) = run_count_below(
        &secsum.coordinator_shares,
        &thresholds,
        width,
        config.backend,
        config.seed ^ 0xcb,
    );
    let count_wall = phase.elapsed();

    // Cleartext: λ from the revealed count (Eq. 7), with the
    // conservative ξ = max ε over all identities. Timed on its own so
    // the adjacent MPC phase timings stay pure MPC.
    let phase = Instant::now();
    let xi = epsilons.iter().map(|e| e.value()).fold(0.0f64, f64::max);
    let lambda = lambda_for(common_count as usize, n, xi);
    let lambda_wall = phase.elapsed();

    // Phase 1.2b — mix decisions among the c coordinators.
    let phase = Instant::now();
    let (decisions, mix_stage) = run_mix_decision(
        &secsum.coordinator_shares,
        &thresholds,
        width,
        config.coin_bits,
        lambda,
        config.backend,
        config.seed ^ 0x313,
    );
    let mix_wall = phase.elapsed();

    // Cleartext: reconstruct frequencies only for β*-published
    // identities; evaluate the policy on the revealed σ.
    let phase = Instant::now();
    let betas: Vec<f64> = decisions
        .iter()
        .enumerate()
        .map(|(j, &mixed)| {
            if mixed {
                1.0
            } else {
                let parts: Vec<u64> = secsum.coordinator_shares.iter().map(|v| v[j]).collect();
                let freq = recombine_raw(&parts, modulus);
                let sigma = freq as f64 / m as f64;
                config.policy.beta(sigma, epsilons[j], m)
            }
        })
        .collect();

    // Phase 2 — randomized publication, locally at every provider,
    // under the deterministic per-cell coins keyed by (epoch_seed,
    // provider, owner): cells whose membership bit and β don't change
    // publish identically in every epoch of the lineage, which is the
    // anti-intersection invariant (DESIGN.md §10).
    let mut published = MembershipMatrix::new(m, n);
    for provider in matrix.provider_ids() {
        let row = publish_vector_at(&matrix.row(provider), &betas, config.seed);
        published.set_row(&row);
    }

    let publish_wall = phase.elapsed();

    let report = ConstructionReport {
        secsum: secsum.stats,
        count_stage,
        mix_stage,
        phases: PhaseWall {
            thresholds: thresholds_wall,
            secsum: secsum_wall,
            count: count_wall,
            lambda: lambda_wall,
            mix: mix_wall,
            publish: publish_wall,
        },
        wall: started.elapsed(),
        epoch: 0,
        columns: n,
    };

    emit_report(registry, &report);

    Ok(FullConstruction {
        out: DistributedConstruction {
            index: PublishedIndex::new(published, betas),
            common_count,
            lambda,
            decisions,
            report,
        },
        shares: secsum.coordinator_shares,
        thresholds,
    })
}

/// Writes one run's [`ConstructionReport`] into the registry — shared
/// by the full and delta construction paths so both land in the same
/// `construct.*` / `secsum.*` families.
pub(crate) fn emit_report(registry: &Registry, report: &ConstructionReport) {
    for (phase, wall) in report.phases.named() {
        registry
            .histogram("construct.phase_ns", &[("phase", phase)])
            .record(wall.as_nanos() as u64);
    }
    registry
        .histogram("construct.wall_ns", &[])
        .record(report.wall.as_nanos() as u64);
    registry
        .counter("construct.gates", &[("stage", "count")])
        .add(report.count_stage.circuit.total_gates as u64);
    registry
        .counter("construct.gates", &[("stage", "mix")])
        .add(report.mix_stage.circuit.total_gates as u64);
    registry
        .counter("secsum.messages", &[])
        .add(report.secsum.messages);
    registry
        .counter("secsum.bytes", &[])
        .add(report.secsum.bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::{OwnerId, ProviderId};
    use eppi_core::privacy::{owner_privacy, success_ratio};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn matrix_with_freqs(m: usize, freqs: &[usize]) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, freqs.len());
        for (j, &f) in freqs.iter().enumerate() {
            for p in 0..f {
                mat.set(ProviderId(p as u32), OwnerId(j as u32), true);
            }
        }
        mat
    }

    #[test]
    fn recall_is_complete_and_commons_broadcast() {
        let mat = matrix_with_freqs(40, &[38, 4, 0]);
        let e = vec![eps(0.5); 3];
        let cfg = ProtocolConfig::default();
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        // Truthful rule.
        for owner in mat.owner_ids() {
            for p in mat.providers_of(owner) {
                assert!(out.index.matrix().get(p, owner));
            }
        }
        // Identity 0 (38/40 with ε = 0.5) is common ⇒ β = 1 ⇒ all 40.
        assert!(out.common_count >= 1);
        assert_eq!(out.index.query(OwnerId(0)).len(), 40);
        assert!(out.decisions[0]);
    }

    #[test]
    fn betas_match_centralized_policy_for_unmixed_identities() {
        let mat = matrix_with_freqs(100, &[10, 25, 2]);
        let e = vec![eps(0.3), eps(0.6), eps(0.4)];
        let cfg = ProtocolConfig {
            policy: PolicyKind::Basic,
            seed: 5,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        for (j, (&mixed, &eps_j)) in out.decisions.iter().zip(&e).enumerate() {
            if !mixed {
                let sigma = mat.sigma(OwnerId(j as u32));
                let expect = PolicyKind::Basic.beta(sigma, eps_j, 100);
                let got = out.index.betas()[j];
                assert!(
                    (got - expect).abs() < 1e-12,
                    "identity {j}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn privacy_requirement_met_with_chernoff() {
        let m = 600;
        let freqs = vec![30usize; 40];
        let mat = matrix_with_freqs(m, &freqs);
        let e = vec![eps(0.5); 40];
        let cfg = ProtocolConfig {
            policy: PolicyKind::Chernoff { gamma: 0.9 },
            seed: 17,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        let ratio = success_ratio(&mat, &out.index, &e, true);
        assert!(ratio >= 0.85, "success ratio {ratio}");
    }

    #[test]
    fn common_count_matches_ground_truth() {
        // ε = 0.5 with basic policy ⇒ σ' = 0.5: identities at ≥ 50%
        // frequency are common.
        let mat = matrix_with_freqs(60, &[40, 30, 29, 10]);
        let e = vec![eps(0.5); 4];
        let cfg = ProtocolConfig {
            policy: PolicyKind::Basic,
            seed: 3,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        assert_eq!(out.common_count, 2, "40/60 and 30/60 are ≥ 0.5");
    }

    #[test]
    fn mixing_raises_lambda_with_commons_present() {
        let mut freqs = vec![2usize; 50];
        freqs[0] = 58;
        let mat = matrix_with_freqs(60, &freqs);
        let e = vec![eps(0.8); 50];
        let cfg = ProtocolConfig {
            seed: 8,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        assert!(out.common_count >= 1);
        assert!(out.lambda > 0.0, "λ must be positive with commons present");
    }

    #[test]
    fn errors_are_reported() {
        let mat = matrix_with_freqs(2, &[1]);
        let e = vec![eps(0.5)];
        let cfg = ProtocolConfig {
            c: 3,
            ..ProtocolConfig::default()
        };
        assert!(matches!(
            construct_distributed(&mat, &e, &cfg),
            Err(EppiError::NetworkTooSmall { .. })
        ));
        let cfg = ProtocolConfig::default();
        assert!(matches!(
            construct_distributed(&mat, &[], &cfg),
            Err(EppiError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn thresholds_follow_policy_sigma() {
        // Basic policy: σ' = 1 − ε ⇒ t = ⌈(1−ε)·m⌉.
        let t = frequency_thresholds(PolicyKind::Basic, &[eps(0.5), eps(0.8)], 100);
        assert_eq!(t, vec![50, 20]);
    }

    #[test]
    fn share_width_covers_m() {
        assert_eq!(share_width(1), 1);
        assert_eq!(share_width(2), 2);
        assert_eq!(share_width(255), 8);
        assert_eq!(share_width(256), 9);
        for m in [1usize, 7, 64, 1000] {
            assert!(1u64 << share_width(m) > m as u64);
        }
    }

    #[test]
    fn report_accounts_all_stages() {
        let mat = matrix_with_freqs(30, &[5, 10]);
        let e = vec![eps(0.4); 2];
        let out = construct_distributed(&mat, &e, &ProtocolConfig::default()).unwrap();
        assert!(out.report.secsum.messages > 0);
        assert!(out.report.count_stage.circuit.total_gates > 0);
        assert!(out.report.mix_stage.circuit.total_gates > 0);
        assert!(out.report.circuit_size() > 0);
        assert_eq!(out.report.epoch, 0, "from-scratch runs are epoch 0");
        assert_eq!(out.report.columns, 2, "full runs cover all n columns");
        // The per-phase split never exceeds the end-to-end wall time.
        let split: Duration = out.report.phases.named().iter().map(|&(_, d)| d).sum();
        assert!(
            split <= out.report.wall,
            "{split:?} > {:?}",
            out.report.wall
        );
    }

    #[test]
    fn construction_publishes_phase_telemetry() {
        use eppi_telemetry::MetricValue;

        let mat = matrix_with_freqs(30, &[5, 10]);
        let e = vec![eps(0.4); 2];
        let registry = Registry::new();
        let out =
            construct_distributed_with_registry(&mat, &e, &ProtocolConfig::default(), &registry)
                .unwrap();
        let snap = registry.snapshot();
        // One sample per phase, every phase present (incl. the
        // dedicated cleartext λ phase).
        let phases = snap.family("construct.phase_ns");
        assert_eq!(phases.len(), 6, "{snap:?}");
        for m in phases {
            match &m.value {
                MetricValue::Histogram(h) => assert_eq!(h.count, 1, "{}", m.id()),
                other => panic!("unexpected metric {other:?}"),
            }
        }
        assert_eq!(
            snap.expect("construct.gates", &[("stage", "count")])
                .unwrap()
                .value,
            MetricValue::Counter(out.report.count_stage.circuit.total_gates as u64)
        );
        assert_eq!(
            snap.expect("secsum.messages", &[]).unwrap().value,
            MetricValue::Counter(out.report.secsum.messages)
        );
    }

    #[test]
    fn measured_privacy_example() {
        let mat = matrix_with_freqs(500, &[20]);
        let e = vec![eps(0.7)];
        let cfg = ProtocolConfig {
            seed: 2,
            ..ProtocolConfig::default()
        };
        let out = construct_distributed(&mat, &e, &cfg).unwrap();
        let p = owner_privacy(&mat, &out.index, OwnerId(0));
        assert!(p.satisfies(e[0]) || p.false_positive_rate.unwrap_or(0.0) > 0.6);
    }
}
