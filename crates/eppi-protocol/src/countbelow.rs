//! The generic-MPC stage among the `c` coordinators (Alg. 1 stage 2).
//!
//! Drives the compiled CountBelow and mix-decision circuits through one
//! of four MPC backends:
//!
//! * [`Backend::InProcess`] — the single-threaded reference evaluator
//!   (`eppi_mpc::gmw`), exact and fast, used by tests and large sweeps;
//! * [`Backend::Threaded`] — one OS thread per coordinator with real
//!   message exchange, used by the wall-clock experiments (Fig. 6a/6c);
//! * [`Backend::Simulated`] — the round-based network simulator, which
//!   additionally reports *simulated network time* under a LAN link
//!   model (the quantity that dominated the paper's Emulab numbers);
//! * [`Backend::Pipelined`] — the stage-based pipelined runtime
//!   (DESIGN.md §15): the column batch is split into independent
//!   pipeline lanes evaluated concurrently by a worker pool, with
//!   per-peer send coalescing. Counts are summed and decisions
//!   concatenated across lanes — exact, because CountBelow is a sum of
//!   per-column indicators and the mix coins are keyed by global owner
//!   id.
//!
//! All produce identical results; only the reported cost differs (the
//! pipelined backend's `circuit` stats merge the per-lane circuits:
//! gate counts are summed, depths maxed).

use crate::pipelined_gmw::{execute_pipelined, LaneSpec, PipelineConfig, PipelineReport};
use crate::sim_gmw::execute_simulated;
use crate::threaded_gmw::execute_threaded;
use eppi_core::model::OwnerId;
use eppi_mpc::circuit::CircuitStats;
use eppi_mpc::circuits::{lambda_threshold, CountBelowCircuit, MixDecisionCircuit};
use eppi_mpc::gmw;
use eppi_net::sim::LinkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which MPC engine executes the coordinator circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Single-threaded reference evaluation.
    #[default]
    InProcess,
    /// One OS thread per coordinator (wall-clock backend).
    Threaded,
    /// Round-based network simulation (simulated-time backend; LAN link
    /// model).
    Simulated,
    /// Stage-based pipelined runtime: the column batch runs as
    /// independent lanes on `workers` worker threads per coordinator,
    /// with streamed triple dealing and coalesced sends.
    Pipelined {
        /// Lane-evaluation worker threads per coordinator.
        workers: usize,
    },
}

/// Per-lane seed spread of the pipelined backend: lane `i` of a batch
/// seeded `s` runs as a standalone circuit seeded `lane_seed(s, i)`.
fn lane_seed(seed: u64, lane: usize) -> u64 {
    seed ^ (lane as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Lane count for a pipelined batch of `columns` columns: enough lanes
/// to keep every worker busy with headroom, never more than columns.
fn lane_count(columns: usize, workers: usize) -> usize {
    (workers.max(1) * 2).min(columns.max(1))
}

/// Merges per-lane circuit statistics: gate and wire counts sum, depths
/// max (lanes run concurrently).
fn merge_stats(per_lane: impl IntoIterator<Item = CircuitStats>) -> CircuitStats {
    per_lane
        .into_iter()
        .fold(CircuitStats::default(), |mut acc, s| {
            acc.inputs += s.inputs;
            acc.outputs += s.outputs;
            acc.total_gates += s.total_gates;
            acc.and_gates += s.and_gates;
            acc.xor_gates += s.xor_gates;
            acc.not_gates += s.not_gates;
            acc.const_gates += s.const_gates;
            acc.depth = acc.depth.max(s.depth);
            acc.and_depth = acc.and_depth.max(s.and_depth);
            acc
        })
}

/// Maps a pipeline run's report (plus the merged circuit stats) onto
/// the stage-report shape shared by all backends.
fn pipeline_stage_report(circuit: CircuitStats, report: &PipelineReport) -> StageReport {
    StageReport {
        circuit,
        messages: report.messages,
        bits: report.bits_sent,
        bytes: report.bytes,
        simulated_us: 0.0,
    }
}

/// Cost report of one secure stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageReport {
    /// Statistics of the compiled circuit (the paper's circuit-size
    /// metric).
    pub circuit: CircuitStats,
    /// Messages exchanged during evaluation.
    pub messages: u64,
    /// Logical payload bits exchanged (the paper's cost model; see the
    /// traffic convention in `eppi-net`'s crate docs).
    pub bits: u64,
    /// On-the-wire bytes of the packed encoding exchanged.
    pub bytes: u64,
    /// Simulated network time in microseconds (only the
    /// [`Backend::Simulated`] backend fills this; 0 otherwise).
    pub simulated_us: f64,
}

fn run_circuit(
    circuit: &eppi_mpc::circuit::Circuit,
    layout: &eppi_mpc::circuit::InputLayout,
    inputs: &[Vec<bool>],
    backend: Backend,
    seed: u64,
) -> (Vec<bool>, StageReport) {
    let stats = circuit.stats();
    match backend {
        Backend::InProcess => {
            let mut rng = StdRng::seed_from_u64(seed);
            let (out, gstats) = gmw::execute(circuit, layout, inputs, &mut rng);
            (
                out,
                StageReport {
                    circuit: stats,
                    messages: gstats.messages,
                    bits: gstats.bits_sent,
                    bytes: gstats.bytes,
                    ..StageReport::default()
                },
            )
        }
        Backend::Threaded => {
            let (out, report) = execute_threaded(circuit, layout, inputs, seed);
            (
                out,
                StageReport {
                    circuit: stats,
                    messages: report.messages,
                    bits: report.bits_sent,
                    bytes: report.bytes,
                    ..StageReport::default()
                },
            )
        }
        Backend::Simulated => {
            let (out, net) = execute_simulated(circuit, layout, inputs, LinkModel::LAN, seed);
            (
                out,
                StageReport {
                    circuit: stats,
                    messages: net.messages,
                    bits: net.bits,
                    bytes: net.bytes,
                    simulated_us: net.simulated_us,
                },
            )
        }
        Backend::Pipelined { workers } => {
            let lanes = [LaneSpec {
                circuit,
                layout,
                inputs,
                seed,
            }];
            let (mut outs, report) =
                execute_pipelined(&lanes, &PipelineConfig::with_workers(workers))
                    .expect("in-process pipeline cannot lose a party");
            (outs.swap_remove(0), pipeline_stage_report(stats, &report))
        }
    }
}

/// Runs the CountBelow MPC: returns the number of common identities
/// (`Σ_{σ ≥ σ'} 1`) without revealing which identities are common.
///
/// `coordinator_shares[k][j]` is coordinator `k`'s additive share of
/// identity `j`'s frequency over `Z_{2^width}`.
///
/// # Panics
///
/// Panics if the share vectors are ragged or disagree with
/// `thresholds.len()`.
pub fn run_count_below(
    coordinator_shares: &[Vec<u64>],
    thresholds: &[u64],
    width: usize,
    backend: Backend,
    seed: u64,
) -> (u64, StageReport) {
    let c = coordinator_shares.len();
    assert!(c >= 1, "at least one coordinator required");
    assert!(
        coordinator_shares
            .iter()
            .all(|v| v.len() == thresholds.len()),
        "share vectors must match the threshold count"
    );
    if let Backend::Pipelined { workers } = backend {
        if thresholds.len() > 1 {
            return run_count_below_pipelined(coordinator_shares, thresholds, width, workers, seed);
        }
    }
    let cc = CountBelowCircuit::build(c, thresholds, width);
    let inputs: Vec<Vec<bool>> = coordinator_shares
        .iter()
        .map(|s| cc.encode_party_input(s))
        .collect();
    let (out, report) = run_circuit(cc.circuit(), cc.layout(), &inputs, backend, seed);
    (cc.decode_count(&out), report)
}

/// The multi-lane CountBelow: columns are chunked into independent
/// lanes (one CountBelow sub-circuit each) and run concurrently; the
/// per-lane counts sum to exactly the single-circuit count.
fn run_count_below_pipelined(
    coordinator_shares: &[Vec<u64>],
    thresholds: &[u64],
    width: usize,
    workers: usize,
    seed: u64,
) -> (u64, StageReport) {
    let c = coordinator_shares.len();
    let ncols = thresholds.len();
    let lanes_n = lane_count(ncols, workers);
    let chunk = ncols.div_ceil(lanes_n);
    let ranges: Vec<(usize, usize)> = (0..ncols)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(ncols)))
        .collect();
    let circuits: Vec<CountBelowCircuit> = ranges
        .iter()
        .map(|&(lo, hi)| CountBelowCircuit::build(c, &thresholds[lo..hi], width))
        .collect();
    let lane_inputs: Vec<Vec<Vec<bool>>> = ranges
        .iter()
        .zip(&circuits)
        .map(|(&(lo, hi), cc)| {
            coordinator_shares
                .iter()
                .map(|s| cc.encode_party_input(&s[lo..hi]))
                .collect()
        })
        .collect();
    let specs: Vec<LaneSpec<'_>> = circuits
        .iter()
        .zip(&lane_inputs)
        .enumerate()
        .map(|(i, (cc, inputs))| LaneSpec {
            circuit: cc.circuit(),
            layout: cc.layout(),
            inputs,
            seed: lane_seed(seed, i),
        })
        .collect();
    let (outs, report) = execute_pipelined(&specs, &PipelineConfig::with_workers(workers))
        .expect("in-process pipeline cannot lose a party");
    let count: u64 = outs
        .iter()
        .zip(&circuits)
        .map(|(out, cc)| cc.decode_count(out))
        .sum();
    let stats = merge_stats(circuits.iter().map(|cc| cc.circuit().stats()));
    (count, pipeline_stage_report(stats, &report))
}

/// Coordinator `k`'s coin contribution for `owner`: `coin_bits` uniform
/// bits through a splitmix64-style finalizer keyed by `(seed, k,
/// owner)`.
///
/// Keying by the *global* owner id — rather than drawing a sequential
/// RNG stream over vector positions — makes the joint coin a pure
/// function of the identity and the lineage seed. A delta construction
/// that re-runs the mix MPC over a column-sliced share vector therefore
/// reproduces exactly the coins a from-scratch run would use for those
/// owners, which is what makes delta and full constructions
/// bit-identical (see `epoch::construct_delta`).
fn mix_coin(seed: u64, coordinator: usize, owner: OwnerId, coin_bits: usize) -> u64 {
    let mut h = seed
        ^ 0xc01_u64
        ^ ((coordinator as u64) << 32)
        ^ (u64::from(owner.0) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h & ((1u64 << coin_bits) - 1)
}

/// Runs the mix-decision MPC: per identity, the bit
/// `common_j ∨ coin_j(λ)` (Eq. 6). Each coordinator contributes its own
/// coin randomness, so the joint coin stays uniform as long as one
/// coordinator is honest.
///
/// # Panics
///
/// Panics under the same conditions as [`run_count_below`].
pub fn run_mix_decision(
    coordinator_shares: &[Vec<u64>],
    thresholds: &[u64],
    width: usize,
    coin_bits: usize,
    lambda: f64,
    backend: Backend,
    seed: u64,
) -> (Vec<bool>, StageReport) {
    let owners: Vec<OwnerId> = (0..thresholds.len() as u32).map(OwnerId).collect();
    run_mix_decision_for_owners(
        coordinator_shares,
        thresholds,
        &owners,
        width,
        coin_bits,
        lambda,
        backend,
        seed,
    )
}

/// [`run_mix_decision`] over an explicit owner-id slice: position `j`
/// of the share/threshold vectors belongs to global identity
/// `owners[j]`, and the coordinator coins are keyed by that id. A full
/// construction passes `owners = [0, 1, …, n-1]`; a delta construction
/// passes only its touched columns and gets the same coins — and hence
/// the same decisions — a from-scratch run would produce for them.
///
/// # Panics
///
/// Panics under the same conditions as [`run_count_below`], or if
/// `owners.len()` disagrees with `thresholds.len()`.
#[allow(clippy::too_many_arguments)]
pub fn run_mix_decision_for_owners(
    coordinator_shares: &[Vec<u64>],
    thresholds: &[u64],
    owners: &[OwnerId],
    width: usize,
    coin_bits: usize,
    lambda: f64,
    backend: Backend,
    seed: u64,
) -> (Vec<bool>, StageReport) {
    let c = coordinator_shares.len();
    assert!(c >= 1, "at least one coordinator required");
    assert!(
        coordinator_shares
            .iter()
            .all(|v| v.len() == thresholds.len()),
        "share vectors must match the threshold count"
    );
    assert_eq!(
        owners.len(),
        thresholds.len(),
        "one owner id per column required"
    );
    if let Backend::Pipelined { workers } = backend {
        if thresholds.len() > 1 {
            return run_mix_decision_pipelined(
                coordinator_shares,
                thresholds,
                owners,
                width,
                coin_bits,
                lambda,
                workers,
                seed,
            );
        }
    }
    let mc = MixDecisionCircuit::build(
        c,
        thresholds,
        width,
        coin_bits,
        lambda_threshold(lambda, coin_bits),
    );
    let inputs: Vec<Vec<bool>> = coordinator_shares
        .iter()
        .enumerate()
        .map(|(k, s)| {
            let coins: Vec<u64> = owners
                .iter()
                .map(|&owner| mix_coin(seed, k, owner, coin_bits))
                .collect();
            mc.encode_party_input(s, &coins)
        })
        .collect();
    let (out, report) = run_circuit(mc.circuit(), mc.layout(), &inputs, backend, seed ^ 0xdec);
    (mc.decode_decisions(&out), report)
}

/// The multi-lane mix decision: columns are chunked into independent
/// lanes and run concurrently, decisions concatenated in column order.
/// Exact, because the coordinator coins are keyed by global owner id —
/// a lane reproduces precisely the coins the single circuit would use
/// for its columns.
#[allow(clippy::too_many_arguments)]
fn run_mix_decision_pipelined(
    coordinator_shares: &[Vec<u64>],
    thresholds: &[u64],
    owners: &[OwnerId],
    width: usize,
    coin_bits: usize,
    lambda: f64,
    workers: usize,
    seed: u64,
) -> (Vec<bool>, StageReport) {
    let c = coordinator_shares.len();
    let ncols = thresholds.len();
    let lanes_n = lane_count(ncols, workers);
    let chunk = ncols.div_ceil(lanes_n);
    let ranges: Vec<(usize, usize)> = (0..ncols)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(ncols)))
        .collect();
    let lam = lambda_threshold(lambda, coin_bits);
    let circuits: Vec<MixDecisionCircuit> = ranges
        .iter()
        .map(|&(lo, hi)| MixDecisionCircuit::build(c, &thresholds[lo..hi], width, coin_bits, lam))
        .collect();
    let lane_inputs: Vec<Vec<Vec<bool>>> = ranges
        .iter()
        .zip(&circuits)
        .map(|(&(lo, hi), mc)| {
            coordinator_shares
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    let coins: Vec<u64> = owners[lo..hi]
                        .iter()
                        .map(|&owner| mix_coin(seed, k, owner, coin_bits))
                        .collect();
                    mc.encode_party_input(&s[lo..hi], &coins)
                })
                .collect()
        })
        .collect();
    let specs: Vec<LaneSpec<'_>> = circuits
        .iter()
        .zip(&lane_inputs)
        .enumerate()
        .map(|(i, (mc, inputs))| LaneSpec {
            circuit: mc.circuit(),
            layout: mc.layout(),
            inputs,
            seed: lane_seed(seed ^ 0xdec, i),
        })
        .collect();
    let (outs, report) = execute_pipelined(&specs, &PipelineConfig::with_workers(workers))
        .expect("in-process pipeline cannot lose a party");
    let decisions: Vec<bool> = outs
        .iter()
        .zip(&circuits)
        .flat_map(|(out, mc)| mc.decode_decisions(out))
        .collect();
    let stats = merge_stats(circuits.iter().map(|mc| mc.circuit().stats()));
    (decisions, pipeline_stage_report(stats, &report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_mpc::field::Modulus;
    use eppi_mpc::share::split;

    fn share_out(freqs: &[u64], c: usize, width: usize, seed: u64) -> Vec<Vec<u64>> {
        let q = Modulus::pow2(width as u32);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut per = vec![vec![0u64; freqs.len()]; c];
        for (j, &f) in freqs.iter().enumerate() {
            let s = split(f, c, q, &mut rng);
            for (k, &v) in s.values().iter().enumerate() {
                per[k][j] = v;
            }
        }
        per
    }

    #[test]
    fn count_below_both_backends_agree() {
        let freqs = [120u64, 3, 77, 200, 9];
        let thresholds = [100u64, 100, 70, 100, 100];
        let shares = share_out(&freqs, 3, 10, 1);
        let (a, ra) = run_count_below(&shares, &thresholds, 10, Backend::InProcess, 11);
        let (b, rb) = run_count_below(&shares, &thresholds, 10, Backend::Threaded, 11);
        assert_eq!(a, 3); // 120, 77, 200 meet their thresholds.
        assert_eq!(a, b);
        assert_eq!(ra.circuit, rb.circuit);
        assert!(ra.bytes > 0 && rb.bytes > 0);
        assert_eq!(ra.bits, rb.bits, "both backends count logical bits");
    }

    #[test]
    fn simulated_backend_agrees_and_reports_time() {
        let freqs = [120u64, 3, 77];
        let thresholds = [100u64, 100, 70];
        let shares = share_out(&freqs, 3, 10, 7);
        let (a, _) = run_count_below(&shares, &thresholds, 10, Backend::InProcess, 5);
        let (b, rb) = run_count_below(&shares, &thresholds, 10, Backend::Simulated, 5);
        assert_eq!(a, b);
        assert!(rb.simulated_us > 0.0, "simulated backend must report time");
        let (d1, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::InProcess, 6);
        let (d2, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::Simulated, 6);
        assert_eq!(d1, d2, "seed-derived coins make all backends agree");
    }

    #[test]
    fn mix_decision_respects_commons_and_lambda_extremes() {
        let freqs = [120u64, 3];
        let thresholds = [100u64, 100];
        let shares = share_out(&freqs, 3, 10, 2);
        let (d0, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.0, Backend::InProcess, 3);
        assert_eq!(d0, vec![true, false]);
        let (d1, _) = run_mix_decision(&shares, &thresholds, 10, 8, 1.0, Backend::InProcess, 3);
        assert_eq!(d1, vec![true, true]);
    }

    #[test]
    fn mix_decision_threaded_agrees_with_in_process() {
        let freqs = [120u64, 3, 50];
        let thresholds = [100u64, 100, 100];
        let shares = share_out(&freqs, 3, 10, 4);
        let (a, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::InProcess, 5);
        let (b, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::Threaded, 5);
        assert_eq!(a, b, "coins are seed-derived, so backends must agree");
    }

    #[test]
    fn pipelined_backend_agrees_with_in_process() {
        // Seven columns with two workers → four lanes of at most two
        // columns each: the chunked multi-lane path executes, not just
        // the single-circuit fallback.
        let freqs = [120u64, 3, 77, 200, 9, 64, 101];
        let thresholds = [100u64, 100, 70, 100, 100, 60, 100];
        let shares = share_out(&freqs, 3, 10, 13);
        let pipelined = Backend::Pipelined { workers: 2 };
        let (a, ra) = run_count_below(&shares, &thresholds, 10, Backend::InProcess, 21);
        let (b, rb) = run_count_below(&shares, &thresholds, 10, pipelined, 21);
        assert_eq!(a, b, "lane-chunked counts must sum to the full count");
        assert!(rb.bytes > 0, "pipelined runs over the real runtime");
        // Per-column comparators are identical; only the count adders
        // are split across lanes, so the AND totals stay close.
        assert!(rb.circuit.and_gates <= ra.circuit.and_gates);
        let (d1, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::InProcess, 22);
        let (d2, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, pipelined, 22);
        assert_eq!(d1, d2, "global-owner coin keying makes lanes exact");
    }

    #[test]
    fn pipelined_single_column_uses_the_fallback_circuit() {
        let freqs = [120u64];
        let thresholds = [100u64];
        let shares = share_out(&freqs, 3, 10, 14);
        let pipelined = Backend::Pipelined { workers: 4 };
        let (a, _) = run_count_below(&shares, &thresholds, 10, Backend::InProcess, 23);
        let (b, _) = run_count_below(&shares, &thresholds, 10, pipelined, 23);
        assert_eq!(a, b);
        let (d1, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::InProcess, 24);
        let (d2, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, pipelined, 24);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "must match the threshold count")]
    fn ragged_shares_rejected() {
        run_count_below(&[vec![1, 2], vec![3]], &[1, 1], 8, Backend::InProcess, 0);
    }

    #[test]
    fn sliced_mix_decision_reproduces_full_run_coins() {
        // The coins are keyed by global owner id, so re-running the mix
        // MPC over a column slice must reproduce the full run's
        // decisions for those columns — the property the delta
        // construction relies on.
        let freqs = [120u64, 3, 77, 50, 9];
        let thresholds = [100u64, 100, 70, 100, 100];
        let shares = share_out(&freqs, 3, 10, 8);
        let (full, _) = run_mix_decision(&shares, &thresholds, 10, 8, 0.5, Backend::InProcess, 9);
        let idx = [1usize, 3, 4];
        let sliced: Vec<Vec<u64>> = shares
            .iter()
            .map(|v| idx.iter().map(|&j| v[j]).collect())
            .collect();
        let st: Vec<u64> = idx.iter().map(|&j| thresholds[j]).collect();
        let owners: Vec<OwnerId> = idx.iter().map(|&j| OwnerId(j as u32)).collect();
        let (part, _) =
            run_mix_decision_for_owners(&sliced, &st, &owners, 10, 8, 0.5, Backend::InProcess, 9);
        for (t, &j) in idx.iter().enumerate() {
            assert_eq!(part[t], full[j], "column {j}");
        }
    }
}
