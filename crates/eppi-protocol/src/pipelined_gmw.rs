//! Pipelined multi-lane GMW execution — the stage-based driver.
//!
//! The threaded backend ([`crate::threaded_gmw`]) runs one circuit at a
//! time with every party in lockstep: each AND layer is a synchronized
//! broadcast/gather, so the link round-trip time is paid once per layer
//! per circuit, serially. The CountBelow batch of the ε-PPI
//! construction, however, is *many independent circuits* (one per
//! touched column), and nothing about GMW requires their rounds to
//! interleave in lockstep.
//!
//! This module runs those circuits as pipeline *lanes* over one shared
//! network (DESIGN.md §15). Per party, the monolithic protocol loop is
//! split into explicit stages connected by bounded channels:
//!
//! * **Triple supply** — one dealer thread per lane streams each
//!   schedule level's Beaver shares ([`deal_layer_triples`]) into
//!   bounded per-party channels ahead of consumption, instead of
//!   materializing the whole run's triples up front.
//! * **Lane evaluation** — a pool of worker threads drives each lane's
//!   sans-io [`GmwStages`] state machine: local gate evaluation up to
//!   the next exchange, then park on the lane's inbox while *other*
//!   lanes' local work and exchanges proceed.
//! * **Coalesced send** — one sender thread per party drains every
//!   lane's due batches and writes **one frame per peer per flush**
//!   ([`FrameSender`]), so concurrent lanes share wire messages instead
//!   of multiplying them.
//! * **Routing** — one router thread per party demultiplexes incoming
//!   [`LaneItem`]s by `(lane, step)` and completes each lane's exchange
//!   set as soon as all peers have contributed, in any arrival order.
//!
//! The schedule of every stage is **data-independent**: which lanes
//! exchange at which step, the size of every batch, and the total
//! frame/bit counts are all functions of the circuit structures alone,
//! never of share values — so the pipelining leaks nothing the lockstep
//! driver did not (the obliviousness argument of DESIGN.md §15).
//!
//! Outputs are bit-identical to the frozen lockstep oracle: lanes seed
//! their dealer and party RNGs exactly as [`execute_threaded`] seeds
//! its single run, and GMW outputs are deterministic in the inputs.
//! `tests/mpc_backends.rs` proves this under proptest.
//!
//! [`execute_threaded`]: crate::threaded_gmw::execute_threaded

use eppi_mpc::circuit::{Circuit, InputLayout};
use eppi_mpc::gmw_core::{
    deal_layer_triples, deal_packed_triples, logical_bits, protocol_rounds, run_party, PartyCore,
    Schedule,
};
use eppi_mpc::stage::{ChannelTriples, GmwStages, PartyStages, StageOutput};
use eppi_net::pipeline::{
    Frame, FrameReceiver, FrameSender, LaneItem, LinkPacing, PacedFrameTransport, PipelineMetrics,
};
use eppi_net::threaded::{run_parties, TransportError};
use eppi_net::transport::PackedBatch;
use eppi_telemetry::Registry;
use eppi_trace::{SpanCtx, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Seed salt of the triple dealer — identical to the lockstep
/// backends', so a lane's triples match a standalone run of the same
/// circuit from the same seed.
const DEALER_SALT: u64 = 0xd1a1e5;
/// Per-party seed spread — identical to the lockstep backends'.
const PARTY_SALT: u64 = 0x9e3779b97f4a7c15;

/// Tuning of the pipelined runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Lane-evaluation worker threads per party. On a paced link this
    /// is the number of lane round-trips kept in flight concurrently.
    pub workers: usize,
    /// Bounded depth (in schedule levels) of each lane's streaming
    /// triple channel — how far the dealer may run ahead.
    pub triple_buffer: usize,
    /// Optional emulated link latency (absolute delivery deadlines).
    pub pacing: Option<LinkPacing>,
    /// How long a router waits for the next frame before declaring the
    /// network dead.
    pub recv_timeout: Duration,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 2,
            triple_buffer: 4,
            pacing: None,
            recv_timeout: Duration::from_secs(30),
        }
    }
}

impl PipelineConfig {
    /// The default configuration with `workers` lane workers.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig {
            workers,
            ..PipelineConfig::default()
        }
    }
}

/// One independent circuit evaluation in the pipelined batch.
#[derive(Debug, Clone, Copy)]
pub struct LaneSpec<'a> {
    /// The lane's circuit.
    pub circuit: &'a Circuit,
    /// Its input layout (all lanes must agree on the party count).
    pub layout: &'a InputLayout,
    /// Per-party private input bits, indexed by party.
    pub inputs: &'a [Vec<bool>],
    /// The lane's RNG seed — the same value handed to
    /// [`execute_threaded`](crate::threaded_gmw::execute_threaded)
    /// yields a bit-identical standalone run.
    pub seed: u64,
}

/// Per-lane cost figures (deterministic in the circuit structure, so
/// they equal the lockstep oracle's report for the same circuit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneReport {
    /// AND gates evaluated.
    pub and_gates: usize,
    /// Synchronized AND-opening rounds (circuit AND-depth).
    pub and_rounds: usize,
    /// Protocol rounds including input sharing and output opening.
    pub rounds: usize,
    /// Logical payload bits the lane exchanged (all parties summed).
    pub bits_sent: u64,
}

/// Aggregate report of a pipelined run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Number of parties.
    pub parties: usize,
    /// Lanes evaluated.
    pub lanes: usize,
    /// Worker threads per party (`0` for the sequential baseline).
    pub workers: usize,
    /// Messages on the wire — coalesced frames, not lane items.
    pub messages: u64,
    /// On-the-wire bytes of the frame encoding.
    pub bytes: u64,
    /// Total logical payload bits (Σ of the lanes' [`LaneReport`]s).
    pub bits_sent: u64,
    /// Lane items carried by the frames (`/ messages` = the coalescing
    /// factor).
    pub coalesced_items: u64,
    /// Per-lane cost figures, in lane order.
    pub lane_reports: Vec<LaneReport>,
}

/// A worker's message to the coalescing sender stage.
enum OutMsg {
    /// One batch for every peer (input sharing).
    Scatter {
        lane: u32,
        step: u32,
        batches: Vec<PackedBatch>,
    },
    /// The same batch for every peer (AND layers, output opening).
    Broadcast {
        lane: u32,
        step: u32,
        batch: PackedBatch,
    },
}

/// Buckets one worker message into the per-peer staging slots.
fn stage_msg(msg: OutMsg, per_peer: &mut [Vec<LaneItem>], me: usize) {
    match msg {
        OutMsg::Broadcast { lane, step, batch } => {
            for (to, slot) in per_peer.iter_mut().enumerate() {
                if to != me {
                    slot.push(LaneItem {
                        lane,
                        step,
                        batch: batch.clone(),
                    });
                }
            }
        }
        OutMsg::Scatter {
            lane,
            step,
            batches,
        } => {
            for (to, batch) in batches.into_iter().enumerate() {
                if to != me {
                    per_peer[to].push(LaneItem { lane, step, batch });
                }
            }
        }
    }
}

/// What one party's pipeline hands back to the main thread.
struct PartyOutcome {
    lane_outputs: Vec<Option<Vec<bool>>>,
    bits: u64,
    frames: u64,
    items: u64,
    error: Option<TransportError>,
}

/// Runs every lane through the pipelined stage runtime. Returns the
/// lanes' opened outputs (in lane order) and the aggregate report.
/// Telemetry goes to the process-global registry.
///
/// # Errors
///
/// [`TransportError`] when a party stops responding mid-run (the
/// remaining parties time out instead of hanging).
///
/// # Panics
///
/// Panics if the lanes disagree on the party count, a lane's inputs
/// disagree with its layout, or a party thread panics.
pub fn execute_pipelined(
    lanes: &[LaneSpec<'_>],
    config: &PipelineConfig,
) -> Result<(Vec<Vec<bool>>, PipelineReport), TransportError> {
    execute_pipelined_with_registry(lanes, config, eppi_telemetry::global())
}

/// [`execute_pipelined`] reporting telemetry into a caller-owned
/// registry (the `mpc.pipeline.*` family — see [`PipelineMetrics`]).
///
/// # Errors
///
/// [`TransportError`] when a party stops responding mid-run.
///
/// # Panics
///
/// Panics under the same conditions as [`execute_pipelined`].
pub fn execute_pipelined_with_registry(
    lanes: &[LaneSpec<'_>],
    config: &PipelineConfig,
    registry: &Registry,
) -> Result<(Vec<Vec<bool>>, PipelineReport), TransportError> {
    execute_pipelined_traced(lanes, config, registry, &Tracer::disabled(), SpanCtx::NONE)
}

/// [`execute_pipelined_with_registry`] with causal tracing: the run is
/// one `mpc.pipeline` span (payload = lane count), each party runs
/// under an `mpc.party` child span, and every lane evaluation is an
/// `mpc.lane` span (payload = lane index) under its party.
///
/// # Errors
///
/// [`TransportError`] when a party stops responding mid-run.
///
/// # Panics
///
/// Panics under the same conditions as [`execute_pipelined`].
pub fn execute_pipelined_traced(
    lanes: &[LaneSpec<'_>],
    config: &PipelineConfig,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Result<(Vec<Vec<bool>>, PipelineReport), TransportError> {
    if lanes.is_empty() {
        return Ok((Vec::new(), PipelineReport::default()));
    }
    let parties = lanes[0].layout.parties();
    for (i, lane) in lanes.iter().enumerate() {
        assert_eq!(
            lane.layout.parties(),
            parties,
            "lane {i} disagrees on the party count"
        );
        assert_eq!(
            lane.inputs.len(),
            parties,
            "lane {i}: one input vector per party"
        );
    }
    let scheds: Vec<Schedule> = lanes.iter().map(|l| Schedule::new(l.circuit)).collect();
    let lane_reports: Vec<LaneReport> = lanes
        .iter()
        .zip(&scheds)
        .map(|(l, s)| LaneReport {
            and_gates: s.and_gates(),
            and_rounds: s.and_rounds(),
            rounds: protocol_rounds(l.circuit, l.layout, s),
            bits_sent: logical_bits(l.circuit, l.layout),
        })
        .collect();
    // Exchange steps per lane: what the workers emit and the routers
    // await. A lone party never exchanges.
    let steps: Vec<usize> = lanes
        .iter()
        .zip(&scheds)
        .map(|(l, s)| {
            if parties > 1 {
                protocol_rounds(l.circuit, l.layout, s)
            } else {
                0
            }
        })
        .collect();
    let metrics = PipelineMetrics::register(registry);
    let workers = config.workers.max(1);

    let mut exec_span = if parent.is_none() {
        tracer.root("mpc.pipeline")
    } else {
        tracer.child(parent, "mpc.pipeline")
    };
    exec_span.set_payload(lanes.len() as u64);
    let exec_ctx = exec_span.ctx();

    // Streaming triple channels, indexed [party][lane] on the consumer
    // side. The dealers run ahead of consumption up to the bounded
    // depth and park when the lane falls behind.
    let mut triple_txs: Vec<Vec<crossbeam::channel::Sender<_>>> = (0..lanes.len())
        .map(|_| Vec::with_capacity(parties))
        .collect();
    let mut triple_rxs: Vec<Vec<crossbeam::channel::Receiver<_>>> = (0..parties)
        .map(|_| Vec::with_capacity(lanes.len()))
        .collect();
    for lane_txs in &mut triple_txs {
        for party_rxs in &mut triple_rxs {
            let (tx, rx) = crossbeam::channel::bounded(config.triple_buffer.max(1));
            lane_txs.push(tx);
            party_rxs.push(rx);
        }
    }

    let outcomes = crossbeam::thread::scope(|s| {
        // Owned inside the scope so that dropping it after the parties
        // return disconnects any dealer still feeding an aborted lane
        // (otherwise a blocked `send` would keep the scope joined
        // forever on the error path).
        let triple_rxs = triple_rxs;
        for (lane_idx, (lane, lane_txs)) in lanes.iter().zip(triple_txs).enumerate() {
            let sched = &scheds[lane_idx];
            s.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(lane.seed ^ DEALER_SALT);
                for level in sched.levels() {
                    let shares = deal_layer_triples(parties, level.ands.len(), &mut rng);
                    for (tx, share) in lane_txs.iter().zip(shares) {
                        if tx.send(share).is_err() {
                            // The lane unwound (a transport failure
                            // elsewhere); nothing left to feed.
                            return;
                        }
                    }
                }
            });
        }

        let (results, counters) = run_parties::<Frame, PartyOutcome, _>(parties, {
            let lanes = &lanes;
            let scheds = &scheds;
            let steps = &steps;
            let triple_rxs = &triple_rxs;
            let metrics = &metrics;
            let config = &config;
            let tracer = tracer.clone();
            move |h| {
                let me = h.me().index();
                let mut party_span = tracer.child(exec_ctx, "mpc.party");
                party_span.set_payload(me as u64);
                let pctx = party_span.ctx();
                let (net_tx, net_rx) = h.split();

                let (out_tx, out_rx) = crossbeam::channel::bounded::<OutMsg>(lanes.len() * 2);
                let mut inbox_txs = Vec::with_capacity(lanes.len());
                let mut inbox_rxs = Vec::with_capacity(lanes.len());
                for &lane_steps in steps.iter() {
                    // Sized to the lane's whole exchange count so the
                    // router never blocks on a lane whose worker has
                    // unwound (healthy lanes keep at most two sets
                    // queued — peers cannot run further ahead).
                    let (tx, rx) = crossbeam::channel::bounded::<(u32, Vec<(usize, PackedBatch)>)>(
                        lane_steps.max(1),
                    );
                    inbox_txs.push(tx);
                    inbox_rxs.push(rx);
                }
                let (ready_tx, ready_rx) = crossbeam::channel::bounded(lanes.len());
                for lane_idx in 0..lanes.len() {
                    ready_tx.send(lane_idx).expect("preloading ready queue");
                }
                drop(ready_tx);

                let lane_outputs: Mutex<Vec<Option<Vec<bool>>>> =
                    Mutex::new(vec![None; lanes.len()]);
                let first_error: Mutex<Option<TransportError>> = Mutex::new(None);
                let occupancy = AtomicU64::new(0);

                let (bits, frames, items) = crossbeam::thread::scope(|ps| {
                    // Stage: coalescing sender. Greedily drains every
                    // lane's due batches and writes one frame per peer.
                    let sender = ps.spawn({
                        let out_rx = out_rx.clone();
                        move |_| {
                            let mut fs = FrameSender::new(net_tx);
                            let mut failure = None;
                            while let Ok(first) = out_rx.recv() {
                                let mut per_peer: Vec<Vec<LaneItem>> = vec![Vec::new(); parties];
                                stage_msg(first, &mut per_peer, me);
                                while let Ok(more) = out_rx.try_recv() {
                                    stage_msg(more, &mut per_peer, me);
                                }
                                if let Err(e) = fs.flush(per_peer) {
                                    failure = Some(e);
                                    break;
                                }
                            }
                            (
                                fs.logical_bits(),
                                fs.frames(),
                                fs.coalesced_items(),
                                failure,
                            )
                        }
                    });

                    // Stage: router. Demultiplexes incoming frames by
                    // (lane, step) and completes exchange sets in any
                    // arrival order. Exits (dropping the inboxes, which
                    // unblocks every parked worker) once all expected
                    // sets are delivered or the network goes silent.
                    let router = ps.spawn(move |_| -> Option<TransportError> {
                        let mut fr = FrameReceiver::new(net_rx, config.pacing);
                        let mut outstanding: u64 = steps.iter().map(|&n| n as u64).sum();
                        let mut waiting: HashMap<(u32, u32), Vec<(usize, PackedBatch)>> =
                            HashMap::new();
                        while outstanding > 0 {
                            let (from, arrived) = match fr.recv(config.recv_timeout) {
                                Ok(v) => v,
                                Err(e) => return Some(e),
                            };
                            for item in arrived {
                                let key = (item.lane, item.step);
                                let set = waiting
                                    .entry(key)
                                    .or_insert_with(|| Vec::with_capacity(parties - 1));
                                set.push((from, item.batch));
                                if set.len() == parties - 1 {
                                    let set = waiting.remove(&key).expect("just filled");
                                    if inbox_txs[key.0 as usize].send((key.1, set)).is_err() {
                                        // The owning worker unwound.
                                        return Some(TransportError::Disconnected);
                                    }
                                    outstanding -= 1;
                                }
                            }
                        }
                        None
                    });

                    // Stage: lane workers.
                    for _ in 0..workers {
                        ps.spawn({
                            let out_tx = out_tx.clone();
                            let ready_rx = ready_rx.clone();
                            let inbox_rxs = &inbox_rxs;
                            let lane_outputs = &lane_outputs;
                            let first_error = &first_error;
                            let occupancy = &occupancy;
                            let tracer = tracer.clone();
                            move |_| {
                                while let Ok(lane_idx) = ready_rx.recv() {
                                    let in_flight = occupancy.fetch_add(1, Ordering::Relaxed) + 1;
                                    metrics.lane_occupancy.record(in_flight);
                                    let mut lane_span = tracer.child(pctx, "mpc.lane");
                                    lane_span.set_payload(lane_idx as u64);
                                    let outcome = run_lane(
                                        lane_idx,
                                        me,
                                        &lanes[lane_idx],
                                        &scheds[lane_idx],
                                        &triple_rxs[me][lane_idx],
                                        &out_tx,
                                        &inbox_rxs[lane_idx],
                                        metrics,
                                    );
                                    drop(lane_span);
                                    occupancy.fetch_sub(1, Ordering::Relaxed);
                                    match outcome {
                                        Ok(out) => {
                                            lane_outputs.lock().expect("poisoned")[lane_idx] =
                                                Some(out);
                                            if me == 0 {
                                                metrics.lanes.inc();
                                            }
                                        }
                                        Err(e) => {
                                            first_error.lock().expect("poisoned").get_or_insert(e);
                                            break;
                                        }
                                    }
                                }
                            }
                        });
                    }
                    drop(out_tx);
                    drop(out_rx);

                    let (bits, frames, items, send_failure) =
                        sender.join().expect("sender stage panicked");
                    let route_failure = router.join().expect("router stage panicked");
                    if let Some(e) = send_failure.or(route_failure) {
                        first_error.lock().expect("poisoned").get_or_insert(e);
                    }
                    (bits, frames, items)
                })
                .expect("party stage scope failed");

                PartyOutcome {
                    lane_outputs: lane_outputs.into_inner().expect("poisoned"),
                    bits,
                    frames,
                    items,
                    error: first_error.into_inner().expect("poisoned"),
                }
            }
        });
        drop(triple_rxs);
        (results, counters)
    })
    .expect("pipeline scope failed");
    let (mut results, counters) = outcomes;

    if let Some(e) = results.iter_mut().find_map(|o| o.error.take()) {
        return Err(e);
    }
    let bits_sent: u64 = results.iter().map(|o| o.bits).sum();
    let frames: u64 = results.iter().map(|o| o.frames).sum();
    let items: u64 = results.iter().map(|o| o.items).sum();
    metrics.frames.add(frames);
    metrics.lane_items.add(items);
    debug_assert_eq!(
        bits_sent,
        lane_reports.iter().map(|r| r.bits_sent).sum::<u64>(),
        "measured logical bits disagree with the circuit-structure formula"
    );

    let reference = results.swap_remove(0);
    let mut outputs = Vec::with_capacity(lanes.len());
    for (lane_idx, out) in reference.lane_outputs.into_iter().enumerate() {
        let out = out.unwrap_or_else(|| panic!("lane {lane_idx} finished without outputs"));
        debug_assert!(
            results
                .iter()
                .all(|o| o.lane_outputs[lane_idx].as_ref() == Some(&out)),
            "parties disagree on lane {lane_idx} outputs"
        );
        outputs.push(out);
    }

    let report = PipelineReport {
        parties,
        lanes: lanes.len(),
        workers,
        messages: counters.messages(),
        bytes: counters.bytes(),
        bits_sent,
        coalesced_items: items,
        lane_reports,
    };
    Ok((outputs, report))
}

/// Drives one lane's stage machine to completion on a worker thread.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    lane_idx: usize,
    me: usize,
    lane: &LaneSpec<'_>,
    sched: &Schedule,
    triples: &crossbeam::channel::Receiver<eppi_mpc::gmw_core::LayerTriples>,
    out_tx: &crossbeam::channel::Sender<OutMsg>,
    inbox: &crossbeam::channel::Receiver<(u32, Vec<(usize, PackedBatch)>)>,
    metrics: &PipelineMetrics,
) -> Result<Vec<bool>, TransportError> {
    let feed = ChannelTriples::new(triples.clone());
    let rng = StdRng::seed_from_u64(lane.seed ^ (me as u64).wrapping_mul(PARTY_SALT));
    let mut stages = GmwStages::new(
        lane.circuit,
        lane.layout,
        sched,
        me,
        lane.inputs[me].clone(),
        feed,
        rng,
    );
    let lane_id = lane_idx as u32;
    let mut step = 0u32;
    loop {
        let msg = match stages.advance() {
            StageOutput::Done(out) => {
                let stats = stages.stats();
                metrics.triple_stall_ns.record(stats.triple_stall_ns);
                if let Some(mean) = stats.triple_buffered_sum.checked_div(stats.triple_pulls) {
                    metrics.triple_buffer.record(mean);
                }
                return Ok(out);
            }
            StageOutput::Scatter(batches) => OutMsg::Scatter {
                lane: lane_id,
                step,
                batches,
            },
            StageOutput::Broadcast(batch) => OutMsg::Broadcast {
                lane: lane_id,
                step,
                batch,
            },
        };
        out_tx.send(msg).map_err(|_| TransportError::Disconnected)?;
        let parked = Instant::now();
        let (got_step, peers) = inbox.recv().map_err(|_| TransportError::Disconnected)?;
        metrics
            .exchange_stall_ns
            .record(parked.elapsed().as_nanos() as u64);
        assert_eq!(got_step, step, "lane {lane_idx} exchange out of step");
        stages.absorb(&peers);
        step += 1;
    }
}

/// The sequential baseline: the same lanes, the same frame wire format
/// and pacing ([`PacedFrameTransport`]), but the frozen lockstep
/// [`run_party`] driver and one lane at a time — no coalescing, no
/// overlap. `workers` is reported as `0`.
///
/// # Panics
///
/// Panics if the lanes disagree on the party count or a lane's inputs
/// disagree with its layout.
pub fn execute_lanes_sequential(
    lanes: &[LaneSpec<'_>],
    pacing: Option<LinkPacing>,
) -> (Vec<Vec<bool>>, PipelineReport) {
    if lanes.is_empty() {
        return (Vec::new(), PipelineReport::default());
    }
    let parties = lanes[0].layout.parties();
    let mut outputs = Vec::with_capacity(lanes.len());
    let mut lane_reports = Vec::with_capacity(lanes.len());
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut bits_sent = 0u64;
    let mut coalesced_items = 0u64;
    for lane in lanes {
        assert_eq!(lane.layout.parties(), parties, "lanes disagree on parties");
        let sched = Schedule::new(lane.circuit);
        let mut dealer = StdRng::seed_from_u64(lane.seed ^ DEALER_SALT);
        let triples = deal_packed_triples(parties, &sched, &mut dealer);
        let (mut results, counters) = run_parties::<Frame, (Vec<bool>, u64), _>(parties, {
            let sched = &sched;
            let triples = &triples;
            move |h| {
                let me = h.me().index();
                let (tx, rx) = h.split();
                let mut transport = PacedFrameTransport::new(tx, rx, pacing);
                let mut core =
                    PartyCore::new(lane.circuit, lane.layout, sched, me, triples[me].clone());
                let mut rng =
                    StdRng::seed_from_u64(lane.seed ^ (me as u64).wrapping_mul(PARTY_SALT));
                let out = run_party(
                    &mut core,
                    &lane.inputs[me],
                    &mut rng,
                    &mut transport,
                    |_, _| {},
                );
                (out, transport.bits_sent())
            }
        });
        let lane_bits: u64 = results.iter().map(|&(_, b)| b).sum();
        debug_assert_eq!(lane_bits, logical_bits(lane.circuit, lane.layout));
        lane_reports.push(LaneReport {
            and_gates: sched.and_gates(),
            and_rounds: sched.and_rounds(),
            rounds: protocol_rounds(lane.circuit, lane.layout, &sched),
            bits_sent: lane_bits,
        });
        messages += counters.messages();
        bytes += counters.bytes();
        bits_sent += lane_bits;
        coalesced_items += counters.messages();
        outputs.push(results.swap_remove(0).0);
    }
    let report = PipelineReport {
        parties,
        lanes: lanes.len(),
        workers: 0,
        messages,
        bytes,
        bits_sent,
        coalesced_items,
        lane_reports,
    };
    (outputs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded_gmw::execute_threaded;
    use eppi_mpc::builder::{to_bits, CircuitBuilder};
    use rand::Rng;

    fn sum_lt_circuit(width: usize) -> (Circuit, InputLayout) {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(width);
        let b = cb.input_word(width);
        let c = cb.input_word(width);
        let sum = cb.add_words_expand(&a, &b);
        let c_wide = cb.resize_word(&c, width + 1);
        let lt = cb.lt_words(&sum, &c_wide);
        let circuit = cb.finish(vec![lt]);
        (circuit, InputLayout::new(vec![width, width, width]))
    }

    #[test]
    fn pipelined_lanes_match_the_lockstep_oracle() {
        let (circuit, layout) = sum_lt_circuit(6);
        let mut rng = StdRng::seed_from_u64(11);
        let lane_inputs: Vec<Vec<Vec<bool>>> = (0..5)
            .map(|_| (0..3).map(|_| to_bits(rng.gen_range(0..64), 6)).collect())
            .collect();
        let lanes: Vec<LaneSpec<'_>> = lane_inputs
            .iter()
            .enumerate()
            .map(|(i, inputs)| LaneSpec {
                circuit: &circuit,
                layout: &layout,
                inputs,
                seed: 900 + i as u64,
            })
            .collect();

        let (outputs, report) =
            execute_pipelined(&lanes, &PipelineConfig::with_workers(3)).unwrap();
        assert_eq!(outputs.len(), 5);
        for (i, inputs) in lane_inputs.iter().enumerate() {
            let (oracle, oracle_report) =
                execute_threaded(&circuit, &layout, inputs, 900 + i as u64);
            assert_eq!(outputs[i], oracle, "lane {i} diverged from the oracle");
            assert_eq!(report.lane_reports[i].rounds, oracle_report.rounds);
            assert_eq!(report.lane_reports[i].bits_sent, oracle_report.bits_sent);
        }
        // Coalescing: the wire saw fewer messages than lane items.
        assert_eq!(report.bits_sent, 5 * logical_bits(&circuit, &layout));
        assert!(report.messages <= report.coalesced_items);
    }

    #[test]
    fn sequential_baseline_matches_and_counts_one_item_per_message() {
        let (circuit, layout) = sum_lt_circuit(5);
        let inputs = vec![to_bits(9, 5), to_bits(20, 5), to_bits(31, 5)];
        let lanes = [
            LaneSpec {
                circuit: &circuit,
                layout: &layout,
                inputs: &inputs,
                seed: 44,
            },
            LaneSpec {
                circuit: &circuit,
                layout: &layout,
                inputs: &inputs,
                seed: 45,
            },
        ];
        let (seq_out, seq_report) = execute_lanes_sequential(&lanes, None);
        let (pipe_out, pipe_report) =
            execute_pipelined(&lanes, &PipelineConfig::default()).unwrap();
        assert_eq!(seq_out, pipe_out);
        assert_eq!(seq_report.bits_sent, pipe_report.bits_sent);
        assert_eq!(seq_report.coalesced_items, seq_report.messages);
        // The pipeline coalesces, the baseline cannot.
        assert!(pipe_report.messages <= seq_report.messages);
    }

    #[test]
    fn single_party_lanes_run_without_a_network() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.const_word(5, 4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4]);
        let inputs = vec![to_bits(3, 4)];
        let lanes = [LaneSpec {
            circuit: &circuit,
            layout: &layout,
            inputs: &inputs,
            seed: 5,
        }];
        let (outputs, report) = execute_pipelined(&lanes, &PipelineConfig::default()).unwrap();
        assert_eq!(outputs, vec![vec![true]]);
        assert_eq!(report.messages, 0);
        assert_eq!(report.bits_sent, 0);
    }

    #[test]
    fn empty_lane_list_is_a_noop() {
        let (outputs, report) = execute_pipelined(&[], &PipelineConfig::default()).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.lanes, 0);
    }

    #[test]
    fn paced_pipeline_overlaps_lane_round_trips() {
        // With a paced link, 4 lanes × 4 workers should take far less
        // than 4× one lane's serial latency budget. Keep the margin
        // loose: this is a correctness-of-overlap check, not a bench.
        let (circuit, layout) = sum_lt_circuit(4);
        let mut rng = StdRng::seed_from_u64(3);
        let lane_inputs: Vec<Vec<Vec<bool>>> = (0..4)
            .map(|_| (0..3).map(|_| to_bits(rng.gen_range(0..16), 4)).collect())
            .collect();
        let lanes: Vec<LaneSpec<'_>> = lane_inputs
            .iter()
            .enumerate()
            .map(|(i, inputs)| LaneSpec {
                circuit: &circuit,
                layout: &layout,
                inputs,
                seed: 70 + i as u64,
            })
            .collect();
        let latency = Duration::from_millis(2);
        let pacing = Some(LinkPacing { latency });
        let rounds = protocol_rounds(&circuit, &layout, &Schedule::new(&circuit)) as u32;

        let started = Instant::now();
        let config = PipelineConfig {
            workers: 4,
            pacing,
            ..PipelineConfig::default()
        };
        let (outputs, _) = execute_pipelined(&lanes, &config).unwrap();
        let pipelined = started.elapsed();

        for (i, inputs) in lane_inputs.iter().enumerate() {
            let (oracle, _) = execute_threaded(&circuit, &layout, inputs, 70 + i as u64);
            assert_eq!(outputs[i], oracle);
        }
        // Serial would cost ≥ lanes × rounds × latency; overlapped
        // should stay well under that (allow 3× headroom for the
        // single-core box this runs on).
        let serial_floor = latency * rounds * 4;
        assert!(
            pipelined < serial_floor,
            "no overlap: {pipelined:?} ≥ {serial_floor:?}"
        );
    }
}
