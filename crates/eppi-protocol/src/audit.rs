//! Audited epoch construction: publication certificates and the
//! auditor gate (DESIGN.md §16).
//!
//! [`construct_epoch_audited`] / [`construct_delta_audited`] run the
//! ordinary construction and then have every provider *certify* its
//! published column: a [`ColumnCommitment`] over the column and its
//! official per-owner publication decisions, plus an MPC-in-the-head
//! [`ColumnProof`] that the column is the flip circuit's output on the
//! provider's private raw row ([`eppi_audit`]). The auditor gate
//! ([`verify_epoch`]) re-checks every certificate against *public*
//! epoch state only — it never sees a raw row — and a single failing
//! provider rejects the whole epoch with a typed [`AuditError`] before
//! anything is installed.
//!
//! The commitments (not the proofs) are what `eppi-durability`
//! persists next to each epoch: both digests are recomputable from
//! public state, so a recovery replay re-checks them without any
//! prover randomness ([`verify_commitments`]), and a WAL tamper that
//! changes any published bit surfaces as an audit error instead of a
//! silently installed epoch.

use crate::construct::ProtocolConfig;
use crate::epoch::{
    construct_delta_with_registry, construct_epoch_with_registry, DeltaConstruction, IndexEpoch,
};
use eppi_audit::zkboo::{prove_column_traced, verify_column_traced};
use eppi_audit::{AuditError, AuditParams, ColumnCommitment, ColumnProof, ColumnStatement};
use eppi_core::delta::IndexDelta;
use eppi_core::error::EppiError;
use eppi_core::model::{Epsilon, MembershipMatrix, ProviderId};
use eppi_telemetry::Registry;
use eppi_trace::{SpanCtx, Tracer};
use std::error::Error;
use std::fmt;

/// Configuration of the audit layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Proof-system parameters (repetition count).
    pub params: AuditParams,
    /// Seed driving the provers' view randomness. Folded with the
    /// epoch number and provider id, so every (epoch, provider) proof
    /// uses an independent transcript.
    pub prover_seed: u64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            params: AuditParams::default(),
            prover_seed: 0x5eed,
        }
    }
}

/// One provider's publication certificate for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochCertificate {
    /// The provider's column + decisions commitment (persisted by the
    /// durability layer).
    pub commitment: ColumnCommitment,
    /// The MPC-in-the-head proof (verified at the gate; not
    /// persisted).
    pub proof: ColumnProof,
}

/// An epoch together with the per-provider certificates that passed
/// the auditor gate.
#[derive(Debug, Clone)]
pub struct AuditedEpoch {
    /// The constructed epoch.
    pub epoch: IndexEpoch,
    /// One certificate per provider, in provider order.
    pub certificates: Vec<EpochCertificate>,
}

/// A delta construction together with its certificates.
#[derive(Debug, Clone)]
pub struct AuditedDelta {
    /// The ordinary delta-construction result.
    pub delta: DeltaConstruction,
    /// One certificate per provider, in provider order.
    pub certificates: Vec<EpochCertificate>,
}

impl AuditedEpoch {
    /// The persisted commitments, in provider order.
    pub fn commitments(&self) -> Vec<ColumnCommitment> {
        self.certificates.iter().map(|c| c.commitment).collect()
    }
}

impl AuditedDelta {
    /// The persisted commitments, in provider order.
    pub fn commitments(&self) -> Vec<ColumnCommitment> {
        self.certificates.iter().map(|c| c.commitment).collect()
    }
}

/// Why an audited construction failed: the construction itself, or
/// the auditor gate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditedConstructError {
    /// The underlying (semi-honest) construction failed.
    Protocol(EppiError),
    /// The auditor gate rejected a certificate.
    Audit(AuditError),
}

impl fmt::Display for AuditedConstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditedConstructError::Protocol(e) => write!(f, "construction failed: {e}"),
            AuditedConstructError::Audit(e) => write!(f, "audit gate rejected: {e}"),
        }
    }
}

impl Error for AuditedConstructError {}

impl From<EppiError> for AuditedConstructError {
    fn from(e: EppiError) -> Self {
        AuditedConstructError::Protocol(e)
    }
}

impl From<AuditError> for AuditedConstructError {
    fn from(e: AuditError) -> Self {
        AuditedConstructError::Audit(e)
    }
}

/// Per-(epoch, provider) prover seed.
fn prover_seed_for(audit: &AuditConfig, epoch: u64, provider: ProviderId) -> u64 {
    audit.prover_seed
        ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ u64::from(provider.0).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// The public statement of one provider column of `epoch`.
fn statement<'a>(epoch: &'a IndexEpoch, provider: ProviderId) -> ColumnStatement<'a> {
    ColumnStatement {
        epoch_seed: epoch.config().seed,
        provider,
        betas: epoch.index().betas(),
        published: epoch.index().matrix().row_words(provider),
    }
}

/// Has every provider certify its column of `epoch`: commitment plus
/// MPC-in-the-head proof. `matrix` is the *raw* membership matrix the
/// epoch was constructed from — in the distributed realization each
/// provider only ever touches its own row.
pub fn certify_epoch(
    matrix: &MembershipMatrix,
    epoch: &IndexEpoch,
    audit: &AuditConfig,
) -> Vec<EpochCertificate> {
    certify_epoch_traced(
        matrix,
        epoch,
        audit,
        eppi_telemetry::global(),
        &Tracer::disabled(),
        SpanCtx::NONE,
    )
}

/// [`certify_epoch`] with telemetry (`audit.proofs`,
/// `audit.proof_bytes`, `audit.prove_ns`) and one `audit.prove` span
/// per provider.
pub fn certify_epoch_traced(
    matrix: &MembershipMatrix,
    epoch: &IndexEpoch,
    audit: &AuditConfig,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Vec<EpochCertificate> {
    matrix
        .provider_ids()
        .map(|provider| {
            let stmt = statement(epoch, provider);
            let commitment =
                ColumnCommitment::compute(stmt.epoch_seed, provider, stmt.betas, stmt.published);
            let proof = prove_column_traced(
                &stmt,
                matrix.row_words(provider),
                &audit.params,
                prover_seed_for(audit, epoch.epoch(), provider),
                registry,
                tracer,
                parent,
            );
            EpochCertificate { commitment, proof }
        })
        .collect()
}

/// The auditor gate: verifies every provider's certificate against
/// public epoch state. Runs before an epoch is installed or
/// journaled.
///
/// # Errors
///
/// [`AuditError::CertificateSet`] when the set does not cover the
/// providers one-to-one; otherwise the first failing certificate's
/// error, naming provider, repetition, and check.
pub fn verify_epoch(
    epoch: &IndexEpoch,
    certificates: &[EpochCertificate],
    audit: &AuditConfig,
) -> Result<(), AuditError> {
    verify_epoch_traced(
        epoch,
        certificates,
        audit,
        eppi_telemetry::global(),
        &Tracer::disabled(),
        SpanCtx::NONE,
    )
}

/// [`verify_epoch`] with telemetry (`audit.verified`,
/// `audit.rejects{kind=…}`, `audit.verify_ns`) and one `audit.verify`
/// span per provider.
pub fn verify_epoch_traced(
    epoch: &IndexEpoch,
    certificates: &[EpochCertificate],
    audit: &AuditConfig,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Result<(), AuditError> {
    if certificates.len() != epoch.providers() {
        return Err(AuditError::CertificateSet {
            expected: epoch.providers(),
            actual: certificates.len(),
        });
    }
    for (i, cert) in certificates.iter().enumerate() {
        let provider = ProviderId(i as u32);
        if cert.commitment.provider != provider {
            return Err(AuditError::Malformed {
                provider: provider.0,
                reason: "certificate provider order",
            });
        }
        let stmt = statement(epoch, provider);
        verify_column_traced(
            &stmt,
            &cert.commitment,
            &cert.proof,
            &audit.params,
            registry,
            tracer,
            parent,
        )?;
    }
    Ok(())
}

/// Re-checks persisted commitments against a (possibly replayed)
/// epoch: the recovery-side audit. Both digests are recomputable from
/// public state, so this needs no proofs — a replayed epoch whose
/// published columns or official decisions drifted from what was
/// committed at construction time fails here.
///
/// # Errors
///
/// Same per-provider errors as [`ColumnCommitment::verify`], plus
/// [`AuditError::CertificateSet`] on a count mismatch.
pub fn verify_commitments(
    epoch: &IndexEpoch,
    commitments: &[ColumnCommitment],
) -> Result<(), AuditError> {
    if commitments.len() != epoch.providers() {
        return Err(AuditError::CertificateSet {
            expected: epoch.providers(),
            actual: commitments.len(),
        });
    }
    for (i, commitment) in commitments.iter().enumerate() {
        let provider = ProviderId(i as u32);
        if commitment.provider != provider {
            return Err(AuditError::Malformed {
                provider: provider.0,
                reason: "commitment provider order",
            });
        }
        let stmt = statement(epoch, provider);
        commitment.verify(stmt.epoch_seed, stmt.betas, stmt.published)?;
    }
    Ok(())
}

/// [`construct_epoch`](crate::construct_epoch) with the audit layer:
/// constructs epoch 0, certifies every provider column, and runs the
/// auditor gate before returning.
///
/// # Errors
///
/// [`AuditedConstructError::Protocol`] from the construction;
/// [`AuditedConstructError::Audit`] when the gate rejects (impossible
/// for honestly produced certificates — its presence is the gate).
pub fn construct_epoch_audited(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
    audit: &AuditConfig,
) -> Result<AuditedEpoch, AuditedConstructError> {
    construct_epoch_audited_traced(
        matrix,
        epsilons,
        config,
        audit,
        eppi_telemetry::global(),
        &Tracer::disabled(),
        SpanCtx::NONE,
    )
}

/// [`construct_epoch_audited`] with telemetry and `audit.prove` /
/// `audit.verify` spans under `parent`.
///
/// # Errors
///
/// Same contract as [`construct_epoch_audited`].
pub fn construct_epoch_audited_traced(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
    audit: &AuditConfig,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Result<AuditedEpoch, AuditedConstructError> {
    let epoch = construct_epoch_with_registry(matrix, epsilons, config, registry)?;
    let certificates = certify_epoch_traced(matrix, &epoch, audit, registry, tracer, parent);
    verify_epoch_traced(&epoch, &certificates, audit, registry, tracer, parent)?;
    Ok(AuditedEpoch {
        epoch,
        certificates,
    })
}

/// [`construct_delta`](crate::construct_delta) with the audit layer:
/// runs the incremental construction, re-certifies every provider
/// column of the *new* epoch (commitments cover whole columns, so
/// untouched providers re-certify cheaply against unchanged bits), and
/// runs the auditor gate.
///
/// # Errors
///
/// Same contract as [`construct_epoch_audited`].
pub fn construct_delta_audited(
    prev: &IndexEpoch,
    matrix: &MembershipMatrix,
    delta: &IndexDelta,
    audit: &AuditConfig,
) -> Result<AuditedDelta, AuditedConstructError> {
    construct_delta_audited_traced(
        prev,
        matrix,
        delta,
        audit,
        eppi_telemetry::global(),
        &Tracer::disabled(),
        SpanCtx::NONE,
    )
}

/// [`construct_delta_audited`] with telemetry and trace spans.
///
/// # Errors
///
/// Same contract as [`construct_epoch_audited`].
pub fn construct_delta_audited_traced(
    prev: &IndexEpoch,
    matrix: &MembershipMatrix,
    delta: &IndexDelta,
    audit: &AuditConfig,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> Result<AuditedDelta, AuditedConstructError> {
    let out = construct_delta_with_registry(prev, matrix, delta, registry)?;
    let certificates = certify_epoch_traced(matrix, &out.epoch, audit, registry, tracer, parent);
    verify_epoch_traced(&out.epoch, &certificates, audit, registry, tracer, parent)?;
    Ok(AuditedDelta {
        delta: out,
        certificates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
    use eppi_core::model::OwnerId;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn sample_matrix(m: usize, n: usize) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, n);
        for j in 0..n as u32 {
            for p in 0..((3 + j * 5) % m as u32 + 1) {
                mat.set(ProviderId(p), OwnerId(j), true);
            }
        }
        mat
    }

    fn quick_audit() -> AuditConfig {
        AuditConfig {
            params: AuditParams { repetitions: 6 },
            ..AuditConfig::default()
        }
    }

    #[test]
    fn audited_epoch_passes_its_own_gate() {
        let mat = sample_matrix(10, 20);
        let e: Vec<Epsilon> = (0..20).map(|j| eps(0.2 + (j % 5) as f64 / 10.0)).collect();
        let cfg = ProtocolConfig {
            seed: 11,
            ..ProtocolConfig::default()
        };
        let audited = construct_epoch_audited(&mat, &e, &cfg, &quick_audit()).unwrap();
        assert_eq!(audited.certificates.len(), 10);
        verify_epoch(&audited.epoch, &audited.certificates, &quick_audit()).unwrap();
        verify_commitments(&audited.epoch, &audited.commitments()).unwrap();
    }

    #[test]
    fn audited_delta_passes_and_commitments_track_the_new_epoch() {
        let mut mat = sample_matrix(10, 16);
        let e: Vec<Epsilon> = vec![eps(0.5); 16];
        let cfg = ProtocolConfig {
            seed: 3,
            ..ProtocolConfig::default()
        };
        let audit = quick_audit();
        let base = construct_epoch_audited(&mat, &e, &cfg, &audit).unwrap();

        // A new owner registers: every provider column grows, so the
        // old commitments are for the wrong column shape.
        mat.grow_owners(17);
        mat.set(ProviderId(7), OwnerId(16), true);
        let mut delta = IndexDelta::new(16);
        delta.record(DeltaEntry {
            owner: OwnerId(16),
            change: ColumnChange::Added,
            epsilon: eps(0.7),
        });
        let next = construct_delta_audited(&base.epoch, &mat, &delta, &audit).unwrap();
        verify_commitments(&next.delta.epoch, &next.commitments()).unwrap();
        assert!(verify_commitments(&next.delta.epoch, &base.commitments()).is_err());
    }

    #[test]
    fn foreign_certificates_are_rejected() {
        let mat = sample_matrix(8, 12);
        let e: Vec<Epsilon> = vec![eps(0.4); 12];
        let audit = quick_audit();
        let cfg_a = ProtocolConfig {
            seed: 1,
            ..ProtocolConfig::default()
        };
        let cfg_b = ProtocolConfig {
            seed: 2,
            ..ProtocolConfig::default()
        };
        let a = construct_epoch_audited(&mat, &e, &cfg_a, &audit).unwrap();
        let b = construct_epoch_audited(&mat, &e, &cfg_b, &audit).unwrap();
        assert!(verify_epoch(&a.epoch, &b.certificates, &audit).is_err());
        let short = &a.certificates[..7];
        assert!(matches!(
            verify_epoch(&a.epoch, short, &audit),
            Err(AuditError::CertificateSet {
                expected: 8,
                actual: 7
            })
        ));
    }
}
