//! # eppi-protocol — the trusted-party-free ε-PPI construction protocol
//!
//! Distributed realization (§IV of the paper) of the ε-PPI construction:
//! the first PPI construction protocol that assumes neither a trusted
//! third party nor mutual trust between providers.
//!
//! * [`secsum`] — the SecSumShare parallel secure-sum protocol (Fig. 3):
//!   `m` providers → `c` coordinator share vectors, constant rounds,
//!   `(2c−3)`-secrecy of inputs and `c`-secrecy of outputs.
//! * [`countbelow`] — the generic-MPC stage among the `c` coordinators
//!   (CountBelow of Alg. 2 + the mix-decision pass), with in-process and
//!   threaded backends.
//! * [`threaded_gmw`] — the multi-threaded GMW executor behind the
//!   wall-clock experiments.
//! * [`pipelined_gmw`] — the stage-based pipelined runtime: many
//!   independent circuit lanes over one shared network, with streamed
//!   Beaver dealing, per-peer send coalescing and overlapped exchanges
//!   (DESIGN.md §15); bit-identical to the lockstep oracle.
//! * [`sim_gmw`] — the same protocol over the round-based network
//!   simulator, yielding simulated network time under a link model.
//! * [`construct`] — the end-to-end two-phase construction (Alg. 1).
//! * [`epoch`] — the versioned epoch lifecycle: [`construct_epoch`]
//!   retains the protocol state that lets [`construct_delta`] refresh
//!   only a change batch's columns, with MPC work independent of the
//!   untouched owner count (DESIGN.md §10).
//! * [`pure_mpc`] — the paper's *pure MPC* baseline, for the Fig. 6
//!   comparisons.
//! * [`audit`] — the verifiable-publication layer: per-provider
//!   [`ColumnCommitment`]s plus MPC-in-the-head proofs
//!   ([`construct_epoch_audited`] / [`construct_delta_audited`]), and
//!   the auditor gate that rejects a cheating provider's epoch before
//!   it is installed (DESIGN.md §16).
//!
//! [`ColumnCommitment`]: eppi_audit::ColumnCommitment
//!
//! ## Example
//!
//! ```
//! use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
//! use eppi_protocol::construct::{construct_distributed, ProtocolConfig};
//!
//! // Twenty providers; the owner visited five and asks for ε = 0.6.
//! let mut m = MembershipMatrix::new(20, 1);
//! for p in 0..5 {
//!     m.set(ProviderId(p), OwnerId(0), true);
//! }
//! let eps = vec![Epsilon::new(0.6)?];
//! let out = construct_distributed(&m, &eps, &ProtocolConfig::default())?;
//! // All five true providers are in the answer (100% recall) …
//! assert!(out.index.query(OwnerId(0)).len() >= 5);
//! // … and the construction never pooled the private vectors anywhere.
//! # Ok::<(), eppi_core::error::EppiError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod construct;
pub mod countbelow;
pub mod epoch;
pub mod pipelined_gmw;
pub mod pure_mpc;
pub mod secsum;
pub mod sim_gmw;
pub mod threaded_gmw;

pub use audit::{
    certify_epoch, certify_epoch_traced, construct_delta_audited, construct_delta_audited_traced,
    construct_epoch_audited, construct_epoch_audited_traced, verify_commitments, verify_epoch,
    verify_epoch_traced, AuditConfig, AuditedConstructError, AuditedDelta, AuditedEpoch,
    EpochCertificate,
};
pub use construct::{
    construct_distributed, construct_distributed_with_registry, ConstructionReport,
    DistributedConstruction, PhaseWall, ProtocolConfig,
};
pub use countbelow::{
    run_count_below, run_mix_decision, run_mix_decision_for_owners, Backend, StageReport,
};
pub use epoch::{
    construct_delta, construct_delta_with_registry, construct_epoch, construct_epoch_with_registry,
    DeltaConstruction, EpochState, IndexEpoch,
};
pub use pipelined_gmw::{
    execute_lanes_sequential, execute_pipelined, execute_pipelined_with_registry, LaneSpec,
    PipelineConfig, PipelineReport,
};
pub use pure_mpc::{construct_pure_mpc, PureMpcConfig, PureMpcConstruction};
pub use secsum::{secsumshare_sim, secsumshare_threaded, secsumshare_threaded_stats, SecSumOutput};
pub use sim_gmw::execute_simulated;
pub use threaded_gmw::{execute_threaded, execute_threaded_with_registry, ThreadedGmwReport};
