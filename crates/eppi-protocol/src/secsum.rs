//! The SecSumShare protocol (§IV-B.1, Fig. 3).
//!
//! Given `m` providers each holding a private Boolean per identity, the
//! protocol outputs `c` share vectors — one per coordinator — whose
//! per-identity sums equal the identity frequencies, without revealing
//! any individual input (collusion of fewer than `c` providers learns
//! nothing; Theorem 4.1). All identities run in parallel: each message
//! batches one share per identity.
//!
//! The four steps of Fig. 3:
//!
//! 1. **Generating shares** — each provider splits each input bit into
//!    `c` additive shares mod `q`.
//! 2. **Distributing shares** — the `k`-th share goes to the provider's
//!    `k`-th ring successor (share 0 stays local).
//! 3. **Summing shares** — each provider sums everything it received
//!    into its *super-share*.
//! 4. **Aggregating super-shares** — provider `i` sends its super-share
//!    to coordinator `i mod c`; the coordinator sums them into its output
//!    vector `s(k, ·)`.
//!
//! Two backends are provided: the deterministic round-based simulator
//! (scales to the paper's 10,000-provider networks) and the threaded
//! runtime (wall-clock experiments).

use eppi_core::model::{LocalVector, OwnerId};
use eppi_mpc::field::Modulus;
use eppi_net::sim::{Context, LinkModel, NetStats, Node, Simulator};
use eppi_net::threaded::{run_parties, PartyHandle};
use eppi_net::topology::Ring;
use eppi_net::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one SecSumShare run.
#[derive(Debug, Clone, PartialEq)]
pub struct SecSumOutput {
    /// Per-coordinator share vectors `s(k, ·)`, `k ∈ [0, c)`; each has
    /// one element per identity. Their element-wise sum mod `q` equals
    /// the identity frequencies.
    pub coordinator_shares: Vec<Vec<u64>>,
    /// Traffic statistics of the run.
    pub stats: NetStats,
}

/// Protocol message: a batch of share values, one per identity.
#[derive(Debug, Clone, PartialEq)]
enum SecSumMsg {
    /// Step-2 share distribution to a ring successor.
    Share(Vec<u64>),
    /// Step-4 super-share aggregation at a coordinator.
    SuperShare(Vec<u64>),
}

impl eppi_net::WireSize for SecSumMsg {
    fn wire_size(&self) -> usize {
        match self {
            SecSumMsg::Share(v) | SecSumMsg::SuperShare(v) => v.wire_size() + 1,
        }
    }
}

/// One provider in the round-based simulation.
struct ProviderNode {
    ring: Ring,
    modulus: Modulus,
    inputs: Vec<u64>,
    rng: StdRng,
    /// Accumulating super-share (own kept share + received shares).
    super_share: Vec<u64>,
    shares_received: usize,
    /// Coordinator state: aggregated super-shares.
    aggregate: Vec<u64>,
    supers_received: usize,
    supers_expected: usize,
    done: bool,
}

impl ProviderNode {
    fn identities(&self) -> usize {
        self.inputs.len()
    }
}

impl Node<SecSumMsg> for ProviderNode {
    fn on_start(&mut self, ctx: &mut Context<SecSumMsg>) {
        let c = self.ring.coordinators();
        let n = self.identities();
        // Step 1+2: split every input into c shares; keep share 0, send
        // share k to the k-th successor.
        let mut outgoing: Vec<Vec<u64>> = vec![vec![0; n]; c - 1];
        for (j, &input) in self.inputs.iter().enumerate() {
            let shares = eppi_mpc::share::split(input, c, self.modulus, &mut self.rng);
            self.super_share[j] = self.modulus.add(self.super_share[j], shares.values()[0]);
            for k in 1..c {
                outgoing[k - 1][j] = shares.values()[k];
            }
        }
        for (k, batch) in outgoing.into_iter().enumerate() {
            ctx.send(
                self.ring.successor(ctx.me(), k + 1),
                SecSumMsg::Share(batch),
            );
        }
        // Degenerate single-coordinator network: nothing to wait for.
        if c == 1 {
            self.finish_super_share(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: SecSumMsg, ctx: &mut Context<SecSumMsg>) {
        match msg {
            SecSumMsg::Share(batch) => {
                for (j, &s) in batch.iter().enumerate() {
                    self.super_share[j] = self.modulus.add(self.super_share[j], s);
                }
                self.shares_received += 1;
                // Step 3 complete once all c−1 predecessors delivered.
                if self.shares_received == self.ring.coordinators() - 1 {
                    self.finish_super_share(ctx);
                }
            }
            SecSumMsg::SuperShare(batch) => {
                for (j, &s) in batch.iter().enumerate() {
                    self.aggregate[j] = self.modulus.add(self.aggregate[j], s);
                }
                self.supers_received += 1;
                if self.supers_received == self.supers_expected {
                    self.done = true;
                }
            }
        }
    }
}

impl ProviderNode {
    /// Step 4: route the finished super-share to coordinator `i mod c`.
    fn finish_super_share(&mut self, ctx: &mut Context<SecSumMsg>) {
        let c = self.ring.coordinators();
        let target = NodeId(ctx.me().index() % c);
        let batch = std::mem::take(&mut self.super_share);
        ctx.send(target, SecSumMsg::SuperShare(batch));
    }
}

/// Number of providers routing their super-share to coordinator `k`.
fn providers_per_coordinator(m: usize, c: usize, k: usize) -> usize {
    m / c + usize::from(k < m % c)
}

/// Runs SecSumShare in the round-based simulator.
///
/// `vectors[i]` is provider `i`'s private membership vector; all vectors
/// must cover the same identities. `c` is the collusion-tolerance
/// parameter (number of coordinators).
///
/// # Panics
///
/// Panics if `vectors` is empty, the vectors disagree on the identity
/// count, or `c` is 0 or exceeds the provider count.
pub fn secsumshare_sim(
    vectors: &[LocalVector],
    c: usize,
    modulus: Modulus,
    link: LinkModel,
    seed: u64,
) -> SecSumOutput {
    secsumshare_sim_with_faults(vectors, c, modulus, link, seed, None)
}

/// [`secsumshare_sim`] with an injected fault filter — used to verify
/// that message loss *stalls* the protocol loudly (the paper's model
/// assumes reliable delivery; silent corruption would be a bug).
///
/// # Panics
///
/// In addition to [`secsumshare_sim`]'s conditions, panics when a
/// dropped message leaves any participant short of its expected inputs.
pub fn secsumshare_sim_with_faults(
    vectors: &[LocalVector],
    c: usize,
    modulus: Modulus,
    link: LinkModel,
    seed: u64,
    faults: Option<eppi_net::sim::FaultFilter>,
) -> SecSumOutput {
    assert!(!vectors.is_empty(), "at least one provider required");
    let n = vectors[0].owners();
    assert!(
        vectors.iter().all(|v| v.owners() == n),
        "all vectors must cover the same identities"
    );
    let m = vectors.len();
    let ring = Ring::new(m, c);

    let nodes: Vec<ProviderNode> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let inputs: Vec<u64> = (0..n)
                .map(|j| u64::from(v.get(OwnerId(j as u32))))
                .collect();
            ProviderNode {
                ring,
                modulus,
                inputs,
                rng: StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15)),
                super_share: vec![0; n],
                shares_received: 0,
                aggregate: vec![0; n],
                supers_received: 0,
                supers_expected: if i < c {
                    providers_per_coordinator(m, c, i)
                } else {
                    0
                },
                done: false,
            }
        })
        .collect();

    let mut sim = Simulator::new(nodes, link);
    if let Some(filter) = faults {
        sim.set_fault_filter(filter);
    }
    let stats = sim.run(16);
    let nodes = sim.into_nodes();

    // Liveness check: every provider must have built its super-share and
    // every coordinator must have received all of them. A reliable
    // network guarantees this; with injected faults we fail loudly
    // instead of returning corrupted sums.
    for (i, node) in nodes.iter().enumerate() {
        assert!(
            node.shares_received == c - 1 || c == 1,
            "provider p{i} received {}/{} share batches — message lost",
            node.shares_received,
            c - 1
        );
    }
    let coordinator_shares: Vec<Vec<u64>> = nodes[..c]
        .iter()
        .enumerate()
        .map(|(i, node)| {
            assert!(
                node.done || node.supers_expected == 0,
                "coordinator p{i} received {}/{} super-shares — message lost",
                node.supers_received,
                node.supers_expected
            );
            node.aggregate.clone()
        })
        .collect();

    SecSumOutput {
        coordinator_shares,
        stats,
    }
}

/// Runs SecSumShare on the threaded runtime and returns the coordinator
/// share vectors (wall-clock backend for Fig. 6a; traffic is counted by
/// the runtime).
///
/// # Panics
///
/// Same conditions as [`secsumshare_sim`].
pub fn secsumshare_threaded(
    vectors: &[LocalVector],
    c: usize,
    modulus: Modulus,
    seed: u64,
) -> Vec<Vec<u64>> {
    secsumshare_threaded_stats(vectors, c, modulus, seed).coordinator_shares
}

/// [`secsumshare_threaded`] with traffic statistics, shaped like the
/// simulator's [`SecSumOutput`] so the two backends are interchangeable
/// at call sites that report stats (e.g. delta construction).
///
/// Per-provider share seeding matches [`secsumshare_sim`] exactly, so
/// at the same seed the coordinator share vectors are bit-identical to
/// the simulator's. `rounds` is the protocol's constant logical depth
/// (share distribution, then super-share aggregation); `bits` and
/// `simulated_us` are 0 — the threaded runtime measures real wall
/// clock, not the link model.
///
/// # Panics
///
/// Same conditions as [`secsumshare_sim`].
pub fn secsumshare_threaded_stats(
    vectors: &[LocalVector],
    c: usize,
    modulus: Modulus,
    seed: u64,
) -> SecSumOutput {
    assert!(!vectors.is_empty(), "at least one provider required");
    let n = vectors[0].owners();
    assert!(
        vectors.iter().all(|v| v.owners() == n),
        "all vectors must cover the same identities"
    );
    let m = vectors.len();
    let ring = Ring::new(m, c);

    let inputs: Vec<Vec<u64>> = vectors
        .iter()
        .map(|v| {
            (0..n)
                .map(|j| u64::from(v.get(OwnerId(j as u32))))
                .collect()
        })
        .collect();
    let inputs = &inputs;

    let (results, counters) =
        run_parties::<SecSumMsg, Option<Vec<u64>>, _>(m, move |mut h: PartyHandle<SecSumMsg>| {
            let me = h.me();
            let mut rng =
                StdRng::seed_from_u64(seed ^ (me.index() as u64).wrapping_mul(0x9e3779b97f4a7c15));
            let mine = &inputs[me.index()];
            // Steps 1–2.
            let mut super_share = vec![0u64; n];
            let mut outgoing: Vec<Vec<u64>> = vec![vec![0; n]; c - 1];
            for (j, &input) in mine.iter().enumerate() {
                let shares = eppi_mpc::share::split(input, c, modulus, &mut rng);
                super_share[j] = shares.values()[0];
                for k in 1..c {
                    outgoing[k - 1][j] = shares.values()[k];
                }
            }
            for (k, batch) in outgoing.into_iter().enumerate() {
                h.send(ring.successor(me, k + 1), SecSumMsg::Share(batch));
            }

            // Steps 3–4: parties run asynchronously, so a fast peer's
            // super-share can overtake a slow predecessor's share batch;
            // dispatch by message kind rather than arrival order.
            let mut shares_left = c - 1;
            let mut supers_left = if me.index() < c {
                providers_per_coordinator(m, c, me.index())
            } else {
                0
            };
            let mut aggregate = vec![0u64; n];
            if shares_left == 0 {
                h.send(
                    NodeId(me.index() % c),
                    SecSumMsg::SuperShare(std::mem::take(&mut super_share)),
                );
            }
            while shares_left > 0 || supers_left > 0 {
                let (_, msg) = h.recv();
                match msg {
                    SecSumMsg::Share(batch) => {
                        for (j, &s) in batch.iter().enumerate() {
                            super_share[j] = modulus.add(super_share[j], s);
                        }
                        shares_left -= 1;
                        if shares_left == 0 {
                            h.send(
                                NodeId(me.index() % c),
                                SecSumMsg::SuperShare(std::mem::take(&mut super_share)),
                            );
                        }
                    }
                    SecSumMsg::SuperShare(batch) => {
                        for (j, &s) in batch.iter().enumerate() {
                            aggregate[j] = modulus.add(aggregate[j], s);
                        }
                        supers_left -= 1;
                    }
                }
            }
            (me.index() < c).then_some(aggregate)
        });

    SecSumOutput {
        coordinator_shares: results.into_iter().flatten().collect(),
        stats: NetStats {
            rounds: 2,
            messages: counters.messages(),
            bytes: counters.bytes(),
            bits: 0,
            dropped: 0,
            simulated_us: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_core::model::ProviderId;
    use eppi_mpc::share::recombine_raw;
    use eppi_net::NodeId;

    fn vectors_from_columns(m: usize, columns: &[Vec<usize>]) -> Vec<LocalVector> {
        let n = columns.len();
        (0..m)
            .map(|i| {
                let mut v = LocalVector::new(ProviderId(i as u32), n);
                for (j, col) in columns.iter().enumerate() {
                    if col.contains(&i) {
                        v.set(OwnerId(j as u32), true);
                    }
                }
                v
            })
            .collect()
    }

    fn frequencies_from(out: &[Vec<u64>], modulus: Modulus, n: usize) -> Vec<u64> {
        (0..n)
            .map(|j| {
                let parts: Vec<u64> = out.iter().map(|v| v[j]).collect();
                recombine_raw(&parts, modulus)
            })
            .collect()
    }

    #[test]
    fn paper_example_five_providers_c3() {
        // Fig. 3: m = 5, c = 3, q = 5; t0 held by p1 and p2.
        let vectors = vectors_from_columns(5, &[vec![1, 2]]);
        let out = secsumshare_sim(&vectors, 3, Modulus::new(5), LinkModel::LAN, 42);
        assert_eq!(out.coordinator_shares.len(), 3);
        let freqs = frequencies_from(&out.coordinator_shares, Modulus::new(5), 1);
        assert_eq!(freqs, vec![2]);
    }

    #[test]
    fn sums_match_frequencies_many_identities() {
        let columns = vec![
            vec![0, 1, 2, 3],
            vec![4],
            vec![],
            vec![0, 5, 9],
            (0..10).collect::<Vec<_>>(),
        ];
        let vectors = vectors_from_columns(10, &columns);
        let q = Modulus::pow2(16);
        let out = secsumshare_sim(&vectors, 3, q, LinkModel::LAN, 7);
        let freqs = frequencies_from(&out.coordinator_shares, q, 5);
        assert_eq!(freqs, vec![4, 1, 0, 3, 10]);
    }

    #[test]
    fn stats_reflect_constant_round_structure() {
        let vectors = vectors_from_columns(50, &[vec![3, 4, 5]]);
        let out = secsumshare_sim(&vectors, 3, Modulus::pow2(16), LinkModel::LAN, 1);
        // Share distribution lands in round 1; super-shares in round 2.
        assert_eq!(out.stats.rounds, 2);
        // Every provider sends c−1 share messages + 1 super-share.
        assert_eq!(out.stats.messages, 50 * 3);
    }

    #[test]
    fn shares_vary_with_seed_but_sum_is_stable() {
        let vectors = vectors_from_columns(8, &[vec![0, 7], vec![2]]);
        let q = Modulus::pow2(20);
        let a = secsumshare_sim(&vectors, 4, q, LinkModel::LAN, 1);
        let b = secsumshare_sim(&vectors, 4, q, LinkModel::LAN, 2);
        assert_ne!(a.coordinator_shares, b.coordinator_shares);
        assert_eq!(
            frequencies_from(&a.coordinator_shares, q, 2),
            frequencies_from(&b.coordinator_shares, q, 2)
        );
    }

    #[test]
    fn threaded_backend_agrees() {
        let columns = vec![vec![0, 1, 2], vec![5], vec![]];
        let vectors = vectors_from_columns(12, &columns);
        let q = Modulus::pow2(16);
        let shares = secsumshare_threaded(&vectors, 3, q, 99);
        assert_eq!(shares.len(), 3);
        let freqs = frequencies_from(&shares, q, 3);
        assert_eq!(freqs, vec![3, 1, 0]);
    }

    #[test]
    fn c_equals_m_works() {
        let vectors = vectors_from_columns(4, &[vec![0, 1, 2, 3]]);
        let q = Modulus::pow2(8);
        let out = secsumshare_sim(&vectors, 4, q, LinkModel::LAN, 5);
        let freqs = frequencies_from(&out.coordinator_shares, q, 1);
        assert_eq!(freqs, vec![4]);
    }

    #[test]
    #[should_panic(expected = "more coordinators")]
    fn c_larger_than_m_rejected() {
        let vectors = vectors_from_columns(2, &[vec![0]]);
        secsumshare_sim(&vectors, 3, Modulus::pow2(8), LinkModel::LAN, 0);
    }

    #[test]
    #[should_panic(expected = "message lost")]
    fn dropped_share_batch_stalls_loudly() {
        let vectors = vectors_from_columns(10, &[vec![1, 2, 3]]);
        // Drop p0's share batch to its first successor in round 1.
        let faults: eppi_net::sim::FaultFilter =
            Box::new(|round, from, to| round == 1 && from == NodeId(0) && to == NodeId(1));
        secsumshare_sim_with_faults(
            &vectors,
            3,
            Modulus::pow2(8),
            LinkModel::LAN,
            1,
            Some(faults),
        );
    }

    #[test]
    #[should_panic(expected = "message lost")]
    fn dropped_super_share_stalls_loudly() {
        let vectors = vectors_from_columns(10, &[vec![1, 2, 3]]);
        // Drop the super-share p5 routes to its coordinator (5 mod 3 = 2).
        let faults: eppi_net::sim::FaultFilter =
            Box::new(|_, from, to| from == NodeId(5) && to == NodeId(2));
        secsumshare_sim_with_faults(
            &vectors,
            3,
            Modulus::pow2(8),
            LinkModel::LAN,
            1,
            Some(faults),
        );
    }

    #[test]
    fn providers_per_coordinator_partitions() {
        for m in [5usize, 9, 10, 12] {
            for c in [1usize, 2, 3, 4] {
                if c > m {
                    continue;
                }
                let total: usize = (0..c).map(|k| providers_per_coordinator(m, c, k)).sum();
                assert_eq!(total, m, "m={m} c={c}");
            }
        }
    }
}
