//! The epoch lifecycle: versioned constructions and incremental
//! (delta) refresh.
//!
//! The paper keeps ε-PPI static because naive refresh re-randomizes
//! every publication coin and hands an archiving attacker the §III-C
//! intersection attack. The epoch lifecycle makes refresh safe *and*
//! cheap:
//!
//! * **Safe** — publication coins are deterministic per cell
//!   ([`eppi_core::publish::publication_coin`]) and mix coins are
//!   deterministic per identity, both keyed by the lineage seed. A cell
//!   whose membership bit and β did not change publishes the same bit
//!   in every epoch, so intersecting archived epochs reveals nothing
//!   about untouched owners.
//! * **Cheap** — [`construct_delta`] re-runs SecSumShare, CountBelow
//!   and the mix-decision MPC over *only the touched columns* of an
//!   [`IndexDelta`]. The retained coordinator share vectors of the
//!   previous [`IndexEpoch`] let the common-identity count be updated
//!   exactly by difference (two CountBelow runs over `k` columns
//!   instead of one over `n`), so MPC gates and SecSumShare messages
//!   scale with `k = |delta|`, independent of `n − k`.
//!
//! Equivalence contract (asserted by the cross-backend proptests): at
//! the same lineage seed, every *touched* column of a delta epoch is
//! bit-identical — published bits, β, mix decision — to a from-scratch
//! [`construct_distributed`](crate::construct::construct_distributed)
//! over the new matrix, on every MPC backend.
//! Untouched columns are carried over verbatim from the previous epoch
//! (the anti-intersection invariant); they coincide with the
//! from-scratch result whenever λ has not drifted since they were last
//! constructed, and the epoch tracks λ so callers can detect drift.

use crate::construct::{
    construct_full, emit_report, frequency_thresholds, share_width, ConstructionReport, PhaseWall,
    ProtocolConfig,
};
use crate::countbelow::{run_count_below, run_mix_decision_for_owners, StageReport};
use crate::secsum::{secsumshare_sim, secsumshare_threaded_stats};
use eppi_core::delta::IndexDelta;
use eppi_core::error::EppiError;
use eppi_core::mixing::lambda_for;
use eppi_core::model::{Epsilon, LocalVector, MembershipMatrix, OwnerId, PublishedIndex};
use eppi_core::policy::BetaPolicy;
use eppi_core::publish::publish_cell;
use eppi_mpc::field::Modulus;
use eppi_mpc::share::recombine_raw;
use eppi_telemetry::Registry;
use std::time::Instant;

/// One versioned construction: the published index plus the retained
/// protocol state a later [`construct_delta`] needs — per-owner mix
/// decisions, thresholds, ε's, the coordinator share vectors, and the
/// revealed common count.
///
/// The retained shares are exactly what the `c` coordinators already
/// hold at the end of a run (nothing beyond the protocol's own view is
/// kept), so retaining them weakens no secrecy property.
#[derive(Debug, Clone)]
pub struct IndexEpoch {
    index: PublishedIndex,
    decisions: Vec<bool>,
    lambda: f64,
    common_count: u64,
    epoch: u64,
    thresholds: Vec<u64>,
    epsilons: Vec<Epsilon>,
    /// `shares[k][j]`: coordinator `k`'s additive frequency share of
    /// owner `j` over `Z_{2^width}`.
    shares: Vec<Vec<u64>>,
    config: ProtocolConfig,
}

impl IndexEpoch {
    /// The published, obscured index of this epoch.
    pub fn index(&self) -> &PublishedIndex {
        &self.index
    }

    /// Consumes the epoch, returning its published index.
    pub fn into_index(self) -> PublishedIndex {
        self.index
    }

    /// Per-owner mix decisions (`true` ⇒ published with β = 1).
    pub fn decisions(&self) -> &[bool] {
        &self.decisions
    }

    /// The mixing probability λ this epoch's touched columns used.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The (exact) number of common identities in this epoch's matrix.
    pub fn common_count(&self) -> u64 {
        self.common_count
    }

    /// Epoch number: 0 for the initial construction, +1 per delta.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-owner privacy degrees of this epoch.
    pub fn epsilons(&self) -> &[Epsilon] {
        &self.epsilons
    }

    /// The protocol configuration the lineage runs under (the seed is
    /// the lineage's coin key and must not change between epochs).
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Owner count of this epoch.
    pub fn owners(&self) -> usize {
        self.index.matrix().owners()
    }

    /// Provider count of the lineage.
    pub fn providers(&self) -> usize {
        self.index.matrix().providers()
    }

    /// The public per-owner frequency thresholds `t_j` retained for the
    /// delta path.
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }

    /// The retained coordinator share vectors: `shares()[k][j]` is
    /// coordinator `k`'s additive frequency share of owner `j` over
    /// `Z_{2^width}` (`width =`
    /// [`share_width`]`(m)`).
    pub fn shares(&self) -> &[Vec<u64>] {
        &self.shares
    }

    /// Decomposes the epoch into its plain state parts (the inverse of
    /// [`resume`](Self::resume)) — what the durability layer serializes.
    pub fn into_state(self) -> EpochState {
        EpochState {
            index: self.index,
            decisions: self.decisions,
            lambda: self.lambda,
            common_count: self.common_count,
            epoch: self.epoch,
            thresholds: self.thresholds,
            epsilons: self.epsilons,
            shares: self.shares,
            config: self.config,
        }
    }

    /// Rebuilds an epoch from persisted state — the resume entry point
    /// a recovered coordinator set hands to [`construct_delta`] so the
    /// lineage continues without a full re-randomized rebuild.
    ///
    /// The state is validated structurally before it is trusted: every
    /// per-owner vector must match the index's owner count, there must
    /// be exactly `config.c` share vectors, each share must lie in the
    /// protocol's share ring `Z_{2^width}`, λ must be a probability and
    /// the policy parameters must be valid. A resumed epoch is
    /// indistinguishable from the live one it was serialized from: the
    /// subsequent delta lineage is bit-identical (asserted by the
    /// `resume-after-restart` equivalence tests).
    ///
    /// # Errors
    ///
    /// [`EppiError::DimensionMismatch`] for length disagreements,
    /// [`EppiError::InvalidResumeState`] for out-of-domain values, and
    /// the policy's own parameter errors via
    /// [`PolicyKind::validate`](eppi_core::policy::PolicyKind::validate).
    pub fn resume(state: EpochState) -> Result<IndexEpoch, EppiError> {
        let n = state.index.matrix().owners();
        let m = state.index.matrix().providers();
        for (what, len) in [
            ("resumed decisions", state.decisions.len()),
            ("resumed thresholds", state.thresholds.len()),
            ("resumed epsilons", state.epsilons.len()),
        ] {
            if len != n {
                return Err(EppiError::DimensionMismatch {
                    what,
                    expected: n,
                    actual: len,
                });
            }
        }
        if state.shares.len() != state.config.c {
            return Err(EppiError::DimensionMismatch {
                what: "resumed coordinator share vectors",
                expected: state.config.c,
                actual: state.shares.len(),
            });
        }
        for vector in &state.shares {
            if vector.len() != n {
                return Err(EppiError::DimensionMismatch {
                    what: "resumed share vector length",
                    expected: n,
                    actual: vector.len(),
                });
            }
        }
        let width = share_width(m);
        if width < u64::BITS as usize {
            let ring = 1u64 << width;
            if state.shares.iter().flatten().any(|&share| share >= ring) {
                return Err(EppiError::InvalidResumeState {
                    what: "coordinator share outside the protocol share ring",
                });
            }
        }
        if !state.lambda.is_finite() || !(0.0..=1.0).contains(&state.lambda) {
            return Err(EppiError::InvalidResumeState {
                what: "lambda is not a probability",
            });
        }
        if state.common_count > n as u64 {
            return Err(EppiError::InvalidResumeState {
                what: "common count exceeds the owner population",
            });
        }
        state.config.policy.validate()?;
        Ok(IndexEpoch {
            index: state.index,
            decisions: state.decisions,
            lambda: state.lambda,
            common_count: state.common_count,
            epoch: state.epoch,
            thresholds: state.thresholds,
            epsilons: state.epsilons,
            shares: state.shares,
            config: state.config,
        })
    }
}

/// The plain-data state of an [`IndexEpoch`], as moved across a
/// serialization boundary: every retained field, public. Produced by
/// [`IndexEpoch::into_state`] and consumed (with validation) by
/// [`IndexEpoch::resume`].
#[derive(Debug, Clone)]
pub struct EpochState {
    /// The published, obscured index.
    pub index: PublishedIndex,
    /// Per-owner mix decisions.
    pub decisions: Vec<bool>,
    /// The epoch's mixing probability λ.
    pub lambda: f64,
    /// The exact common-identity count.
    pub common_count: u64,
    /// The epoch number in the lineage.
    pub epoch: u64,
    /// Public per-owner frequency thresholds.
    pub thresholds: Vec<u64>,
    /// Per-owner privacy degrees.
    pub epsilons: Vec<Epsilon>,
    /// `shares[k][j]`: coordinator `k`'s additive share of owner `j`.
    pub shares: Vec<Vec<u64>>,
    /// The lineage configuration (seed, policy, backend, link, `c`).
    pub config: ProtocolConfig,
}

/// Result of one delta construction.
#[derive(Debug, Clone)]
pub struct DeltaConstruction {
    /// The next epoch (previous index with the delta's columns
    /// re-constructed and spliced in).
    pub epoch: IndexEpoch,
    /// Cost breakdown of the incremental run: `columns = k`, MPC
    /// stages sized by `k`, `count_stage` the merge of the two
    /// k-column CountBelow runs.
    pub report: ConstructionReport,
}

/// Runs a full epoch-0 construction, retaining the protocol state the
/// delta path needs. The published index is bit-identical to
/// [`construct_distributed`] under the same config.
///
/// # Errors
///
/// Same contract as [`construct_distributed`].
///
/// [`construct_distributed`]: crate::construct::construct_distributed
pub fn construct_epoch(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
) -> Result<IndexEpoch, EppiError> {
    construct_epoch_with_registry(matrix, epsilons, config, eppi_telemetry::global())
}

/// [`construct_epoch`] reporting telemetry into a caller-owned
/// registry.
///
/// # Errors
///
/// Same contract as [`construct_epoch`].
pub fn construct_epoch_with_registry(
    matrix: &MembershipMatrix,
    epsilons: &[Epsilon],
    config: &ProtocolConfig,
    registry: &Registry,
) -> Result<IndexEpoch, EppiError> {
    let full = construct_full(matrix, epsilons, config, registry)?;
    Ok(IndexEpoch {
        index: full.out.index,
        decisions: full.out.decisions,
        lambda: full.out.lambda,
        common_count: full.out.common_count,
        epoch: 0,
        thresholds: full.thresholds,
        epsilons: epsilons.to_vec(),
        shares: full.shares,
        config: *config,
    })
}

/// Sums two sequentially-executed MPC stage reports (messages, bits,
/// bytes, simulated time and gate counts add; depths take the max of
/// the two circuits, as a conservative per-circuit figure).
fn merge_stages(a: &StageReport, b: &StageReport) -> StageReport {
    let mut circuit = a.circuit;
    circuit.inputs += b.circuit.inputs;
    circuit.outputs += b.circuit.outputs;
    circuit.total_gates += b.circuit.total_gates;
    circuit.and_gates += b.circuit.and_gates;
    circuit.xor_gates += b.circuit.xor_gates;
    circuit.not_gates += b.circuit.not_gates;
    circuit.const_gates += b.circuit.const_gates;
    circuit.depth = circuit.depth.max(b.circuit.depth);
    circuit.and_depth = circuit.and_depth.max(b.circuit.and_depth);
    StageReport {
        circuit,
        messages: a.messages + b.messages,
        bits: a.bits + b.bits,
        bytes: a.bytes + b.bytes,
        simulated_us: a.simulated_us + b.simulated_us,
    }
}

/// Runs the incremental construction for one [`IndexDelta`] on top of
/// `prev`, producing the next epoch.
///
/// `matrix` is the *new* full membership matrix (the simulation's
/// global view; each provider still only contributes its own row to
/// the protocol). Every column whose content or ε differs from the
/// previous epoch **must** appear in the delta — untouched columns are
/// carried over verbatim, so an unreported change would silently serve
/// stale bits.
///
/// The secure stages run over only the `k` touched columns: one
/// SecSumShare over column-sliced local vectors, one CountBelow over
/// the previous epoch's retained shares of the touched columns (old
/// thresholds) and one over the fresh shares (new thresholds) — the
/// exact common count follows by difference — and one mix-decision MPC
/// keyed by the global owner ids, reproducing precisely the coins a
/// from-scratch run would use.
///
/// # Errors
///
/// Returns [`EppiError::DimensionMismatch`] when the matrix/delta
/// dimensions disagree with each other or with `prev`.
pub fn construct_delta(
    prev: &IndexEpoch,
    matrix: &MembershipMatrix,
    delta: &IndexDelta,
) -> Result<DeltaConstruction, EppiError> {
    construct_delta_with_registry(prev, matrix, delta, eppi_telemetry::global())
}

/// [`construct_delta`] reporting telemetry into a caller-owned
/// registry (same `construct.*` / `secsum.*` families as the full
/// path).
///
/// # Errors
///
/// Same contract as [`construct_delta`].
pub fn construct_delta_with_registry(
    prev: &IndexEpoch,
    matrix: &MembershipMatrix,
    delta: &IndexDelta,
    registry: &Registry,
) -> Result<DeltaConstruction, EppiError> {
    if delta.base_owners() != prev.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "delta base owners",
            expected: prev.owners(),
            actual: delta.base_owners(),
        });
    }
    if matrix.owners() != delta.owners() {
        return Err(EppiError::DimensionMismatch {
            what: "delta owners",
            expected: delta.owners(),
            actual: matrix.owners(),
        });
    }
    if matrix.providers() != prev.providers() {
        return Err(EppiError::DimensionMismatch {
            what: "providers",
            expected: prev.providers(),
            actual: matrix.providers(),
        });
    }
    let config = prev.config;
    let started = Instant::now();
    let next_epoch = prev.epoch + 1;

    if delta.is_empty() {
        // Nothing changed: the next epoch is the previous one under a
        // new number; no MPC runs at all.
        let report = ConstructionReport {
            wall: started.elapsed(),
            epoch: next_epoch,
            columns: 0,
            ..ConstructionReport::default()
        };
        emit_report(registry, &report);
        return Ok(DeltaConstruction {
            epoch: IndexEpoch {
                epoch: next_epoch,
                ..prev.clone()
            },
            report,
        });
    }

    let m = matrix.providers();
    let n_old = prev.owners();
    let n_new = matrix.owners();
    let width = share_width(m);
    let modulus = Modulus::pow2(width as u32);
    let touched = delta.touched();
    let k = touched.len();

    // Splice the ε vector, then derive thresholds for the touched
    // columns only (cleartext, public data).
    let phase = Instant::now();
    let mut epsilons = prev.epsilons.clone();
    epsilons.resize(n_new, Epsilon::ZERO);
    for entry in delta.entries() {
        epsilons[entry.owner.index()] = entry.epsilon;
    }
    let touched_eps: Vec<Epsilon> = touched.iter().map(|o| epsilons[o.index()]).collect();
    let new_thresholds = frequency_thresholds(config.policy, &touched_eps, m);
    let thresholds_wall = phase.elapsed();

    // Phase 1.1 — SecSumShare over the k touched columns only: every
    // provider contributes a k-bit slice of its row, so the message
    // count is m·c regardless of n.
    let phase = Instant::now();
    let vectors: Vec<LocalVector> = matrix
        .provider_ids()
        .map(|p| {
            let mut v = LocalVector::new(p, k);
            for (t, &owner) in touched.iter().enumerate() {
                if matrix.get(p, owner) {
                    v.set(OwnerId(t as u32), true);
                }
            }
            v
        })
        .collect();
    // The wall-clock backends (threaded, pipelined) run SecSumShare on
    // real threads; the simulated backends keep the round simulator.
    // Per-provider seeding is identical, so the shares — and therefore
    // every downstream bit — do not depend on this choice.
    let secsum_seed = config.seed ^ next_epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let secsum = match config.backend {
        crate::Backend::Threaded | crate::Backend::Pipelined { .. } => {
            secsumshare_threaded_stats(&vectors, config.c, modulus, secsum_seed)
        }
        crate::Backend::InProcess | crate::Backend::Simulated => {
            secsumshare_sim(&vectors, config.c, modulus, config.link, secsum_seed)
        }
    };
    let secsum_wall = phase.elapsed();

    // Phase 1.2a — update the common count by difference: one
    // CountBelow over the *retained* shares of the touched columns
    // that already existed (old thresholds), one over the fresh shares
    // (new thresholds). Untouched columns keep their common status, so
    // the difference is exact.
    let phase = Instant::now();
    let existing: Vec<usize> = (0..k).filter(|&t| touched[t].index() < n_old).collect();
    let (commons_before, count_old) = if existing.is_empty() {
        (0, StageReport::default())
    } else {
        let old_shares: Vec<Vec<u64>> = prev
            .shares
            .iter()
            .map(|v| existing.iter().map(|&t| v[touched[t].index()]).collect())
            .collect();
        let old_thresholds: Vec<u64> = existing
            .iter()
            .map(|&t| prev.thresholds[touched[t].index()])
            .collect();
        run_count_below(
            &old_shares,
            &old_thresholds,
            width,
            config.backend,
            config.seed ^ 0xcb ^ next_epoch.wrapping_mul(0x5851_f42d_4c95_7f2d),
        )
    };
    let (commons_after, count_new) = run_count_below(
        &secsum.coordinator_shares,
        &new_thresholds,
        width,
        config.backend,
        config.seed ^ 0xcb ^ (next_epoch | 1 << 63).wrapping_mul(0x5851_f42d_4c95_7f2d),
    );
    let common_count = prev.common_count - commons_before + commons_after;
    let count_stage = merge_stages(&count_old, &count_new);
    let count_wall = phase.elapsed();

    // Cleartext λ over the spliced ε vector — O(n) on public data; the
    // O(k) bound covers the secure stages, not public scans.
    let phase = Instant::now();
    let xi = epsilons.iter().map(|e| e.value()).fold(0.0f64, f64::max);
    let lambda = lambda_for(common_count as usize, n_new, xi);
    let lambda_wall = phase.elapsed();

    // Phase 1.2b — mix decisions for the touched columns, with coins
    // keyed by global owner id under the *lineage* seed: the same
    // coins a from-scratch run at this seed would draw, which is what
    // makes touched columns bit-identical to a full construction.
    let phase = Instant::now();
    let (touched_decisions, mix_stage) = run_mix_decision_for_owners(
        &secsum.coordinator_shares,
        &new_thresholds,
        &touched,
        width,
        config.coin_bits,
        lambda,
        config.backend,
        config.seed ^ 0x313,
    );
    let mix_wall = phase.elapsed();

    // β for the touched columns; splice everything into the previous
    // epoch's state and re-publish only the touched cells under the
    // deterministic coins.
    let phase = Instant::now();
    let touched_betas: Vec<f64> = touched_decisions
        .iter()
        .enumerate()
        .map(|(t, &mixed)| {
            if mixed {
                1.0
            } else {
                let parts: Vec<u64> = secsum.coordinator_shares.iter().map(|v| v[t]).collect();
                let freq = recombine_raw(&parts, modulus);
                let sigma = freq as f64 / m as f64;
                config.policy.beta(sigma, touched_eps[t], m)
            }
        })
        .collect();

    let mut published = prev.index.matrix().clone();
    if n_new > n_old {
        published.grow_owners(n_new);
    }
    let mut betas = prev.index.betas().to_vec();
    betas.resize(n_new, 0.0);
    let mut decisions = prev.decisions.clone();
    decisions.resize(n_new, false);
    let mut thresholds = prev.thresholds.clone();
    thresholds.resize(n_new, 0);
    let mut shares = prev.shares.clone();
    for v in &mut shares {
        v.resize(n_new, 0);
    }
    for (t, &owner) in touched.iter().enumerate() {
        let j = owner.index();
        betas[j] = touched_betas[t];
        decisions[j] = touched_decisions[t];
        thresholds[j] = new_thresholds[t];
        for (coord, v) in shares.iter_mut().enumerate() {
            v[j] = secsum.coordinator_shares[coord][t];
        }
        for p in matrix.provider_ids() {
            let bit = publish_cell(config.seed, p, owner, matrix.get(p, owner), betas[j]);
            published.set(p, owner, bit);
        }
    }
    let publish_wall = phase.elapsed();

    let report = ConstructionReport {
        secsum: secsum.stats,
        count_stage,
        mix_stage,
        phases: PhaseWall {
            thresholds: thresholds_wall,
            secsum: secsum_wall,
            count: count_wall,
            lambda: lambda_wall,
            mix: mix_wall,
            publish: publish_wall,
        },
        wall: started.elapsed(),
        epoch: next_epoch,
        columns: k,
    };
    emit_report(registry, &report);

    Ok(DeltaConstruction {
        epoch: IndexEpoch {
            index: PublishedIndex::new(published, betas),
            decisions,
            lambda,
            common_count,
            epoch: next_epoch,
            thresholds,
            epsilons,
            shares,
            config,
        },
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::construct_distributed;
    use eppi_core::delta::{ColumnChange, DeltaEntry};
    use eppi_core::model::ProviderId;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn matrix_with_freqs(m: usize, freqs: &[usize]) -> MembershipMatrix {
        let mut mat = MembershipMatrix::new(m, freqs.len());
        for (j, &f) in freqs.iter().enumerate() {
            for p in 0..f {
                mat.set(
                    ProviderId(((p * 7 + j) % m) as u32),
                    OwnerId(j as u32),
                    true,
                );
            }
        }
        mat
    }

    #[test]
    fn epoch_zero_matches_construct_distributed() {
        let mat = matrix_with_freqs(40, &[30, 4, 17, 0]);
        let e = vec![eps(0.5), eps(0.7), eps(0.2), eps(0.9)];
        let cfg = ProtocolConfig {
            seed: 11,
            ..ProtocolConfig::default()
        };
        let epoch = construct_epoch(&mat, &e, &cfg).unwrap();
        let full = construct_distributed(&mat, &e, &cfg).unwrap();
        assert_eq!(epoch.index(), &full.index);
        assert_eq!(epoch.decisions(), &full.decisions[..]);
        assert_eq!(epoch.common_count(), full.common_count);
        assert_eq!(epoch.epoch(), 0);
    }

    #[test]
    fn delta_equals_full_construction_on_touched_columns() {
        let mat = matrix_with_freqs(40, &[30, 4, 17, 8]);
        let e = vec![eps(0.5), eps(0.7), eps(0.2), eps(0.9)];
        let cfg = ProtocolConfig {
            seed: 3,
            ..ProtocolConfig::default()
        };
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();

        // Change owner 1's membership, add owner 4.
        let mut next = mat.clone();
        next.grow_owners(5);
        next.set(ProviderId(20), OwnerId(1), true);
        next.set(ProviderId(21), OwnerId(1), true);
        for p in 0..6u32 {
            next.set(ProviderId(p), OwnerId(4), true);
        }
        let mut e2 = e.clone();
        e2.push(eps(0.6));
        let mut delta = IndexDelta::new(4);
        delta.record(DeltaEntry {
            owner: OwnerId(1),
            change: ColumnChange::Changed,
            epsilon: e2[1],
        });
        delta.record(DeltaEntry {
            owner: OwnerId(4),
            change: ColumnChange::Added,
            epsilon: e2[4],
        });

        let out = construct_delta(&epoch0, &next, &delta).unwrap();
        let full = construct_distributed(&next, &e2, &cfg).unwrap();

        assert_eq!(out.report.columns, 2);
        assert_eq!(out.report.epoch, 1);
        assert_eq!(out.epoch.common_count(), full.common_count, "exact count");
        assert_eq!(out.epoch.lambda(), full.lambda);
        // Touched columns bit-identical to the from-scratch run.
        for &owner in &[OwnerId(1), OwnerId(4)] {
            let j = owner.index();
            assert_eq!(out.epoch.index().betas()[j], full.index.betas()[j]);
            assert_eq!(out.epoch.decisions()[j], full.decisions[j]);
            for p in next.provider_ids() {
                assert_eq!(
                    out.epoch.index().matrix().get(p, owner),
                    full.index.matrix().get(p, owner),
                    "({p}, {owner})"
                );
            }
        }
        // Untouched columns carried over verbatim (anti-intersection).
        for owner in [OwnerId(0), OwnerId(2), OwnerId(3)] {
            for p in next.provider_ids() {
                assert_eq!(
                    out.epoch.index().matrix().get(p, owner),
                    epoch0.index().matrix().get(p, owner),
                    "({p}, {owner})"
                );
            }
        }
    }

    #[test]
    fn empty_delta_is_free_and_bumps_the_epoch() {
        let mat = matrix_with_freqs(30, &[10, 5]);
        let e = vec![eps(0.4); 2];
        let cfg = ProtocolConfig::default();
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let out = construct_delta(&epoch0, &mat, &IndexDelta::new(2)).unwrap();
        assert_eq!(out.epoch.epoch(), 1);
        assert_eq!(out.epoch.index(), epoch0.index());
        assert_eq!(out.report.columns, 0);
        assert_eq!(out.report.secsum.messages, 0);
        assert_eq!(out.report.count_stage.circuit.total_gates, 0);
    }

    #[test]
    fn withdrawals_zero_the_column() {
        let mat = matrix_with_freqs(30, &[10, 5]);
        let e = vec![eps(0.4); 2];
        let cfg = ProtocolConfig {
            seed: 9,
            ..ProtocolConfig::default()
        };
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let mut next = mat.clone();
        for p in next.provider_ids() {
            next.set(p, OwnerId(1), false);
        }
        let mut delta = IndexDelta::new(2);
        delta.record(DeltaEntry {
            owner: OwnerId(1),
            change: ColumnChange::Withdrawn,
            epsilon: Epsilon::ZERO,
        });
        let out = construct_delta(&epoch0, &next, &delta).unwrap();
        // ε = 0 ⇒ β* = 0 for a zero-frequency column unless mixed; if
        // mixed the column is all decoys — either way recall over the
        // *new* truth (nothing) holds and the column matches a full run.
        let full = construct_distributed(&next, &[e[0], Epsilon::ZERO], &cfg).unwrap();
        for p in next.provider_ids() {
            assert_eq!(
                out.epoch.index().matrix().get(p, OwnerId(1)),
                full.index.matrix().get(p, OwnerId(1))
            );
        }
    }

    #[test]
    fn resume_is_the_identity_on_live_epochs() {
        let mat = matrix_with_freqs(40, &[30, 4, 17, 8]);
        let e = vec![eps(0.5), eps(0.7), eps(0.2), eps(0.9)];
        let cfg = ProtocolConfig {
            seed: 5,
            ..ProtocolConfig::default()
        };
        let epoch0 = construct_epoch(&mat, &e, &cfg).unwrap();
        let resumed = IndexEpoch::resume(epoch0.clone().into_state()).expect("valid state");
        assert_eq!(resumed.index(), epoch0.index());
        assert_eq!(resumed.decisions(), epoch0.decisions());
        assert_eq!(resumed.thresholds(), epoch0.thresholds());
        assert_eq!(resumed.shares(), epoch0.shares());
        assert_eq!(resumed.common_count(), epoch0.common_count());
        assert_eq!(resumed.epoch(), epoch0.epoch());

        // The resumed epoch continues the lineage bit-identically.
        let mut next = mat.clone();
        next.set(ProviderId(11), OwnerId(2), true);
        let mut delta = IndexDelta::new(4);
        delta.record(DeltaEntry {
            owner: OwnerId(2),
            change: ColumnChange::Changed,
            epsilon: e[2],
        });
        let live = construct_delta(&epoch0, &next, &delta).unwrap();
        let cold = construct_delta(&resumed, &next, &delta).unwrap();
        assert_eq!(live.epoch.index(), cold.epoch.index());
        assert_eq!(live.epoch.decisions(), cold.epoch.decisions());
        assert_eq!(live.epoch.common_count(), cold.epoch.common_count());
    }

    #[test]
    fn resume_rejects_inconsistent_state() {
        let mat = matrix_with_freqs(20, &[10, 5, 3]);
        let e = vec![eps(0.4); 3];
        let epoch0 = construct_epoch(&mat, &e, &ProtocolConfig::default()).unwrap();

        let mut short = epoch0.clone().into_state();
        short.decisions.pop();
        assert!(matches!(
            IndexEpoch::resume(short),
            Err(EppiError::DimensionMismatch { .. })
        ));

        let mut wide = epoch0.clone().into_state();
        wide.shares.push(vec![0; 3]);
        assert!(matches!(
            IndexEpoch::resume(wide),
            Err(EppiError::DimensionMismatch { .. })
        ));

        let mut ring = epoch0.clone().into_state();
        ring.shares[0][0] = u64::MAX;
        assert!(matches!(
            IndexEpoch::resume(ring),
            Err(EppiError::InvalidResumeState { .. })
        ));

        let mut lam = epoch0.clone().into_state();
        lam.lambda = 2.5;
        assert!(matches!(
            IndexEpoch::resume(lam),
            Err(EppiError::InvalidResumeState { .. })
        ));

        let mut count = epoch0.into_state();
        count.common_count = 99;
        assert!(matches!(
            IndexEpoch::resume(count),
            Err(EppiError::InvalidResumeState { .. })
        ));
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let mat = matrix_with_freqs(30, &[10, 5]);
        let e = vec![eps(0.4); 2];
        let epoch0 = construct_epoch(&mat, &e, &ProtocolConfig::default()).unwrap();
        // Delta based on the wrong owner count.
        let bad = IndexDelta::new(3);
        assert!(matches!(
            construct_delta(&epoch0, &mat, &bad),
            Err(EppiError::DimensionMismatch { .. })
        ));
        // Matrix owner count disagrees with the delta's target.
        let mut grown = mat.clone();
        grown.grow_owners(4);
        assert!(matches!(
            construct_delta(&epoch0, &grown, &IndexDelta::new(2)),
            Err(EppiError::DimensionMismatch { .. })
        ));
    }
}
