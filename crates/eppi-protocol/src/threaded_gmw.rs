//! Multi-threaded GMW execution over the threaded party runtime.
//!
//! `eppi_mpc::gmw::execute` evaluates all parties in one thread — exact
//! and fast for correctness work, but it cannot produce wall-clock
//! scaling curves. This module runs the same protocol with one OS thread
//! per party exchanging real messages (crossbeam channels), which is the
//! backend the Fig. 6a / 6c execution-time experiments use.
//!
//! Communication structure per AND layer: every party broadcasts its
//! `d = x⊕a` and `e = y⊕b` shares for all AND gates of the layer in one
//! batched message (2 bits per gate), then combines the received shares —
//! so per-party work per layer is `O(gates · parties)` and total traffic
//! `O(gates · parties²)`, the super-linear growth the paper observes for
//! the pure-MPC baseline.

use eppi_mpc::circuit::{Circuit, Gate, InputLayout};
use eppi_net::threaded::run_parties;
use eppi_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Traffic report of a threaded GMW run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadedGmwReport {
    /// Number of parties.
    pub parties: usize,
    /// AND gates evaluated.
    pub and_gates: usize,
    /// Synchronized AND-opening rounds (circuit AND-depth).
    pub and_rounds: usize,
    /// Total messages exchanged.
    pub messages: u64,
    /// Total payload bytes exchanged.
    pub bytes: u64,
}

/// Per-party Beaver triple shares for every AND gate, dealt ahead of the
/// online phase.
struct DealtTriples {
    /// `[party][and_gate] -> (a, b, c)` share bits.
    per_party: Vec<Vec<(bool, bool, bool)>>,
}

fn deal_triples(parties: usize, and_gates: usize, rng: &mut StdRng) -> DealtTriples {
    let mut per_party = vec![Vec::with_capacity(and_gates); parties];
    for _ in 0..and_gates {
        let a: bool = rng.gen();
        let b: bool = rng.gen();
        let c = a & b;
        let mut rem = (a, b, c);
        for shares in per_party.iter_mut().take(parties - 1) {
            let sa: bool = rng.gen();
            let sb: bool = rng.gen();
            let sc: bool = rng.gen();
            shares.push((sa, sb, sc));
            rem = (rem.0 ^ sa, rem.1 ^ sb, rem.2 ^ sc);
        }
        per_party[parties - 1].push(rem);
    }
    DealtTriples { per_party }
}

/// Per-level gate schedule: free gates first, then the level's AND gates
/// (opened together in one round).
struct Schedule {
    levels: Vec<(Vec<usize>, Vec<usize>)>,
    /// AND gate index → dense triple index.
    triple_index: Vec<usize>,
}

fn schedule(circuit: &Circuit) -> Schedule {
    let inputs = circuit.inputs();
    let mut wire_level = vec![0usize; circuit.wires()];
    let mut levels: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    let mut triple_index = vec![usize::MAX; circuit.gates().len()];
    let mut next_triple = 0usize;
    for (k, gate) in circuit.gates().iter().enumerate() {
        let this = inputs + k;
        let (level, is_and) = match *gate {
            Gate::Xor(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), false),
            Gate::Not(a) => (wire_level[a.index()], false),
            Gate::Const(_) => (0, false),
            Gate::And(a, b) => (wire_level[a.index()].max(wire_level[b.index()]), true),
        };
        if levels.len() <= level {
            levels.resize_with(level + 1, Default::default);
        }
        if is_and {
            levels[level].1.push(k);
            wire_level[this] = level + 1;
            triple_index[k] = next_triple;
            next_triple += 1;
        } else {
            levels[level].0.push(k);
            wire_level[this] = level;
        }
    }
    Schedule {
        levels,
        triple_index,
    }
}

/// Executes `circuit` with one thread per party. Returns the opened
/// outputs (identical to `circuit.eval` on the flattened inputs) and a
/// traffic report. Telemetry goes to the process-global registry; see
/// [`execute_threaded_with_registry`].
///
/// # Panics
///
/// Panics if the layout does not cover the circuit inputs or `inputs`
/// disagrees with the layout.
pub fn execute_threaded(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    seed: u64,
) -> (Vec<bool>, ThreadedGmwReport) {
    execute_threaded_with_registry(circuit, layout, inputs, seed, eppi_telemetry::global())
}

/// [`execute_threaded`] reporting telemetry into a caller-owned
/// registry: the `gmw.round_ns` histogram gets one sample per
/// synchronized AND round (wall time observed by party 0), and the
/// `gmw.and_gates` / `gmw.rounds` counters accumulate circuit work
/// across runs.
///
/// # Panics
///
/// Panics if the layout does not cover the circuit inputs or `inputs`
/// disagrees with the layout.
pub fn execute_threaded_with_registry(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    seed: u64,
    registry: &Registry,
) -> (Vec<bool>, ThreadedGmwReport) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    assert_eq!(inputs.len(), layout.parties(), "one input vector per party");
    let parties = layout.parties();
    let and_gates = circuit.stats().and_gates;

    let mut dealer_rng = StdRng::seed_from_u64(seed ^ 0xd1a1e5);
    let triples = Arc::new(deal_triples(parties, and_gates, &mut dealer_rng));
    let sched = Arc::new(schedule(circuit));
    let and_rounds = sched
        .levels
        .iter()
        .filter(|(_, ands)| !ands.is_empty())
        .count();
    let round_hist = registry.histogram("gmw.round_ns", &[]);

    let (mut results, counters) = run_parties::<Vec<bool>, Vec<bool>, _>(parties, {
        let triples = Arc::clone(&triples);
        let sched = Arc::clone(&sched);
        let round_hist = Arc::clone(&round_hist);
        move |mut h| {
            let me = h.me().index();
            let mut rng =
                StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9e3779b97f4a7c15));
            let n_inputs = circuit.inputs();
            let mut shares = vec![false; circuit.wires()];

            // Input sharing: for each of my inputs, deal XOR shares to
            // everyone; batch one message per peer.
            let my_range = layout.range_of(me);
            let my_bits = &inputs[me];
            let mut to_peer: Vec<Vec<bool>> = vec![Vec::with_capacity(my_bits.len()); parties];
            for (off, &bit) in my_bits.iter().enumerate() {
                let wire = my_range.start + off;
                let mut acc = false;
                for (p, batch) in to_peer.iter_mut().enumerate() {
                    if p == me {
                        batch.push(false); // placeholder, fixed below
                    } else {
                        let s: bool = rng.gen();
                        acc ^= s;
                        batch.push(s);
                    }
                }
                let own = bit ^ acc;
                to_peer[me][off] = own;
                shares[wire] = own;
            }
            for (p, batch) in to_peer.into_iter().enumerate() {
                if p != me && parties > 1 {
                    h.send(eppi_net::NodeId(p), batch);
                }
            }
            if parties > 1 {
                for (from, batch) in h.gather() {
                    let range = layout.range_of(from.index());
                    for (off, &s) in batch.iter().enumerate() {
                        shares[range.start + off] = s;
                    }
                }
            }

            // Level-synchronized evaluation.
            for (free, ands) in &sched.levels {
                for &k in free {
                    let this = n_inputs + k;
                    shares[this] = match circuit.gates()[k] {
                        Gate::Xor(a, b) => shares[a.index()] ^ shares[b.index()],
                        Gate::Not(a) => {
                            if me == 0 {
                                !shares[a.index()]
                            } else {
                                shares[a.index()]
                            }
                        }
                        Gate::Const(v) => me == 0 && v,
                        Gate::And(..) => unreachable!("AND scheduled as free gate"),
                    };
                }
                if ands.is_empty() {
                    continue;
                }
                // Party 0 times each synchronized round; one shared
                // histogram record per round is negligible next to the
                // broadcast/gather it measures.
                let round_started = (me == 0).then(Instant::now);
                // Batched opening of d = x⊕a, e = y⊕b for the layer.
                let mut my_de = Vec::with_capacity(ands.len() * 2);
                for &k in ands {
                    let (a, b) = match circuit.gates()[k] {
                        Gate::And(a, b) => (a, b),
                        _ => unreachable!(),
                    };
                    let (ta, tb, _) = triples.per_party[me][sched.triple_index[k]];
                    my_de.push(shares[a.index()] ^ ta);
                    my_de.push(shares[b.index()] ^ tb);
                }
                let mut opened = my_de.clone();
                if parties > 1 {
                    h.broadcast(my_de);
                    for (_, batch) in h.gather() {
                        for (i, s) in batch.into_iter().enumerate() {
                            opened[i] ^= s;
                        }
                    }
                }
                for (idx, &k) in ands.iter().enumerate() {
                    let d = opened[idx * 2];
                    let e = opened[idx * 2 + 1];
                    let (ta, tb, tc) = triples.per_party[me][sched.triple_index[k]];
                    let mut z = tc ^ (d & tb) ^ (e & ta);
                    if me == 0 {
                        z ^= d & e;
                    }
                    shares[n_inputs + k] = z;
                }
                if let Some(started) = round_started {
                    round_hist.record(started.elapsed().as_nanos() as u64);
                }
            }

            // Output opening.
            let my_out: Vec<bool> = circuit
                .outputs()
                .iter()
                .map(|o| shares[o.index()])
                .collect();
            let mut opened = my_out.clone();
            if parties > 1 && !opened.is_empty() {
                h.broadcast(my_out);
                for (_, batch) in h.gather() {
                    for (i, s) in batch.into_iter().enumerate() {
                        opened[i] ^= s;
                    }
                }
            }
            opened
        }
    });

    let outputs = results.swap_remove(0);
    debug_assert!(
        results.iter().all(|r| *r == outputs),
        "parties disagree on outputs"
    );
    registry.counter("gmw.and_gates", &[]).add(and_gates as u64);
    registry.counter("gmw.rounds", &[]).add(and_rounds as u64);
    let report = ThreadedGmwReport {
        parties,
        and_gates,
        and_rounds,
        messages: counters.messages(),
        bytes: counters.bytes(),
    };
    (outputs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_cleartext_eval() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..10 {
            let mut cb = CircuitBuilder::new();
            let a = cb.input_word(5);
            let b = cb.input_word(5);
            let c = cb.input_word(5);
            let sum = cb.add_words_expand(&a, &b);
            let c6 = cb.resize_word(&c, 6);
            let lt = cb.lt_words(&sum, &c6);
            let eq = cb.eq_words(&a, &c);
            let circuit = cb.finish(vec![lt, eq]);
            let layout = InputLayout::new(vec![5, 5, 5]);

            let vals: Vec<u64> = (0..3).map(|_| rng.gen_range(0..32)).collect();
            let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 5)).collect();
            let expect = circuit.eval(&layout.flatten(&inputs));
            let (got, report) = execute_threaded(&circuit, &layout, &inputs, 1000 + trial);
            assert_eq!(got, expect, "trial {trial}: vals {vals:?}");
            assert_eq!(report.parties, 3);
        }
    }

    #[test]
    fn agrees_with_in_process_gmw() {
        let mut cb = CircuitBuilder::new();
        let bits: Vec<_> = (0..6).map(|_| cb.input()).collect();
        let count = cb.popcount(&bits);
        let circuit = cb.finish_word(count);
        let layout = InputLayout::new(vec![1; 6]);
        let inputs: Vec<Vec<bool>> = (0..6).map(|p| vec![p % 2 == 0]).collect();

        let mut rng = StdRng::seed_from_u64(3);
        let (a, _) = eppi_mpc::gmw::execute(&circuit, &layout, &inputs, &mut rng);
        let (b, _) = execute_threaded(&circuit, &layout, &inputs, 77);
        assert_eq!(word_value(&a), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn single_party_runs_without_communication() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.const_word(9, 4);
        let ge = cb.ge_words(&a, &b);
        let circuit = cb.finish(vec![ge]);
        let layout = InputLayout::new(vec![4]);
        let (out, report) = execute_threaded(&circuit, &layout, &[to_bits(12, 4)], 5);
        assert_eq!(out, vec![true]);
        assert_eq!(report.bytes, 0);
    }

    #[test]
    fn reports_rounds_and_publishes_round_telemetry() {
        use eppi_telemetry::MetricValue;

        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4, 4]);
        let inputs = vec![to_bits(3, 4), to_bits(9, 4)];
        let registry = Registry::new();
        let (out, report) =
            execute_threaded_with_registry(&circuit, &layout, &inputs, 11, &registry);
        assert_eq!(out, vec![true]);
        assert!(report.and_rounds >= 1);
        assert!(report.and_rounds <= report.and_gates);
        let snap = registry.snapshot();
        match &snap.find("gmw.round_ns", &[]).unwrap().value {
            MetricValue::Histogram(h) => assert_eq!(h.count, report.and_rounds as u64),
            other => panic!("unexpected metric {other:?}"),
        }
        assert_eq!(
            snap.find("gmw.rounds", &[]).unwrap().value,
            MetricValue::Counter(report.and_rounds as u64)
        );
        assert_eq!(
            snap.find("gmw.and_gates", &[]).unwrap().value,
            MetricValue::Counter(report.and_gates as u64)
        );
    }

    #[test]
    fn traffic_grows_superlinearly_with_parties() {
        let build = |parties: usize| {
            let mut cb = CircuitBuilder::new();
            let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
            let all = cb.and_many(&bits);
            (cb.finish(vec![all]), InputLayout::new(vec![1; parties]))
        };
        let mut per_and = Vec::new();
        for parties in [3usize, 6, 12] {
            let (circuit, layout) = build(parties);
            let inputs = vec![vec![true]; parties];
            let (_, report) = execute_threaded(&circuit, &layout, &inputs, 9);
            per_and.push(report.bytes as f64 / report.and_gates.max(1) as f64);
        }
        assert!(per_and[1] > 1.8 * per_and[0], "{per_and:?}");
        assert!(per_and[2] > 1.8 * per_and[1], "{per_and:?}");
    }
}
