//! Multi-threaded GMW execution over the threaded party runtime.
//!
//! One of the three execution backends of the single packed GMW core
//! ([`eppi_mpc::gmw_core`]): each party runs the straight-line
//! [`run_party`] protocol on its own OS thread, exchanging real
//! messages through a [`ThreadedTransport`] (crossbeam channels). This
//! is the backend the Fig. 6a / 6c wall-clock execution-time
//! experiments use — the in-process executor is exact but cannot
//! produce scaling curves, and the simulator reports modeled rather
//! than measured time.
//!
//! Communication structure per AND layer: every party broadcasts one
//! [`PackedBatch`] carrying its `d = x⊕a` and `e = y⊕b` shares for all
//! AND gates of the layer — word-aligned, 64 gates per `u64` word, not
//! a per-gate bit pair — then combines the received words. Per-party
//! work per layer is `O(gates/64 · parties)` word operations and total
//! traffic stays `O(gates · parties²)` logical bits, the super-linear
//! growth the paper observes for the pure-MPC baseline. The
//! [`ThreadedGmwReport`] carries both traffic units of the workspace
//! convention (see `eppi-net`'s crate docs).

use eppi_mpc::circuit::{Circuit, InputLayout};
use eppi_mpc::gmw_core::{
    deal_packed_triples, logical_bits, protocol_rounds, run_party, PartyCore, Schedule,
};
use eppi_net::threaded::run_parties;
use eppi_net::traced::TracedTransport;
use eppi_net::transport::{PackedBatch, ThreadedTransport};
use eppi_telemetry::Registry;
use eppi_trace::{SpanCtx, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Traffic report of a threaded GMW run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadedGmwReport {
    /// Number of parties.
    pub parties: usize,
    /// AND gates evaluated.
    pub and_gates: usize,
    /// Synchronized AND-opening rounds (circuit AND-depth).
    pub and_rounds: usize,
    /// Protocol rounds including input sharing and output opening.
    pub rounds: usize,
    /// Total messages exchanged.
    pub messages: u64,
    /// Total logical payload bits exchanged (the paper's cost model).
    pub bits_sent: u64,
    /// Total on-the-wire bytes of the packed batch encoding.
    pub bytes: u64,
}

/// Executes `circuit` with one thread per party. Returns the opened
/// outputs (identical to `circuit.eval` on the flattened inputs) and a
/// traffic report. Telemetry goes to the process-global registry; see
/// [`execute_threaded_with_registry`].
///
/// # Panics
///
/// Panics if the layout does not cover the circuit inputs or `inputs`
/// disagrees with the layout.
pub fn execute_threaded(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    seed: u64,
) -> (Vec<bool>, ThreadedGmwReport) {
    execute_threaded_with_registry(circuit, layout, inputs, seed, eppi_telemetry::global())
}

/// [`execute_threaded`] reporting telemetry into a caller-owned
/// registry: the `gmw.round_ns` histogram gets one sample per
/// synchronized AND round (wall time observed by party 0), and the
/// `gmw.and_gates` / `gmw.rounds` counters accumulate circuit work
/// across runs.
///
/// # Panics
///
/// Panics if the layout does not cover the circuit inputs or `inputs`
/// disagrees with the layout.
pub fn execute_threaded_with_registry(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    seed: u64,
    registry: &Registry,
) -> (Vec<bool>, ThreadedGmwReport) {
    execute_threaded_traced(
        circuit,
        layout,
        inputs,
        seed,
        registry,
        &Tracer::disabled(),
        SpanCtx::NONE,
    )
}

/// [`execute_threaded_with_registry`] with causal tracing: the run is
/// one `mpc.execute` span (a child of `parent`, or a fresh trace root
/// when `parent` is [`SpanCtx::NONE`], payload = AND gates), each party
/// thread runs under its own `mpc.party` child span (payload = party
/// id), every protocol exchange is a `net.exchange` span via
/// [`TracedTransport`], and each completed AND round drops an
/// `mpc.and_round` instant (payload = round index) per party. Passing a
/// disabled tracer makes this identical to the untraced entry point.
///
/// # Panics
///
/// Panics if the layout does not cover the circuit inputs or `inputs`
/// disagrees with the layout.
pub fn execute_threaded_traced(
    circuit: &Circuit,
    layout: &InputLayout,
    inputs: &[Vec<bool>],
    seed: u64,
    registry: &Registry,
    tracer: &Tracer,
    parent: SpanCtx,
) -> (Vec<bool>, ThreadedGmwReport) {
    assert_eq!(
        layout.total_inputs(),
        circuit.inputs(),
        "layout does not cover the circuit inputs"
    );
    assert_eq!(inputs.len(), layout.parties(), "one input vector per party");
    let parties = layout.parties();
    let sched = Schedule::new(circuit);

    let mut dealer_rng = StdRng::seed_from_u64(seed ^ 0xd1a1e5);
    let triples = deal_packed_triples(parties, &sched, &mut dealer_rng);
    let and_rounds = sched.and_rounds();
    let round_hist = registry.histogram("gmw.round_ns", &[]);

    let mut exec_span = if parent.is_none() {
        tracer.root("mpc.execute")
    } else {
        tracer.child(parent, "mpc.execute")
    };
    exec_span.set_payload(sched.and_gates() as u64);
    let exec_ctx = exec_span.ctx();

    let (mut results, counters) = run_parties::<PackedBatch, (Vec<bool>, u64), _>(parties, {
        let sched = &sched;
        let triples = &triples;
        let round_hist = Arc::clone(&round_hist);
        let tracer = tracer.clone();
        move |h| {
            let me = h.me().index();
            let mut party_span = tracer.child(exec_ctx, "mpc.party");
            party_span.set_payload(me as u64);
            let pctx = party_span.ctx();
            let mut transport =
                TracedTransport::new(ThreadedTransport::new(h), tracer.clone(), pctx);
            let mut core = PartyCore::new(circuit, layout, sched, me, triples[me].clone());
            let mut rng =
                StdRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9e3779b97f4a7c15));
            // Party 0 times each synchronized round; one shared
            // histogram record per round is negligible next to the
            // broadcast/gather it measures.
            let out = run_party(
                &mut core,
                &inputs[me],
                &mut rng,
                &mut transport,
                |round, took| {
                    tracer.instant(pctx, "mpc.and_round", round as u64);
                    if me == 0 {
                        round_hist.record(took.as_nanos() as u64);
                    }
                },
            );
            let bits = transport.into_inner().bits_sent();
            (out, bits)
        }
    });

    let bits_sent: u64 = results.iter().map(|&(_, bits)| bits).sum();
    debug_assert_eq!(bits_sent, logical_bits(circuit, layout));
    let outputs = results.swap_remove(0).0;
    debug_assert!(
        results.iter().all(|(r, _)| *r == outputs),
        "parties disagree on outputs"
    );
    registry
        .counter("gmw.and_gates", &[])
        .add(sched.and_gates() as u64);
    registry.counter("gmw.rounds", &[]).add(and_rounds as u64);
    let report = ThreadedGmwReport {
        parties,
        and_gates: sched.and_gates(),
        and_rounds,
        rounds: protocol_rounds(circuit, layout, &sched),
        messages: counters.messages(),
        bits_sent,
        bytes: counters.bytes(),
    };
    (outputs, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eppi_mpc::builder::{to_bits, word_value, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_cleartext_eval() {
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..10 {
            let mut cb = CircuitBuilder::new();
            let a = cb.input_word(5);
            let b = cb.input_word(5);
            let c = cb.input_word(5);
            let sum = cb.add_words_expand(&a, &b);
            let c6 = cb.resize_word(&c, 6);
            let lt = cb.lt_words(&sum, &c6);
            let eq = cb.eq_words(&a, &c);
            let circuit = cb.finish(vec![lt, eq]);
            let layout = InputLayout::new(vec![5, 5, 5]);

            let vals: Vec<u64> = (0..3).map(|_| rng.gen_range(0..32)).collect();
            let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 5)).collect();
            let expect = circuit.eval(&layout.flatten(&inputs));
            let (got, report) = execute_threaded(&circuit, &layout, &inputs, 1000 + trial);
            assert_eq!(got, expect, "trial {trial}: vals {vals:?}");
            assert_eq!(report.parties, 3);
        }
    }

    #[test]
    fn agrees_with_in_process_gmw() {
        let mut cb = CircuitBuilder::new();
        let bits: Vec<_> = (0..6).map(|_| cb.input()).collect();
        let count = cb.popcount(&bits);
        let circuit = cb.finish_word(count);
        let layout = InputLayout::new(vec![1; 6]);
        let inputs: Vec<Vec<bool>> = (0..6).map(|p| vec![p % 2 == 0]).collect();

        let mut rng = StdRng::seed_from_u64(3);
        let (a, in_process) = eppi_mpc::gmw::execute(&circuit, &layout, &inputs, &mut rng);
        let (b, threaded) = execute_threaded(&circuit, &layout, &inputs, 77);
        assert_eq!(word_value(&a), 3);
        assert_eq!(a, b);
        // Both backends report the same analytic traffic/round figures.
        assert_eq!(threaded.bits_sent, in_process.bits_sent);
        assert_eq!(threaded.rounds, in_process.rounds);
    }

    #[test]
    fn single_party_runs_without_communication() {
        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.const_word(9, 4);
        let ge = cb.ge_words(&a, &b);
        let circuit = cb.finish(vec![ge]);
        let layout = InputLayout::new(vec![4]);
        let (out, report) = execute_threaded(&circuit, &layout, &[to_bits(12, 4)], 5);
        assert_eq!(out, vec![true]);
        assert_eq!(report.bytes, 0);
        assert_eq!(report.bits_sent, 0);
    }

    #[test]
    fn reports_rounds_and_publishes_round_telemetry() {
        use eppi_telemetry::MetricValue;

        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4, 4]);
        let inputs = vec![to_bits(3, 4), to_bits(9, 4)];
        let registry = Registry::new();
        let (out, report) =
            execute_threaded_with_registry(&circuit, &layout, &inputs, 11, &registry);
        assert_eq!(out, vec![true]);
        assert!(report.and_rounds >= 1);
        assert!(report.and_rounds <= report.and_gates);
        // input round + AND rounds + output round for a 2-party run.
        assert_eq!(report.rounds, report.and_rounds + 2);
        let snap = registry.snapshot();
        match &snap.expect("gmw.round_ns", &[]).unwrap().value {
            MetricValue::Histogram(h) => assert_eq!(h.count, report.and_rounds as u64),
            other => panic!("unexpected metric {other:?}"),
        }
        assert_eq!(
            snap.expect("gmw.rounds", &[]).unwrap().value,
            MetricValue::Counter(report.and_rounds as u64)
        );
        assert_eq!(
            snap.expect("gmw.and_gates", &[]).unwrap().value,
            MetricValue::Counter(report.and_gates as u64)
        );
    }

    #[test]
    fn traced_run_spans_every_party_round_and_exchange() {
        use eppi_trace::{TraceConfig, Tracer};

        let mut cb = CircuitBuilder::new();
        let a = cb.input_word(4);
        let b = cb.input_word(4);
        let lt = cb.lt_words(&a, &b);
        let circuit = cb.finish(vec![lt]);
        let layout = InputLayout::new(vec![4, 4]);
        let inputs = vec![to_bits(3, 4), to_bits(9, 4)];
        let registry = Registry::new();
        let tracer = Tracer::new(TraceConfig::default());

        let (out, report) = execute_threaded_traced(
            &circuit,
            &layout,
            &inputs,
            11,
            &registry,
            &tracer,
            eppi_trace::SpanCtx::NONE,
        );
        assert_eq!(out, vec![true]);

        let log = tracer.collect();
        let traces = log.trace_ids();
        assert_eq!(traces.len(), 1, "one mpc.execute root trace");
        let tree = log.span_tree(traces[0]).unwrap();
        assert_eq!(tree.name, "mpc.execute");
        assert_eq!(tree.payload, report.and_gates as u64);
        assert_eq!(tree.count("mpc.party"), report.parties);
        // Every protocol round of every party is one exchange span, and
        // every AND round drops one instant per party.
        assert_eq!(
            tree.count("net.exchange"),
            report.parties * report.rounds,
            "{}",
            log.render(traces[0])
        );
        assert_eq!(
            tree.count("mpc.and_round"),
            report.parties * report.and_rounds
        );
        for party in &tree.children {
            assert_eq!(party.count("net.exchange"), report.rounds);
        }

        // The untraced entry point reports identically.
        let (out2, report2) = execute_threaded(&circuit, &layout, &inputs, 11);
        assert_eq!(out2, out);
        assert_eq!(report2, report);
    }

    #[test]
    fn traffic_grows_superlinearly_with_parties() {
        let build = |parties: usize| {
            let mut cb = CircuitBuilder::new();
            let bits: Vec<_> = (0..parties).map(|_| cb.input()).collect();
            let all = cb.and_many(&bits);
            (cb.finish(vec![all]), InputLayout::new(vec![1; parties]))
        };
        let mut per_and = Vec::new();
        for parties in [3usize, 6, 12] {
            let (circuit, layout) = build(parties);
            let inputs = vec![vec![true]; parties];
            let (_, report) = execute_threaded(&circuit, &layout, &inputs, 9);
            per_and.push(report.bytes as f64 / report.and_gates.max(1) as f64);
        }
        assert!(per_and[1] > 1.8 * per_and[0], "{per_and:?}");
        assert!(per_and[2] > 1.8 * per_and[1], "{per_and:?}");
    }
}
