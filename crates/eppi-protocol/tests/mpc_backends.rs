//! Cross-backend equivalence of the one packed GMW core.
//!
//! All four execution backends (in-process, simulated, threaded,
//! pipelined) are adapters over `eppi_mpc::gmw_core`; these property
//! tests drive random circuits, seeds and party counts through every
//! backend plus the frozen pre-refactor `Vec<bool>` reference executor
//! and demand:
//!
//! * bit-identical opened outputs everywhere (and equal to the
//!   cleartext evaluation),
//! * identical protocol-round counts on every report — the analytic
//!   `protocol_rounds` figure all backends now share — and
//! * identical logical-bit accounting, with the pipelined runtime's
//!   multi-lane aggregate equal to the per-lane lockstep-oracle sum.

use eppi_core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi_core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi_mpc::builder::{to_bits, CircuitBuilder, Word};
use eppi_mpc::circuit::{Circuit, InputLayout};
use eppi_mpc::gmw;
use eppi_mpc::gmw_core::{logical_bits, reference};
use eppi_net::sim::LinkModel;
use eppi_protocol::construct::{construct_distributed, ProtocolConfig};
use eppi_protocol::epoch::{construct_delta, construct_epoch};
use eppi_protocol::sim_gmw::execute_simulated;
use eppi_protocol::threaded_gmw::execute_threaded;
use eppi_protocol::{execute_pipelined, Backend, LaneSpec, PipelineConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random layered circuit over `parties` input words: a few
/// rounds of randomly chosen word combinators (mixing AND-heavy and
/// free operations), outputting one surviving word plus a comparison
/// bit so both multi-bit and single-bit openings are exercised.
fn random_circuit(
    parties: usize,
    width: usize,
    ops: usize,
    gen_seed: u64,
) -> (Circuit, InputLayout) {
    let mut rng = StdRng::seed_from_u64(gen_seed);
    let mut cb = CircuitBuilder::new();
    let mut pool: Vec<Word> = (0..parties).map(|_| cb.input_word(width)).collect();
    for _ in 0..ops {
        let a = pool[rng.gen_range(0..pool.len())].clone();
        let b = pool[rng.gen_range(0..pool.len())].clone();
        let w = match rng.gen_range(0..6u32) {
            0 => cb.add_words(&a, &b),
            1 => cb.sub_words(&a, &b),
            2 => cb.xor_words(&a, &b),
            3 => {
                let sel = cb.lt_words(&a, &b);
                cb.mux_word(sel, &a, &b)
            }
            4 => {
                let bits: Vec<_> = a.bits().to_vec();
                let count = cb.popcount(&bits);
                cb.resize_word(&count, width)
            }
            _ => {
                let k = rng.gen_range(0..width.max(1));
                let shifted = cb.shl_words(&a, k);
                cb.resize_word(&shifted, width)
            }
        };
        pool.push(w);
    }
    let last = pool[pool.len() - 1].clone();
    let prev = pool[pool.len() - 2].clone();
    let cmp = cb.ge_words(&last, &prev);
    let mut outs = last.bits().to_vec();
    outs.push(cmp);
    (cb.finish(outs), InputLayout::new(vec![width; parties]))
}

/// One published column as packed provider words plus its β — the unit
/// the delta-equivalence property compares bit-for-bit.
fn column(index: &PublishedIndex, owner: OwnerId) -> (Vec<u64>, f64) {
    (
        index.matrix().column_words(owner),
        index.betas()[owner.index()],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Outputs are bit-identical across all four executors and match
    /// the cleartext evaluation; all round counts agree.
    #[test]
    fn all_backends_agree_bit_for_bit(
        parties in 2usize..=4,
        width in 3usize..=6,
        ops in 2usize..=6,
        gen_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let (circuit, layout) = random_circuit(parties, width, ops, gen_seed);
        let mut input_rng = StdRng::seed_from_u64(gen_seed ^ 0x1249);
        let inputs: Vec<Vec<bool>> = (0..parties)
            .map(|_| to_bits(input_rng.gen_range(0..(1u64 << width)), width))
            .collect();
        let clear = circuit.eval(&layout.flatten(&inputs));

        let mut ref_rng = StdRng::seed_from_u64(run_seed);
        let (ref_out, ref_stats) =
            reference::execute_unpacked(&circuit, &layout, &inputs, &mut ref_rng);
        prop_assert_eq!(&ref_out, &clear, "reference vs cleartext");

        let mut rng = StdRng::seed_from_u64(run_seed ^ 0x5eed);
        let (packed_out, packed_stats) = gmw::execute(&circuit, &layout, &inputs, &mut rng);
        prop_assert_eq!(&packed_out, &clear, "packed in-process vs cleartext");

        let (thr_out, thr_report) = execute_threaded(&circuit, &layout, &inputs, run_seed);
        prop_assert_eq!(&thr_out, &clear, "threaded vs cleartext");

        let (sim_out, sim_stats) =
            execute_simulated(&circuit, &layout, &inputs, LinkModel::LAN, run_seed);
        prop_assert_eq!(&sim_out, &clear, "simulated vs cleartext");

        // The pipelined runtime running this circuit as one lane at the
        // same seed is the lockstep oracle's equal: same outputs, same
        // analytic rounds, same logical bits.
        let lanes = [LaneSpec { circuit: &circuit, layout: &layout, inputs: &inputs, seed: run_seed }];
        let (mut pipe_outs, pipe_report) =
            execute_pipelined(&lanes, &PipelineConfig::with_workers(2)).expect("pipelined run");
        prop_assert_eq!(&pipe_outs.swap_remove(0), &clear, "pipelined vs cleartext");

        // Identical round counts on every report.
        prop_assert_eq!(packed_stats.rounds, ref_stats.rounds);
        prop_assert_eq!(thr_report.rounds, ref_stats.rounds);
        prop_assert_eq!(sim_stats.rounds, ref_stats.rounds);
        prop_assert_eq!(pipe_report.lane_reports[0].rounds, ref_stats.rounds);

        // Identical logical-bit accounting (the paper's cost model is
        // framing-independent, so packing must not change it).
        let bits = logical_bits(&circuit, &layout);
        prop_assert_eq!(ref_stats.bits_sent, bits);
        prop_assert_eq!(packed_stats.bits_sent, bits);
        prop_assert_eq!(thr_report.bits_sent, bits);
        prop_assert_eq!(sim_stats.bits, bits);
        prop_assert_eq!(pipe_report.bits_sent, bits);
    }

    /// Many concurrent pipeline lanes are each bit-identical to a
    /// lockstep oracle run of the same lane at the same seed, and the
    /// runtime's aggregate accounting equals the per-lane analytic sum
    /// regardless of worker count.
    #[test]
    fn pipelined_lanes_match_the_lockstep_oracle(
        parties in 2usize..=3,
        lanes_n in 2usize..=4,
        workers in 1usize..=4,
        gen_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let specs: Vec<(Circuit, InputLayout, Vec<Vec<bool>>)> = (0..lanes_n)
            .map(|i| {
                let (circuit, layout) =
                    random_circuit(parties, 4, 3, gen_seed ^ (i as u64) << 17);
                let mut input_rng = StdRng::seed_from_u64(gen_seed ^ 0xabc ^ i as u64);
                let inputs: Vec<Vec<bool>> = (0..parties)
                    .map(|_| to_bits(input_rng.gen_range(0..16), 4))
                    .collect();
                (circuit, layout, inputs)
            })
            .collect();
        let lane_specs: Vec<LaneSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, (circuit, layout, inputs))| LaneSpec {
                circuit,
                layout,
                inputs,
                seed: run_seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            })
            .collect();
        let (outs, report) =
            execute_pipelined(&lane_specs, &PipelineConfig::with_workers(workers))
                .expect("pipelined run");

        let mut oracle_bits = 0u64;
        for (i, spec) in lane_specs.iter().enumerate() {
            let (oracle_out, oracle_report) =
                execute_threaded(spec.circuit, spec.layout, spec.inputs, spec.seed);
            prop_assert_eq!(&outs[i], &oracle_out, "lane {} diverges from oracle", i);
            prop_assert_eq!(report.lane_reports[i].rounds, oracle_report.rounds);
            prop_assert_eq!(report.lane_reports[i].bits_sent, oracle_report.bits_sent);
            oracle_bits += oracle_report.bits_sent;
        }
        prop_assert_eq!(report.bits_sent, oracle_bits);
        // Coalescing only merges frames; it never invents or drops
        // logical traffic.
        prop_assert!(report.messages <= report.coalesced_items);
    }

    /// The packed path consumes exactly the same number of triples as
    /// the reference and never diverges on pre-generated (OT-phase)
    /// triples either.
    #[test]
    fn pregenerated_triples_agree_too(
        parties in 2usize..=3,
        gen_seed in any::<u64>(),
        run_seed in any::<u64>(),
    ) {
        let (circuit, layout) = random_circuit(parties, 4, 3, gen_seed);
        let mut input_rng = StdRng::seed_from_u64(gen_seed ^ 0x77);
        let inputs: Vec<Vec<bool>> = (0..parties)
            .map(|_| to_bits(input_rng.gen_range(0..16), 4))
            .collect();
        let clear = circuit.eval(&layout.flatten(&inputs));

        let mut rng = StdRng::seed_from_u64(run_seed);
        let batch =
            eppi_mpc::triples::generate_triples(parties, circuit.stats().and_gates, &mut rng);
        let (out, stats) =
            gmw::execute_with_triples(&circuit, &layout, &inputs, &batch, &mut rng);
        prop_assert_eq!(&out, &clear);
        prop_assert_eq!(stats.triples_used, circuit.stats().and_gates);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The epoch/delta lifecycle is backend-independent and equivalent
    /// to from-scratch construction: under every MPC backend, a delta
    /// run reproduces the touched columns a full construction of the
    /// new matrix would publish (bit-for-bit, β included), carries
    /// untouched columns over verbatim from the previous epoch, and all
    /// three backends agree on the resulting index exactly.
    #[test]
    fn construct_delta_matches_full_construction_on_every_backend(
        providers in 8usize..=18,
        owners in 3usize..=6,
        fill_seed in any::<u64>(),
        run_seed in any::<u64>(),
        added in 0usize..=2,
    ) {
        let mut rng = StdRng::seed_from_u64(fill_seed);
        let mut base = MembershipMatrix::new(providers, owners);
        for p in 0..providers {
            for j in 0..owners {
                if rng.gen_bool(0.4) {
                    base.set(ProviderId(p as u32), OwnerId(j as u32), true);
                }
            }
        }
        let mut epsilons: Vec<Epsilon> = (0..owners)
            .map(|_| Epsilon::saturating(rng.gen_range(0.1..0.9)))
            .collect();

        // The change batch: every pre-existing owner is independently
        // churned (bit flips and/or a new ε); `added` new owners append.
        let new_owners = owners + added;
        let mut next = MembershipMatrix::new(providers, new_owners);
        for p in 0..providers {
            for j in 0..owners {
                next.set(ProviderId(p as u32), OwnerId(j as u32),
                         base.get(ProviderId(p as u32), OwnerId(j as u32)));
            }
        }
        let mut delta = IndexDelta::new(owners);
        #[allow(clippy::needless_range_loop)] // j indexes both the matrix column and epsilons
        for j in 0..owners {
            if rng.gen_bool(0.5) {
                let flips = rng.gen_range(1usize..=3);
                for _ in 0..flips {
                    let p = ProviderId(rng.gen_range(0..providers) as u32);
                    let owner = OwnerId(j as u32);
                    next.set(p, owner, !next.get(p, owner));
                }
                epsilons[j] = Epsilon::saturating(rng.gen_range(0.1..0.9));
                delta.record(DeltaEntry {
                    owner: OwnerId(j as u32),
                    change: ColumnChange::Changed,
                    epsilon: epsilons[j],
                });
            }
        }
        for j in owners..new_owners {
            let eps = Epsilon::saturating(rng.gen_range(0.1..0.9));
            epsilons.push(eps);
            for _ in 0..rng.gen_range(1usize..=3) {
                next.set(ProviderId(rng.gen_range(0..providers) as u32),
                         OwnerId(j as u32), true);
            }
            delta.record(DeltaEntry {
                owner: OwnerId(j as u32),
                change: ColumnChange::Added,
                epsilon: eps,
            });
        }

        let base_eps = &epsilons[..owners];
        let mut outcomes = Vec::new();
        for backend in [
            Backend::InProcess,
            Backend::Threaded,
            Backend::Simulated,
            Backend::Pipelined { workers: 2 },
        ] {
            let config = ProtocolConfig { backend, seed: run_seed, ..ProtocolConfig::default() };
            let epoch0 = construct_epoch(&base, base_eps, &config).expect("epoch 0");
            let built = construct_delta(&epoch0, &next, &delta).expect("delta");
            let full = construct_distributed(&next, &epsilons, &config).expect("full");

            // Touched columns: bit-identical to a from-scratch build.
            for entry in delta.entries() {
                prop_assert_eq!(
                    column(built.epoch.index(), entry.owner),
                    column(&full.index, entry.owner),
                    "backend {:?}: touched owner {:?} diverges from full construction",
                    backend, entry.owner
                );
            }
            // Untouched columns: carried over verbatim from epoch 0.
            for j in 0..owners as u32 {
                if !delta.contains(OwnerId(j)) {
                    prop_assert_eq!(
                        column(built.epoch.index(), OwnerId(j)),
                        column(epoch0.index(), OwnerId(j)),
                        "backend {:?}: untouched owner {} re-randomized",
                        backend, j
                    );
                }
            }
            prop_assert_eq!(built.epoch.common_count(), full.common_count);
            outcomes.push(built.epoch);
        }
        // All backends agree on the delta epoch exactly — including
        // the pipelined runtime driving both the threaded SecSumShare
        // and the lane-chunked CountBelow/mix circuits.
        for other in &outcomes[1..] {
            prop_assert_eq!(outcomes[0].index(), other.index());
            prop_assert_eq!(outcomes[0].decisions(), other.decisions());
            prop_assert_eq!(outcomes[0].lambda(), other.lambda());
        }
    }
}
