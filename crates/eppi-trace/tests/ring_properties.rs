//! Property tests for the ring-buffer semantics the tracer's hot path
//! relies on: overflow drops the oldest events (and only those), the
//! slot table never reallocates, and the collector tolerates threads
//! whose rings are mid-overwrite when snapshotted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eppi_trace::ring::{RawEvent, RingBuffer, KIND_INSTANT};
use eppi_trace::{TraceConfig, Tracer};
use proptest::prelude::*;

fn ev(i: u64) -> RawEvent {
    RawEvent {
        kind: KIND_INSTANT,
        name: (i % 17) as u32,
        trace: 1,
        span: i + 1,
        parent: 0,
        t_ns: i,
        payload: i,
    }
}

proptest! {
    /// After pushing `n` events into a ring of capacity `cap`, the
    /// snapshot holds exactly the newest `min(n, cap)` events in push
    /// order, the drop counter matches, and the slot table stayed at
    /// its original address and capacity (no reallocation, ever).
    #[test]
    fn overflow_drops_oldest_never_reallocates(cap in 1usize..65, n in 0u64..400) {
        let ring = RingBuffer::new(cap);
        let addr = ring.slot_table_addr();
        for i in 0..n {
            ring.push(&ev(i));
            prop_assert_eq!(ring.capacity(), cap);
            prop_assert_eq!(ring.slot_table_addr(), addr);
        }
        let kept: Vec<u64> = ring.snapshot().iter().map(|e| e.payload).collect();
        let oldest = n.saturating_sub(cap as u64);
        let want: Vec<u64> = (oldest..n).collect();
        prop_assert_eq!(kept, want);
        prop_assert_eq!(ring.pushed(), n);
        prop_assert_eq!(ring.dropped(), oldest);
    }

    /// Snapshots taken while a writer hammers the ring only ever
    /// contain internally consistent events (the seqlock discards torn
    /// slots), and stay within capacity.
    #[test]
    fn snapshot_tolerates_concurrent_overwrites(cap in 1usize..33) {
        let ring = Arc::new(RingBuffer::new(cap));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (ring, stop) = (ring.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    ring.push(&ev(i));
                    i += 1;
                }
            })
        };
        for _ in 0..50 {
            let snap = ring.snapshot();
            prop_assert!(snap.len() <= cap);
            for e in &snap {
                // Fields of a surviving event always belong together.
                prop_assert_eq!(e.payload, e.t_ns);
                prop_assert_eq!(e.span, e.payload + 1);
                prop_assert_eq!(e.name as u64, e.payload % 17);
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    /// The collector builds usable span trees even when some threads'
    /// rings overflowed: the surviving spans of each trace still stitch
    /// into a tree (orphans under the root), never a panic or a
    /// corrupt node.
    #[test]
    fn collector_tolerates_partially_overwritten_threads(
        cap in 8usize..40,
        requests in 1usize..30,
        fanout in 1usize..6,
    ) {
        let tracer = Tracer::new(TraceConfig {
            capacity_per_thread: cap,
            slow_threshold: None,
        });
        let mut traces = Vec::new();
        for _ in 0..requests {
            let root = tracer.root("request");
            for s in 0..fanout {
                let mut shard = tracer.child(root.ctx(), "shard");
                shard.set_payload(s as u64);
            }
            traces.push(root.ctx().trace_id());
            drop(root);
        }
        let log = tracer.collect();
        // Overflow may have erased early traces entirely; whatever
        // survived must stitch cleanly.
        for trace in log.trace_ids() {
            let tree = log.span_tree(trace).unwrap();
            prop_assert!(tree.size() <= 1 + fanout);
            prop_assert!(!log.render(trace).is_empty());
            prop_assert!(log.shape(trace).is_some());
        }
        // The newest trace always survives end-to-end when the ring
        // can hold one full request (2 events per span).
        let events_per_request = 2 * (1 + fanout);
        if cap >= events_per_request {
            let last = *traces.last().unwrap();
            let tree = log.span_tree(last).unwrap();
            prop_assert_eq!(tree.name.as_str(), "request");
            prop_assert_eq!(tree.count("shard"), fanout);
        }
        prop_assert_eq!(
            log.total_dropped(),
            (requests * events_per_request).saturating_sub(cap) as u64
        );
    }
}
