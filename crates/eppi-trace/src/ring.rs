//! Fixed-capacity per-thread event rings with seqlock slots.
//!
//! Each tracing thread owns one [`RingBuffer`]. The writer encodes a
//! [`RawEvent`] into a fixed number of `u64` words and stores them into
//! the next slot round-robin, so a hot path never allocates and never
//! blocks: once the ring is full the oldest event is silently
//! overwritten. The collector runs on another thread and reads slots
//! through a per-slot sequence word (a seqlock): a slot whose sequence
//! is odd, or changes across the read, is being overwritten right now
//! and is simply discarded rather than retried — a torn read costs one
//! event, never a stall and never undefined behaviour (every word is an
//! atomic).

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Number of `u64` data words per encoded event.
pub const EVENT_WORDS: usize = 6;

/// Event kind: a span opened.
pub const KIND_BEGIN: u8 = 1;
/// Event kind: a span closed.
pub const KIND_END: u8 = 2;
/// Event kind: a point event inside a span.
pub const KIND_INSTANT: u8 = 3;

/// One fixed-size trace event, the only thing hot paths ever write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// [`KIND_BEGIN`], [`KIND_END`] or [`KIND_INSTANT`].
    pub kind: u8,
    /// Interned span name (resolved by the collector).
    pub name: u32,
    /// Trace id the event belongs to (never 0).
    pub trace: u64,
    /// Span id the event belongs to (never 0).
    pub span: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Nanoseconds since the tracer's epoch.
    pub t_ns: u64,
    /// Kind-specific payload (batch size, words scanned, ...).
    pub payload: u64,
}

impl RawEvent {
    fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            u64::from(self.kind) | (u64::from(self.name) << 8),
            self.trace,
            self.span,
            self.parent,
            self.t_ns,
            self.payload,
        ]
    }

    fn decode(words: [u64; EVENT_WORDS]) -> Option<RawEvent> {
        let kind = (words[0] & 0xff) as u8;
        if !(KIND_BEGIN..=KIND_INSTANT).contains(&kind) || words[1] == 0 || words[2] == 0 {
            return None;
        }
        Some(RawEvent {
            kind,
            name: (words[0] >> 8) as u32,
            trace: words[1],
            span: words[2],
            parent: words[3],
            t_ns: words[4],
            payload: words[5],
        })
    }
}

struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// other even = stable. Bumped twice per overwrite.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A single-writer, multi-reader event ring of fixed capacity.
///
/// The writer contract is one thread per buffer (the tracer hands each
/// thread its own); concurrent writers would not be unsound — readers
/// discard the resulting torn slots — but events could be lost.
pub struct RingBuffer {
    slots: Box<[Slot]>,
    pushed: AtomicU64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBuffer {
        let capacity = capacity.max(1);
        RingBuffer {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            pushed: AtomicU64::new(0),
        }
    }

    /// Fixed slot count; never changes after construction.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Address of the slot table — stable for the buffer's lifetime,
    /// exposed so tests can prove pushes never reallocate.
    pub fn slot_table_addr(&self) -> usize {
        self.slots.as_ptr() as usize
    }

    /// Total events ever pushed (including ones since overwritten).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }

    /// Events lost to overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&self, event: &RawEvent) {
        let n = self.pushed.load(Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Seqlock write protocol: mark the slot in-progress (odd), a
        // release fence so readers that see any new data word also see
        // the odd sequence, the data words, then the even sequence
        // released so readers that see it also see all data words.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for (cell, word) in slot.words.iter().zip(event.encode()) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.pushed.store(n + 1, Ordering::Release);
    }

    /// Reads slot `idx`, or `None` if it is unwritten or mid-overwrite.
    pub fn read_slot(&self, idx: usize) -> Option<RawEvent> {
        let slot = self.slots.get(idx)?;
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let mut words = [0u64; EVENT_WORDS];
        for (word, cell) in words.iter_mut().zip(&slot.words) {
            *word = cell.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        RawEvent::decode(words)
    }

    /// Snapshots every stable slot, oldest first (by push order as of
    /// the call; a concurrent writer may tear a few slots, which are
    /// skipped).
    pub fn snapshot(&self) -> Vec<RawEvent> {
        let cap = self.slots.len() as u64;
        let head = self.pushed.load(Ordering::Acquire);
        let oldest = head.saturating_sub(cap);
        (oldest..head.max(cap).min(oldest + cap))
            .filter_map(|n| self.read_slot((n % cap) as usize))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> RawEvent {
        RawEvent {
            kind: KIND_INSTANT,
            name: 7,
            trace: 1,
            span: i + 1,
            parent: 0,
            t_ns: i,
            payload: i,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let e = RawEvent {
            kind: KIND_BEGIN,
            name: u32::MAX,
            trace: u64::MAX,
            span: 3,
            parent: 2,
            t_ns: 99,
            payload: u64::MAX - 1,
        };
        assert_eq!(RawEvent::decode(e.encode()), Some(e));
        assert_eq!(RawEvent::decode([0; EVENT_WORDS]), None);
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let ring = RingBuffer::new(4);
        for i in 0..3 {
            ring.push(&ev(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![0, 1, 2]);
        for i in 3..10 {
            ring.push(&ev(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.payload).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn concurrent_reader_never_sees_garbage() {
        let ring = std::sync::Arc::new(RingBuffer::new(8));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..20_000 {
                    ring.push(&ev(i));
                }
            })
        };
        let mut seen = 0usize;
        let mut check = |ring: &RingBuffer| {
            for e in ring.snapshot() {
                // Every decoded event must be internally consistent.
                assert_eq!(e.payload, e.t_ns);
                assert_eq!(e.span, e.payload + 1);
                seen += 1;
            }
        };
        while !writer.is_finished() {
            check(&ring);
        }
        writer.join().unwrap();
        // On a single hardware thread the writer can finish before the
        // loop above ever observes it mid-flight; the post-join
        // snapshot keeps the consistency check non-vacuous either way.
        check(&ring);
        assert!(seen > 0);
    }
}
