//! Stitching ring-buffer snapshots into span trees.
//!
//! The collector is deliberately tolerant: rings overwrite their oldest
//! events and a snapshot can race an active writer, so any event may be
//! missing. A span whose begin survived but whose end was dropped shows
//! up as *incomplete* (no duration); a span whose begin was dropped is
//! reconstructed from its end event; orphans whose parent vanished are
//! re-attached under the trace root so the tree never silently loses
//! whole subtrees.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ring::{RawEvent, KIND_BEGIN, KIND_END, KIND_INSTANT};

/// Whether a node is a duration span or a point event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Begin/end pair (or a surviving half of one).
    Span,
    /// A point event recorded with `Tracer::instant`.
    Instant,
}

/// One thread's snapshot inside a [`TraceLog`].
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Thread label (OS thread name, or `thread-N`).
    pub label: String,
    /// Decoded events, oldest first.
    pub events: Vec<RawEvent>,
    /// Total events the thread ever pushed.
    pub pushed: u64,
    /// Events lost to ring overwrite.
    pub dropped: u64,
}

/// A collected snapshot of every thread's ring plus the name table.
#[derive(Debug, Clone)]
pub struct TraceLog {
    names: Vec<String>,
    /// Per-thread snapshots, in thread registration order.
    pub threads: Vec<ThreadEvents>,
}

/// One node of a stitched span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Resolved span name.
    pub name: String,
    /// Span or instant.
    pub kind: SpanKind,
    /// Span id.
    pub span: u64,
    /// Label of the thread that emitted the span's first event.
    pub thread: String,
    /// Start, nanoseconds since the tracer epoch.
    pub t0_ns: u64,
    /// End, `None` when the end event was lost to overwrite.
    pub t1_ns: Option<u64>,
    /// Payload from the end (or instant) event.
    pub payload: u64,
    /// Child nodes, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration, when both ends survived.
    pub fn duration_ns(&self) -> Option<u64> {
        self.t1_ns.map(|t1| t1.saturating_sub(self.t0_ns))
    }

    /// Nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }

    /// Depth-first search for the first node with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Number of nodes with `name` in this subtree.
    pub fn count(&self, name: &str) -> usize {
        usize::from(self.name == name) + self.children.iter().map(|c| c.count(name)).sum::<usize>()
    }
}

/// The timestamp-normalized form of a span tree: names, kinds,
/// payloads and child multisets only — no ids, no times, no thread
/// labels. Two traces with equal shapes are structurally identical,
/// which is exactly what the trace-obliviousness property demands of
/// private-mode queries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceShape {
    /// Span name.
    pub name: String,
    /// Span or instant.
    pub kind: SpanKind,
    /// End-event payload (must be query-independent on private paths).
    pub payload: u64,
    /// Child shapes, sorted canonically so sibling order (a timing
    /// artifact) cannot distinguish two traces.
    pub children: Vec<TraceShape>,
}

impl TraceLog {
    pub(crate) fn new(names: Vec<String>, threads: Vec<ThreadEvents>) -> TraceLog {
        TraceLog { names, threads }
    }

    pub(crate) fn empty() -> TraceLog {
        TraceLog {
            names: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Resolves an interned name id.
    pub fn name(&self, id: u32) -> &str {
        self.names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Total surviving events across all threads.
    pub fn total_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events lost to ring overwrite across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Distinct trace ids with at least one surviving event, in
    /// ascending id order. Ids are drawn from per-thread blocks, so
    /// this is allocation order for roots opened on one thread but not
    /// necessarily across threads.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter().map(|e| e.trace))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Stitches the span tree of one trace, or `None` if no event of
    /// that trace survived.
    pub fn span_tree(&self, trace: u64) -> Option<SpanNode> {
        struct Partial {
            name: Option<u32>,
            kind: SpanKind,
            parent: u64,
            thread: Option<usize>,
            t0: Option<u64>,
            t1: Option<u64>,
            payload: u64,
        }
        let blank = || Partial {
            name: None,
            kind: SpanKind::Span,
            parent: 0,
            thread: None,
            t0: None,
            t1: None,
            payload: 0,
        };

        let mut partials: HashMap<u64, Partial> = HashMap::new();
        for (tid, thread) in self.threads.iter().enumerate() {
            for e in thread.events.iter().filter(|e| e.trace == trace) {
                let p = partials.entry(e.span).or_insert_with(blank);
                match e.kind {
                    KIND_BEGIN => {
                        p.name = Some(e.name);
                        p.parent = e.parent;
                        p.thread = Some(tid);
                        p.t0 = Some(e.t_ns);
                    }
                    KIND_END => {
                        p.name.get_or_insert(e.name);
                        if p.thread.is_none() {
                            p.parent = e.parent;
                            p.thread = Some(tid);
                        }
                        p.t1 = Some(e.t_ns);
                        p.payload = e.payload;
                    }
                    KIND_INSTANT => {
                        p.kind = SpanKind::Instant;
                        p.name = Some(e.name);
                        p.parent = e.parent;
                        p.thread = Some(tid);
                        p.t0 = Some(e.t_ns);
                        p.t1 = Some(e.t_ns);
                        p.payload = e.payload;
                    }
                    _ => {}
                }
            }
        }
        if partials.is_empty() {
            return None;
        }

        let mut nodes: HashMap<u64, SpanNode> = partials
            .iter()
            .map(|(&span, p)| {
                let t0 = p.t0.or(p.t1).unwrap_or(0);
                (
                    span,
                    SpanNode {
                        name: self.name(p.name.unwrap_or(u32::MAX)).to_string(),
                        kind: p.kind,
                        span,
                        thread: p
                            .thread
                            .and_then(|i| self.threads.get(i))
                            .map(|t| t.label.clone())
                            .unwrap_or_default(),
                        t0_ns: t0,
                        t1_ns: if p.t0.is_some() { p.t1 } else { None },
                        payload: p.payload,
                        children: Vec::new(),
                    },
                )
            })
            .collect();

        // Root: the span whose id equals the trace id when it
        // survived, else the earliest parentless/orphan span.
        let root_id = if nodes.contains_key(&trace) {
            trace
        } else {
            *partials
                .iter()
                .filter(|(span, p)| {
                    p.parent == 0 || !partials.contains_key(&p.parent) || **span == p.parent
                })
                .min_by_key(|(span, p)| (p.t0.or(p.t1).unwrap_or(0), **span))
                .map(|(span, _)| span)?
        };

        // Resolve each non-root span's attach target — its parent when
        // that parent survived, else the root (orphan re-attach) — and
        // invert into a child-list map. Span ids come from per-thread
        // blocks, so no ordering between a parent's and a child's id
        // can be assumed.
        let mut kids: HashMap<u64, Vec<u64>> = HashMap::new();
        for (&span, p) in &partials {
            if span == root_id {
                continue;
            }
            let parent = p.parent;
            let target = if parent != 0 && parent != span && nodes.contains_key(&parent) {
                parent
            } else {
                root_id
            };
            if target == span {
                continue;
            }
            kids.entry(target).or_default().push(span);
        }

        // Assemble depth-first from the root. `build` moves each node
        // out of the map at most once, so parent-link cycles (possible
        // only among torn decodes) terminate; whatever the walk never
        // reaches hangs off the root afterwards.
        let mut root = build(root_id, &kids, &mut nodes)?;
        while let Some(&span) = nodes.keys().next() {
            match build(span, &kids, &mut nodes) {
                Some(node) => root.children.push(node),
                None => {
                    nodes.remove(&span);
                }
            }
        }
        sort_children(&mut root);
        Some(root)
    }

    /// Renders one trace as an indented text tree.
    pub fn render(&self, trace: u64) -> String {
        let Some(root) = self.span_tree(trace) else {
            return format!("trace {trace:#x}: no surviving events\n");
        };
        let mut out = format!("trace {trace:#x} ({} spans)\n", root.size());
        render_node(&mut out, &root, 0);
        out
    }

    /// The timestamp-normalized shape of one trace (see
    /// [`TraceShape`]).
    pub fn shape(&self, trace: u64) -> Option<TraceShape> {
        self.span_tree(trace).map(|node| shape_of(&node))
    }
}

/// Moves `span` out of `nodes` and recursively attaches its children
/// per `kids`. `None` when the node was already consumed (cycle).
fn build(
    span: u64,
    kids: &HashMap<u64, Vec<u64>>,
    nodes: &mut HashMap<u64, SpanNode>,
) -> Option<SpanNode> {
    let mut node = nodes.remove(&span)?;
    if let Some(children) = kids.get(&span) {
        for &c in children {
            if let Some(child) = build(c, kids, nodes) {
                node.children.push(child);
            }
        }
    }
    Some(node)
}

fn sort_children(node: &mut SpanNode) {
    node.children.sort_by_key(|c| (c.t0_ns, c.span));
    for c in &mut node.children {
        sort_children(c);
    }
}

fn shape_of(node: &SpanNode) -> TraceShape {
    let mut children: Vec<TraceShape> = node.children.iter().map(shape_of).collect();
    children.sort();
    TraceShape {
        name: node.name.clone(),
        kind: node.kind,
        payload: node.payload,
        children,
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match node.kind {
        SpanKind::Instant => {
            let _ = writeln!(
                out,
                "* {}  payload={}  @{}",
                node.name, node.payload, node.thread
            );
        }
        SpanKind::Span => {
            match node.duration_ns() {
                Some(d) => {
                    let _ = write!(out, "{}  {:.1}us", node.name, d as f64 / 1_000.0);
                }
                None => {
                    let _ = write!(out, "{}  (incomplete)", node.name);
                }
            }
            let _ = writeln!(out, "  payload={}  @{}", node.payload, node.thread);
        }
    }
    for c in &node.children {
        render_node(out, c, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    fn demo_log() -> (Tracer, u64) {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("request");
        let ctx = root.ctx();
        {
            let mut a = tracer.child(ctx, "scan");
            a.set_payload(100);
            tracer.instant(a.ctx(), "row", 7);
        }
        {
            let mut b = tracer.child(ctx, "gather");
            b.set_payload(2);
        }
        let trace = ctx.trace_id();
        drop(root);
        (tracer, trace)
    }

    #[test]
    fn stitches_nested_spans_with_instants() {
        let (tracer, trace) = demo_log();
        let log = tracer.collect();
        let tree = log.span_tree(trace).unwrap();
        assert_eq!(tree.name, "request");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "scan");
        assert_eq!(tree.children[0].children[0].kind, SpanKind::Instant);
        assert_eq!(tree.children[0].children[0].payload, 7);
        assert_eq!(tree.count("gather"), 1);
        assert!(tree.find("row").is_some());
        assert!(tree.duration_ns().is_some());
        let text = log.render(trace);
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("  scan"), "{text}");
        assert!(text.contains("payload=100"), "{text}");
    }

    #[test]
    fn shape_ignores_time_but_keeps_structure_and_payloads() {
        let (t1, trace1) = demo_log();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (t2, trace2) = demo_log();
        let s1 = t1.collect().shape(trace1).unwrap();
        let s2 = t2.collect().shape(trace2).unwrap();
        assert_eq!(s1, s2);

        // A different payload changes the shape.
        let t3 = Tracer::new(TraceConfig::default());
        let root = t3.root("request");
        let ctx = root.ctx();
        {
            let mut a = t3.child(ctx, "scan");
            a.set_payload(999);
            t3.instant(a.ctx(), "row", 7);
        }
        {
            let mut b = t3.child(ctx, "gather");
            b.set_payload(2);
        }
        let trace3 = ctx.trace_id();
        drop(root);
        assert_ne!(s1, t3.collect().shape(trace3).unwrap());
    }

    #[test]
    fn lost_end_marks_span_incomplete() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("request");
        let child = tracer.child(root.ctx(), "hung");
        let trace = root.ctx().trace_id();
        // Collect while `hung` is still open.
        let log = tracer.collect();
        let tree = log.span_tree(trace).unwrap();
        let hung = tree.find("hung").unwrap();
        assert_eq!(hung.t1_ns, None);
        assert!(log.render(trace).contains("(incomplete)"));
        drop(child);
        drop(root);
    }

    #[test]
    fn orphans_reattach_under_root() {
        // Simulate a lost intermediate span: child events whose parent
        // id never appears in the log.
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("request");
        let lost = crate::SpanCtx {
            trace: root.ctx().trace_id(),
            span: 0xdead_beef,
        };
        drop(tracer.child(lost, "orphan"));
        let trace = root.ctx().trace_id();
        drop(root);
        let tree = tracer.collect().span_tree(trace).unwrap();
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "orphan");
    }
}
