//! Chrome `trace_event` JSON export.
//!
//! Emits the JSON Array-with-metadata flavour understood by
//! `chrome://tracing` and Perfetto: one `"X"` (complete) event per
//! span with microsecond `ts`/`dur`, one `"i"` (instant) event per
//! point event, and `"M"` thread-name metadata records so the per-shard
//! worker lanes are labeled. Span/trace/parent ids and payloads ride in
//! `args`, so a trace can be audited for leakage directly in the
//! viewer.

use eppi_telemetry::json::JsonValue;

use crate::collect::{SpanKind, SpanNode, TraceLog};

/// Builds the Chrome trace document for every trace in the log.
pub fn to_chrome(log: &TraceLog) -> JsonValue {
    let mut events = Vec::new();
    for (tid, thread) in log.threads.iter().enumerate() {
        events.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("thread_name".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::UInt(1)),
            ("tid".into(), JsonValue::UInt(tid as u64)),
            (
                "args".into(),
                JsonValue::Object(vec![("name".into(), JsonValue::Str(thread.label.clone()))]),
            ),
        ]));
    }
    for trace in log.trace_ids() {
        if let Some(root) = log.span_tree(trace) {
            emit(log, trace, &root, &mut events);
        }
    }
    JsonValue::Object(vec![
        ("traceEvents".into(), JsonValue::Array(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ns".into())),
    ])
}

/// [`to_chrome`] serialized compactly, ready to write to a `.json`
/// file and load in `chrome://tracing` / Perfetto.
pub fn to_chrome_string(log: &TraceLog) -> String {
    to_chrome(log).to_compact()
}

fn tid_of(log: &TraceLog, label: &str) -> u64 {
    log.threads
        .iter()
        .position(|t| t.label == label)
        .unwrap_or(0) as u64
}

fn emit(log: &TraceLog, trace: u64, node: &SpanNode, out: &mut Vec<JsonValue>) {
    let ts = JsonValue::Float(node.t0_ns as f64 / 1_000.0);
    let mut args = vec![
        ("trace".into(), JsonValue::UInt(trace)),
        ("span".into(), JsonValue::UInt(node.span)),
        ("payload".into(), JsonValue::UInt(node.payload)),
    ];
    let mut fields = vec![
        ("name".into(), JsonValue::Str(node.name.clone())),
        ("cat".into(), JsonValue::Str("eppi".into())),
        ("pid".into(), JsonValue::UInt(1)),
        ("tid".into(), JsonValue::UInt(tid_of(log, &node.thread))),
        ("ts".into(), ts),
    ];
    match node.kind {
        SpanKind::Instant => {
            fields.push(("ph".into(), JsonValue::Str("i".into())));
            fields.push(("s".into(), JsonValue::Str("t".into())));
        }
        SpanKind::Span => match node.duration_ns() {
            Some(d) => {
                fields.push(("ph".into(), JsonValue::Str("X".into())));
                fields.push(("dur".into(), JsonValue::Float(d as f64 / 1_000.0)));
            }
            None => {
                // End event lost to ring overwrite: keep the span
                // visible as a zero-length slice, flagged in args.
                fields.push(("ph".into(), JsonValue::Str("X".into())));
                fields.push(("dur".into(), JsonValue::Float(0.0)));
                args.push(("incomplete".into(), JsonValue::Bool(true)));
            }
        },
    }
    fields.push(("args".into(), JsonValue::Object(args)));
    out.push(JsonValue::Object(fields));
    for c in &node.children {
        emit(log, trace, c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, Tracer};

    #[test]
    fn chrome_export_is_valid_and_complete() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("request");
        {
            let mut scan = tracer.child(root.ctx(), "scan");
            scan.set_payload(64);
            tracer.instant(scan.ctx(), "row", 1);
        }
        drop(root);

        let text = to_chrome_string(&tracer.collect());
        let doc = JsonValue::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 1 thread metadata + 2 spans + 1 instant.
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // Spans carry ts/dur and the payload in args.
        let scan = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("scan"))
            .unwrap();
        assert!(scan.get("ts").unwrap().as_f64().is_some());
        assert!(scan.get("dur").unwrap().as_f64().is_some());
        assert_eq!(
            scan.get("args").unwrap().get("payload").unwrap().as_u64(),
            Some(64)
        );
    }
}
