//! # eppi-trace — privacy-audited causal span tracing
//!
//! Aggregate histograms (eppi-telemetry) answer *how fast is the system
//! overall*; this crate answers *where did this query spend its time*.
//! A [`Tracer`] hands out request-scoped trace ids; spans form a
//! parent/child tree linked by [`SpanCtx`] values that travel across
//! threads inside `eppi-serve` Job messages, across the `eppi-net`
//! `Transport` trait, and through `eppi-durability` recovery.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths never allocate or block.** Every span event is a
//!    fixed-size record written into a per-thread seqlock ring buffer
//!    ([`ring::RingBuffer`]); overflow drops the oldest events.
//! 2. **Tracing must be provably leakage-free.** In private serve mode
//!    the span tree of a query — names, counts, shape, payload sizes —
//!    must be independent of the owner probed, mirroring the oblivious
//!    scan's transcript independence. [`collect::TraceLog::shape`]
//!    produces the timestamp-normalized form the
//!    `trace_obliviousness` property test compares.
//! 3. **Exports are standard.** [`collect::TraceLog::render`] prints a
//!    text tree; [`chrome::to_chrome_string`] emits Chrome
//!    `trace_event` JSON viewable in `chrome://tracing` / Perfetto.
//!
//! A disabled tracer ([`Tracer::disabled`], also [`Tracer::default`])
//! costs one branch per call site, so production paths take a `Tracer`
//! unconditionally.
//!
//! ```
//! use eppi_trace::{TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig::default());
//! let root = tracer.root("request");
//! {
//!     let mut scan = tracer.child(root.ctx(), "scan");
//!     scan.set_payload(4096); // e.g. words scanned
//! }
//! drop(root);
//! let log = tracer.collect();
//! let trace = log.trace_ids()[0];
//! assert!(log.render(trace).contains("scan"));
//! assert_eq!(log.shape(trace).unwrap().children.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod ring;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use collect::{SpanKind, SpanNode, TraceLog, TraceShape};

use collect::ThreadEvents;
use ring::{RawEvent, RingBuffer, KIND_BEGIN, KIND_END, KIND_INSTANT};

/// Propagated identity of an active span: `(trace id, span id)`.
///
/// This is the only thing that crosses thread and message boundaries —
/// 16 bytes, `Copy`, and [`SpanCtx::NONE`] when the request is
/// untraced, so carrying it in `Job` messages is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanCtx {
    trace: u64,
    span: u64,
}

impl SpanCtx {
    /// The untraced context: children of `NONE` record nothing.
    pub const NONE: SpanCtx = SpanCtx { trace: 0, span: 0 };

    /// True when this context records nothing.
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }

    /// Trace id, 0 when untraced.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// Span id, 0 when untraced.
    pub fn span_id(&self) -> u64 {
        self.span
    }
}

impl Default for SpanCtx {
    fn default() -> SpanCtx {
        SpanCtx::NONE
    }
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Events retained per thread before oldest-drop (min 1).
    pub capacity_per_thread: usize,
    /// Root spans at least this long are kept in the slow-query
    /// exemplar log (`None` disables the log).
    pub slow_threshold: Option<Duration>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            // 1024 slots * 56 B = 56 KiB per thread: history for a
            // couple hundred recent spans while staying small enough
            // that the ring's cache footprint doesn't tax the traced
            // hot path (larger rings measurably slow writers by
            // evicting the working set from L2).
            capacity_per_thread: 1 << 10,
            slow_threshold: None,
        }
    }
}

/// One entry of the slow-query exemplar log: the slowest root spans
/// seen, so their complete span trees can be pulled from
/// [`Tracer::collect`] and rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowExemplar {
    /// Trace id of the slow request.
    pub trace: u64,
    /// Interned name of the root span (resolve via the collected log).
    pub name: u32,
    /// Root span duration.
    pub duration: Duration,
}

/// Maximum retained slow exemplars; the fastest is evicted first.
const SLOW_EXEMPLAR_CAP: usize = 32;

struct NameTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl NameTable {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }
}

struct ThreadReg {
    label: String,
    buffer: Arc<RingBuffer>,
}

/// 128-byte-aligned so the `Arc` refcounts (which precede the data in
/// the allocation and are bumped once per span guard) land on their own
/// cache line instead of invalidating `epoch`/`config`, which every
/// event reads.
#[repr(align(128))]
struct TracerInner {
    /// Process-unique tracer id, the key of the thread-local caches.
    id: u64,
    /// [`now_ticks`] at creation; event timestamps are nanoseconds
    /// relative to this.
    epoch_ticks: u64,
    /// Cached [`ns_per_tick`], so the hot path reads it alongside
    /// `epoch_ticks` instead of through the calibration `OnceLock`.
    tick_ns: f64,
    config: TraceConfig,
    next_id: AtomicU64,
    names: Mutex<NameTable>,
    threads: Mutex<Vec<ThreadReg>>,
    slow: Mutex<Vec<SlowExemplar>>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// Span ids handed to each thread per refill of its private block, so
/// the hot path touches the shared counter once every `SPAN_ID_BLOCK`
/// spans instead of bouncing its cache line on every one.
const SPAN_ID_BLOCK: u64 = 512;

/// Per-(thread, tracer) hot state: the ring, a private span-id block,
/// and the interned-name memo — one thread-local lookup serves every
/// event.
struct ThreadSlot {
    tracer_id: u64,
    ring: Arc<RingBuffer>,
    /// Next span id in this thread's private block (`0..0` = empty).
    next_span: u64,
    span_end: u64,
    /// (`&'static str` address, interned id) memo, so steady-state
    /// span creation never takes the name-table lock.
    names: Vec<(usize, u32)>,
}

impl ThreadSlot {
    fn span_id(&mut self, inner: &TracerInner) -> u64 {
        if self.next_span == self.span_end {
            self.next_span = inner.next_id.fetch_add(SPAN_ID_BLOCK, Ordering::Relaxed);
            self.span_end = self.next_span + SPAN_ID_BLOCK;
        }
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    fn intern(&mut self, inner: &TracerInner, name: &'static str) -> u32 {
        let key = name.as_ptr() as usize;
        if let Some(&(_, id)) = self.names.iter().find(|(ptr, _)| *ptr == key) {
            return id;
        }
        let id = inner.names.lock().unwrap().intern(name);
        self.names.push((key, id));
        id
    }
}

thread_local! {
    /// This thread's slot per tracer. A Vec scan: a thread rarely sees
    /// more than one live tracer.
    static TRACE_TLS: RefCell<Vec<ThreadSlot>> = const { RefCell::new(Vec::new()) };
}

/// Handle to a trace collector. Cheap to clone and share; a
/// [`Tracer::disabled`] handle makes every call a no-op.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => write!(f, "Tracer(id={})", inner.id),
        }
    }
}

impl Tracer {
    /// A no-op tracer: records nothing, costs one branch per call.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer with its own id space and per-thread rings.
    pub fn new(config: TraceConfig) -> Tracer {
        // Calibrating the tick clock up front (it blocks briefly, once
        // per process) keeps the cost out of the first traced span.
        let tick_ns = ns_per_tick();
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch_ticks: now_ticks(),
                tick_ns,
                config,
                next_id: AtomicU64::new(1),
                names: Mutex::new(NameTable {
                    by_name: HashMap::new(),
                    names: Vec::new(),
                }),
                threads: Mutex::new(Vec::new()),
                slow: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True unless this is a [`Tracer::disabled`] handle.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a new root span under a fresh trace id.
    ///
    /// Returns a no-op guard on a disabled tracer.
    pub fn root(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let t_ns = elapsed_ns(inner);
        with_slot(inner, |slot| {
            let id = slot.span_id(inner);
            let name = slot.intern(inner, name);
            slot.ring.push(&RawEvent {
                kind: KIND_BEGIN,
                name,
                trace: id,
                span: id,
                parent: 0,
                t_ns,
                payload: 0,
            });
            SpanGuard {
                tracer: Some(inner.clone()),
                ctx: SpanCtx {
                    trace: id,
                    span: id,
                },
                parent: 0,
                name,
                payload: 0,
                t0_ns: t_ns,
                root: true,
            }
        })
    }

    /// Opens a child span of `parent`.
    ///
    /// Returns a no-op guard when the tracer is disabled or `parent`
    /// is [`SpanCtx::NONE`], so untraced requests flowing through a
    /// traced engine record nothing.
    pub fn child(&self, parent: SpanCtx, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        if parent.is_none() {
            return SpanGuard::noop();
        }
        let t_ns = elapsed_ns(inner);
        with_slot(inner, |slot| {
            let span = slot.span_id(inner);
            let name = slot.intern(inner, name);
            slot.ring.push(&RawEvent {
                kind: KIND_BEGIN,
                name,
                trace: parent.trace,
                span,
                parent: parent.span,
                t_ns,
                payload: 0,
            });
            SpanGuard {
                tracer: Some(inner.clone()),
                ctx: SpanCtx {
                    trace: parent.trace,
                    span,
                },
                parent: parent.span,
                name,
                payload: 0,
                t0_ns: t_ns,
                root: false,
            }
        })
    }

    /// Records a point event inside `parent` (no-op for `NONE`).
    pub fn instant(&self, parent: SpanCtx, name: &'static str, payload: u64) {
        let Some(inner) = &self.inner else { return };
        if parent.is_none() {
            return;
        }
        let t_ns = elapsed_ns(inner);
        with_slot(inner, |slot| {
            let span = slot.span_id(inner);
            let name = slot.intern(inner, name);
            slot.ring.push(&RawEvent {
                kind: KIND_INSTANT,
                name,
                trace: parent.trace,
                span,
                parent: parent.span,
                t_ns,
                payload,
            });
        });
    }

    /// Snapshots every thread's ring into a [`TraceLog`].
    ///
    /// Safe to call while writers are active: slots mid-overwrite are
    /// skipped, so a busy system yields a slightly shorter log, never
    /// a corrupt one. Returns an empty log on a disabled tracer.
    pub fn collect(&self) -> TraceLog {
        let Some(inner) = &self.inner else {
            return TraceLog::empty();
        };
        let names = inner.names.lock().unwrap().names.clone();
        let threads = inner
            .threads
            .lock()
            .unwrap()
            .iter()
            .map(|reg| ThreadEvents {
                label: reg.label.clone(),
                events: reg.buffer.snapshot(),
                pushed: reg.buffer.pushed(),
                dropped: reg.buffer.dropped(),
            })
            .collect();
        TraceLog::new(names, threads)
    }

    /// The retained slow-query exemplars, slowest first.
    pub fn slow_exemplars(&self) -> Vec<SlowExemplar> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = inner.slow.lock().unwrap().clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.duration));
        out
    }
}

/// RAII span: records a begin event when opened and an end event (with
/// the final payload) on drop. Obtain via [`Tracer::root`] /
/// [`Tracer::child`]; pass [`SpanGuard::ctx`] across threads to hang
/// children under it.
pub struct SpanGuard {
    tracer: Option<Arc<TracerInner>>,
    ctx: SpanCtx,
    parent: u64,
    name: u32,
    payload: u64,
    /// Begin timestamp, nanoseconds since the tracer epoch (reused for
    /// the slow-query check so a span costs two clock reads total).
    t0_ns: u64,
    root: bool,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("trace", &self.ctx.trace)
            .field("span", &self.ctx.span)
            .finish_non_exhaustive()
    }
}

impl SpanGuard {
    fn noop() -> SpanGuard {
        SpanGuard {
            tracer: None,
            ctx: SpanCtx::NONE,
            parent: 0,
            name: 0,
            payload: 0,
            t0_ns: 0,
            root: false,
        }
    }

    /// The context children should reference ([`SpanCtx::NONE`] for a
    /// no-op guard).
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }

    /// Sets the payload reported by the end event (e.g. words
    /// scanned, batch size). Last write wins.
    pub fn set_payload(&mut self, payload: u64) {
        self.payload = payload;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = &self.tracer else { return };
        let t_ns = elapsed_ns(inner);
        let event = RawEvent {
            kind: KIND_END,
            name: self.name,
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent,
            t_ns,
            payload: self.payload,
        };
        with_slot(inner, |slot| slot.ring.push(&event));
        if self.root {
            if let Some(threshold) = inner.config.slow_threshold {
                let took = Duration::from_nanos(t_ns.saturating_sub(self.t0_ns));
                if took >= threshold {
                    note_slow(
                        inner,
                        SlowExemplar {
                            trace: self.ctx.trace,
                            name: self.name,
                            duration: took,
                        },
                    );
                }
            }
        }
    }
}

/// The raw timestamp counter: on x86-64 `rdtsc` (roughly half the cost
/// of `Instant::now`, and an event's two biggest costs are its clock
/// reads), elsewhere monotonic nanoseconds. Ticks convert to
/// nanoseconds via the process-wide [`ns_per_tick`] calibration.
#[cfg(target_arch = "x86_64")]
fn now_ticks() -> u64 {
    // SAFETY: `rdtsc` is unprivileged and available on every x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// See the x86-64 variant: nanoseconds from a process-global epoch, so
/// `ns_per_tick` is exactly 1.
#[cfg(not(target_arch = "x86_64"))]
fn now_ticks() -> u64 {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds per [`now_ticks`] tick, calibrated once per process
/// against the OS monotonic clock (the TSC is assumed invariant, which
/// holds on every x86-64 made this decade).
fn ns_per_tick() -> f64 {
    static NS_PER_TICK: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *NS_PER_TICK.get_or_init(|| {
        if cfg!(not(target_arch = "x86_64")) {
            return 1.0;
        }
        let t0 = Instant::now();
        let c0 = now_ticks();
        std::thread::sleep(Duration::from_millis(2));
        let c1 = now_ticks();
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ticks = c1.wrapping_sub(c0);
        if ticks == 0 {
            return 1.0; // stuck counter; timestamps degrade, spans survive
        }
        ns as f64 / ticks as f64
    })
}

fn elapsed_ns(inner: &TracerInner) -> u64 {
    let ticks = now_ticks().wrapping_sub(inner.epoch_ticks);
    (ticks as f64 * inner.tick_ns) as u64
}

/// Rare path: slow roots only. Keeps the `SLOW_EXEMPLAR_CAP` slowest.
fn note_slow(inner: &TracerInner, exemplar: SlowExemplar) {
    let mut slow = inner.slow.lock().unwrap();
    if slow.len() < SLOW_EXEMPLAR_CAP {
        slow.push(exemplar);
        return;
    }
    if let Some(min) = slow
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.duration)
        .map(|(i, _)| i)
    {
        if slow[min].duration < exemplar.duration {
            slow[min] = exemplar;
        }
    }
}

/// Runs `f` against this thread's slot for `inner`'s tracer, creating
/// and registering the slot (and its ring) on first use — the only
/// time a tracing thread allocates.
fn with_slot<R>(inner: &Arc<TracerInner>, f: impl FnOnce(&mut ThreadSlot) -> R) -> R {
    TRACE_TLS.with(|slots| {
        let mut slots = slots.borrow_mut();
        if let Some(slot) = slots.iter_mut().find(|s| s.tracer_id == inner.id) {
            return f(slot);
        }
        let ring = Arc::new(RingBuffer::new(inner.config.capacity_per_thread));
        let mut threads = inner.threads.lock().unwrap();
        let label = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", threads.len()));
        threads.push(ThreadReg {
            label,
            buffer: ring.clone(),
        });
        drop(threads);
        slots.push(ThreadSlot {
            tracer_id: inner.id,
            ring,
            next_span: 0,
            span_end: 0,
            names: Vec::new(),
        });
        f(slots.last_mut().unwrap())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_no_op() {
        let tracer = Tracer::disabled();
        let root = tracer.root("request");
        assert!(root.ctx().is_none());
        let child = tracer.child(root.ctx(), "inner");
        assert!(child.ctx().is_none());
        tracer.instant(root.ctx(), "tick", 1);
        drop(child);
        drop(root);
        assert_eq!(tracer.collect().total_events(), 0);
    }

    #[test]
    fn spans_nest_across_threads() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.root("request");
        let ctx = root.ctx();
        let t2 = {
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                let mut shard = tracer.child(ctx, "shard");
                shard.set_payload(42);
            })
        };
        t2.join().unwrap();
        drop(root);

        let log = tracer.collect();
        let traces = log.trace_ids();
        assert_eq!(traces.len(), 1);
        let tree = log.span_tree(traces[0]).unwrap();
        assert_eq!(tree.name, "request");
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "shard");
        assert_eq!(tree.children[0].payload, 42);
        // Two distinct threads contributed events.
        assert_eq!(
            log.threads.iter().filter(|t| !t.events.is_empty()).count(),
            2
        );
    }

    #[test]
    fn child_of_none_records_nothing_on_live_tracer() {
        let tracer = Tracer::new(TraceConfig::default());
        let child = tracer.child(SpanCtx::NONE, "inner");
        assert!(child.ctx().is_none());
        drop(child);
        tracer.instant(SpanCtx::NONE, "tick", 0);
        assert_eq!(tracer.collect().total_events(), 0);
    }

    #[test]
    fn slow_exemplar_log_keeps_slowest_roots() {
        let tracer = Tracer::new(TraceConfig {
            slow_threshold: Some(Duration::ZERO),
            ..TraceConfig::default()
        });
        for _ in 0..(SLOW_EXEMPLAR_CAP + 5) {
            drop(tracer.root("request"));
        }
        let slow = tracer.slow_exemplars();
        assert_eq!(slow.len(), SLOW_EXEMPLAR_CAP);
        assert!(slow.windows(2).all(|w| w[0].duration >= w[1].duration));
        // Fast child spans never enter the exemplar log.
        let root = tracer.root("request");
        drop(tracer.child(root.ctx(), "inner"));
        drop(root);
        assert!(tracer.slow_exemplars().iter().all(|e| {
            let log = tracer.collect();
            log.name(e.name) == "request"
        }));
    }
}
