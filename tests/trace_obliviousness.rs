//! Trace obliviousness: tracing a private-mode query must not create a
//! side channel. `private_equivalence.rs` pins the scan-volume
//! invariant; this suite pins the *trace* invariant — the exported span
//! tree of a private query, after timestamp normalization
//! (`TraceLog::shape`), is structurally identical whichever owner is
//! probed: same span names, same counts, same tree shape, same payload
//! sizes. A trailing test checks the acceptance-level export: one
//! private query yields valid Chrome `trace_event` JSON whose span tree
//! covers client submit → scatter → both replicas' per-shard PIR scans
//! → gather → recombine.

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::core::rowstore::RowBackend;
use eppi::serve::{PrivateEngine, ServeConfig};
use eppi::telemetry::json::JsonValue;
use eppi::telemetry::Registry;
use eppi::trace::{chrome, TraceConfig, Tracer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_index(seed: u64, providers: usize, owners: usize, fill: u8) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = MembershipMatrix::new(providers, owners);
    let p = f64::from(fill.min(100)) / 100.0;
    for pr in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(p) {
                matrix.set(ProviderId(pr), OwnerId(o), true);
            }
        }
    }
    let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
    PublishedIndex::new(matrix, betas)
}

fn tracer() -> Tracer {
    Tracer::new(TraceConfig {
        capacity_per_thread: 4096,
        slow_threshold: None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole property: for any index shape and shard count, the
    /// normalized trace of a private single query is identical for
    /// every probed owner — first, last, arbitrary, and unknown.
    #[test]
    fn private_query_trace_is_owner_independent(
        seed in any::<u64>(),
        providers in 1usize..80,
        owners in 2usize..100,
        shards in 1usize..=6,
    ) {
        let index = random_index(seed, providers, owners, 25);
        let registry = Registry::new();
        let tracer = tracer();
        let engine = PrivateEngine::start_traced(
            &index,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
            &registry,
            tracer.clone(),
        );
        let mut client = engine.client(seed ^ 0x7ace);
        let probes = [
            OwnerId(0),
            OwnerId(owners as u32 - 1),
            OwnerId((seed % owners as u64) as u32),
            OwnerId(owners as u32 + 1_000), // unknown: null pair, same path
        ];
        for &o in &probes {
            client.query(o);
        }
        engine.shutdown();

        let log = tracer.collect();
        prop_assert_eq!(log.total_dropped(), 0, "ring sized for the workload");
        let traces = log.trace_ids();
        prop_assert_eq!(traces.len(), probes.len());
        let shapes: Vec<_> = traces
            .iter()
            .map(|&t| log.shape(t).expect("trace survived"))
            .collect();
        for (i, pair) in shapes.windows(2).enumerate() {
            prop_assert_eq!(
                &pair[0], &pair[1],
                "normalized traces differ between probe {} ({:?}) and probe {} ({:?}):\n{}\nvs\n{}",
                i, probes[i], i + 1, probes[i + 1],
                log.render(traces[i]), log.render(traces[i + 1])
            );
        }
    }

    /// Batched private queries of equal length are likewise trace-equal
    /// whatever owners (known, unknown, duplicated) fill the batch.
    #[test]
    fn private_batch_trace_depends_only_on_batch_length(
        seed in any::<u64>(),
        owners in 4usize..60,
        shards in 1usize..=4,
        batch_len in 1usize..6,
    ) {
        let index = random_index(seed, 30, owners, 30);
        let registry = Registry::new();
        let tracer = tracer();
        let engine = PrivateEngine::start_traced(
            &index,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
            &registry,
            tracer.clone(),
        );
        let mut client = engine.client(seed ^ 0xba7c);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b5e);
        let batches: Vec<Vec<OwnerId>> = (0..3)
            .map(|round| {
                (0..batch_len)
                    .map(|i| match (round, i) {
                        // Round 1 leads with an unknown owner, round 2
                        // duplicates its first owner throughout.
                        (1, 0) => OwnerId(owners as u32 + 99),
                        (2, _) => OwnerId(7 % owners as u32),
                        _ => OwnerId(rng.gen_range(0..owners as u32)),
                    })
                    .collect()
            })
            .collect();
        for batch in &batches {
            client.query_batch(batch);
        }
        engine.shutdown();

        let log = tracer.collect();
        let traces = log.trace_ids();
        prop_assert_eq!(traces.len(), batches.len());
        let shapes: Vec<_> = traces.iter().map(|&t| log.shape(t).unwrap()).collect();
        for pair in shapes.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "batch trace leaks batch contents");
        }
    }
}

/// Acceptance check: a single private query exports valid Chrome
/// `trace_event` JSON whose span tree covers the full private path on
/// both replicas.
#[test]
fn single_private_query_exports_complete_chrome_trace() {
    let shards = 3usize;
    let index = random_index(1234, 40, 64, 30);
    let registry = Registry::new();
    let tracer = tracer();
    let engine = PrivateEngine::start_traced(
        &index,
        ServeConfig {
            shards,
            queue_depth: 16,
            telemetry: true,
            backend: RowBackend::Dense,
        },
        &registry,
        tracer.clone(),
    );
    let mut client = engine.client(5);
    let plain = engine.replica_a().client();
    let answer = client.query(OwnerId(17));
    assert_eq!(
        answer,
        plain.query(OwnerId(17)),
        "tracing must not change answers"
    );
    engine.shutdown();

    let log = tracer.collect();
    // The plaintext cross-check above is traced too (serve.query); the
    // private trace is the one rooted at `private.query`.
    let trace = log
        .trace_ids()
        .into_iter()
        .find(|&t| log.span_tree(t).is_some_and(|n| n.name == "private.query"))
        .expect("private query trace");
    let tree = log.span_tree(trace).unwrap();

    // Client submit → scatter → both replicas' per-shard PirScan →
    // gather → recombine, all under one root.
    assert_eq!(tree.name, "private.query");
    assert_eq!(tree.count("pir.generate"), 1);
    assert_eq!(tree.count("pir.scatter"), 2, "one scatter per replica");
    assert_eq!(
        tree.count("pir.scan"),
        2 * shards,
        "every shard of both replicas"
    );
    assert_eq!(tree.count("pir.gather"), 2);
    assert_eq!(tree.count("pir.recombine"), 1);
    // The scans hang under the scatters, not directly under the root.
    for child in &tree.children {
        if child.name == "pir.scatter" {
            assert_eq!(child.count("pir.scan"), shards);
            assert_eq!(child.count("pir.gather"), 1);
        }
    }

    // The export is well-formed Chrome trace_event JSON with every
    // span of the tree present.
    let text = chrome::to_chrome_string(&log);
    let doc = JsonValue::parse(&text).expect("chrome export parses");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(JsonValue::as_str) == Some(name)
                    && e.get("args")
                        .and_then(|a| a.get("trace"))
                        .and_then(JsonValue::as_u64)
                        == Some(trace)
            })
            .count()
    };
    assert_eq!(count("private.query"), 1);
    assert_eq!(count("pir.scatter"), 2);
    assert_eq!(count("pir.scan"), 2 * shards);
    assert_eq!(count("pir.gather"), 2);
    assert_eq!(count("pir.recombine"), 1);
    for e in events {
        assert!(e.get("ph").is_some() && e.get("pid").is_some() && e.get("tid").is_some());
    }
}
