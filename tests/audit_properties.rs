//! Facade-level properties of the publication audit (`eppi-audit`):
//! completeness (honest certificates always verify, at paper scale),
//! soundness (every cheating-provider strategy is caught, with the
//! predicted per-repetition probability), and the zero-knowledge shape
//! check — opened views reveal nothing about unopened witness bits.

use eppi::attacks::{run_cheating_trial, serve_column, CheatStrategy, CheatingProvider};
use eppi::audit::{
    prove_column, verify_column, AuditParams, ColumnCommitment, ColumnStatement,
    DEFAULT_REPETITIONS,
};
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::protocol::{
    construct_epoch_audited, verify_commitments, verify_epoch, AuditConfig, ProtocolConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper-scale shape: m = 10 providers, n = 128 identities.
const PAPER_M: usize = 10;
const PAPER_N: usize = 128;

fn random_matrix(m: usize, n: usize, density: f64, seed: u64) -> MembershipMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mat = MembershipMatrix::new(m, n);
    for p in 0..m as u32 {
        for j in 0..n as u32 {
            if (rng.gen::<u64>() as f64 / u64::MAX as f64) < density {
                mat.set(ProviderId(p), OwnerId(j), true);
            }
        }
    }
    mat
}

fn words_for(owners: usize) -> usize {
    owners.div_ceil(64)
}

/// Completeness at full strength: every provider column of a
/// paper-scale epoch proves and verifies at the default 40
/// repetitions, and the bare commitments re-verify from public state.
#[test]
fn paper_scale_epoch_certifies_at_default_repetitions() {
    let mat = random_matrix(PAPER_M, PAPER_N, 0.3, 42);
    let epsilons: Vec<Epsilon> = (0..PAPER_N)
        .map(|j| Epsilon::new(0.2 + (j % 7) as f64 / 10.0).unwrap())
        .collect();
    let cfg = ProtocolConfig {
        seed: 0xa0d17,
        ..ProtocolConfig::default()
    };
    let audit = AuditConfig::default();
    assert_eq!(audit.params.repetitions, DEFAULT_REPETITIONS);

    let audited = construct_epoch_audited(&mat, &epsilons, &cfg, &audit).unwrap();
    assert_eq!(audited.certificates.len(), PAPER_M);
    verify_epoch(&audited.epoch, &audited.certificates, &audit).unwrap();
    verify_commitments(&audited.epoch, &audited.commitments()).unwrap();
}

/// One cheater of every strategy inside an honest paper-scale cohort:
/// each cheater is detected with its expected error kind, and no
/// honest provider is ever rejected.
#[test]
fn every_cheating_strategy_is_detected_at_paper_scale() {
    let mat = random_matrix(PAPER_M, PAPER_N, 0.25, 7);
    let betas: Vec<f64> = (0..PAPER_N).map(|j| 0.2 + (j % 6) as f64 / 10.0).collect();
    let cheaters = [
        CheatingProvider {
            provider: ProviderId(1),
            strategy: CheatStrategy::WrongBeta { claimed: 0.01 },
        },
        CheatingProvider {
            provider: ProviderId(3),
            strategy: CheatStrategy::StaleColumn { stale_seed: 999 },
        },
        CheatingProvider {
            provider: ProviderId(5),
            strategy: CheatStrategy::SelectiveDeflip { drop: 6 },
        },
        CheatingProvider {
            provider: ProviderId(8),
            strategy: CheatStrategy::ForgedView { drop: 6 },
        },
    ];
    let params = AuditParams {
        repetitions: DEFAULT_REPETITIONS,
    };
    let outcomes = run_cheating_trial(0xfeed, &betas, &mat, &cheaters, &params, 0x5eed);
    assert_eq!(outcomes.len(), PAPER_M);
    for o in &outcomes {
        assert!(
            !o.miscarriage(),
            "provider {:?}: cheated={:?} error={:?}",
            o.provider,
            o.cheated,
            o.error
        );
    }
    let kind = |p: u32| {
        outcomes
            .iter()
            .find(|o| o.provider == ProviderId(p))
            .and_then(|o| o.error.as_ref())
            .map(|e| e.kind())
    };
    assert_eq!(kind(1), Some("decisions_digest"), "wrong β commitment");
    assert_eq!(kind(3), Some("output_mismatch"), "stale coins");
    assert_eq!(kind(5), Some("output_mismatch"), "deflipped decoys");
    assert!(kind(8).is_some(), "forged view at 40 repetitions");
}

/// The forged-view cheat survives exactly the challenges that do not
/// recompute the rewritten party: detection probability 1/3 per
/// repetition. Measured over many independent Fiat–Shamir transcripts
/// at one repetition, with binomial-safe bounds around 1/3.
#[test]
fn forged_view_detection_rate_matches_one_third_per_repetition() {
    let mat = random_matrix(6, 64, 0.3, 21);
    let betas: Vec<f64> = vec![0.4; 64];
    let params = AuditParams { repetitions: 1 };
    let cheater = [CheatingProvider {
        provider: ProviderId(2),
        strategy: CheatStrategy::ForgedView { drop: 4 },
    }];
    let trials = 120;
    let mut detected = 0usize;
    for seed in 0..trials {
        let outcomes = run_cheating_trial(0xc0de, &betas, &mat, &cheater, &params, seed as u64);
        let o = outcomes
            .iter()
            .find(|o| o.provider == ProviderId(2))
            .unwrap();
        assert_eq!(o.cheated, Some("forged_view"));
        detected += usize::from(o.detected());
        // The honest cohort is never collateral damage.
        assert!(outcomes
            .iter()
            .filter(|o| o.cheated.is_none())
            .all(|o| !o.detected()));
    }
    // Binomial(120, 1/3): mean 40, σ ≈ 5.2 — accept ±4σ.
    assert!(
        (20..=61).contains(&detected),
        "forged view detected {detected}/{trials}, expected ≈ 1/3"
    );
}

/// Zero-knowledge shape check: the proof's structure (repetition
/// count, output lengths, opened AND-wire lengths) depends only on the
/// public statement shape, never on the witness; and the explicitly
/// opened witness-share words are one-time-padded — their bit
/// frequency is ≈ 1/2 whether the raw column is empty or full.
#[test]
fn opened_views_are_witness_independent() {
    let owners = PAPER_N;
    let nw = words_for(owners);
    let betas: Vec<f64> = vec![0.5; owners];
    let params = AuditParams { repetitions: 8 };
    let provider = ProviderId(4);

    let zero_raw = vec![0u64; nw];
    let full_raw = vec![u64::MAX >> (nw * 64 - owners); nw];

    let mut opened = [0usize; 2]; // reps that opened party 2, per world
    let mut ones = [0usize; 2]; // witness-share bits set, per world
    let mut bits = [0usize; 2]; // witness-share bits observed, per world
    for prover_seed in 0..80u64 {
        let mut shapes = Vec::new();
        for (w, raw) in [&zero_raw, &full_raw].into_iter().enumerate() {
            let (column, commitment, proof) =
                serve_column(0xbeef, provider, &betas, raw, None, &params, prover_seed);
            let stmt = ColumnStatement {
                epoch_seed: 0xbeef,
                provider,
                betas: &betas,
                published: &column,
            };
            verify_column(&stmt, &commitment, &proof, &params).unwrap();
            assert_eq!(
                commitment,
                ColumnCommitment::compute(0xbeef, provider, &betas, &column)
            );

            assert_eq!(proof.reps.len(), params.repetitions);
            for rep in &proof.reps {
                for y in &rep.outputs {
                    assert_eq!(y.len(), nw);
                }
                assert!(rep.witness_share.is_empty() || rep.witness_share.len() == nw);
                if !rep.witness_share.is_empty() {
                    opened[w] += 1;
                    for (i, &word) in rep.witness_share.iter().enumerate() {
                        let live = if i == nw - 1 && !owners.is_multiple_of(64) {
                            owners % 64
                        } else {
                            64
                        };
                        ones[w] += (word & (u64::MAX >> (64 - live))).count_ones() as usize;
                        bits[w] += live;
                    }
                }
            }
            // Shape fingerprint: everything length-like about the proof.
            shapes.push(
                proof
                    .reps
                    .iter()
                    .map(|r| (r.partner_ands.len(), r.outputs[0].len()))
                    .collect::<Vec<_>>(),
            );
        }
        // Same statement shape → same proof skeleton, whatever the witness.
        assert_eq!(shapes[0], shapes[1], "proof shape leaked the witness");
    }
    for w in 0..2 {
        let rate = ones[w] as f64 / bits[w] as f64;
        assert!(
            (rate - 0.5).abs() < 0.03,
            "opened witness shares biased in world {w}: {rate:.4} over {} bits",
            bits[w]
        );
        // Party 2 is in the opened pair for 2 of the 3 challenges.
        let open_rate = opened[w] as f64 / (80.0 * params.repetitions as f64);
        assert!(
            (open_rate - 2.0 / 3.0).abs() < 0.1,
            "challenge distribution skewed in world {w}: {open_rate:.3}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Completeness is unconditional: any matrix, β profile, epoch
    /// seed, and prover seed yields a certificate the auditor accepts.
    #[test]
    fn honest_certificates_always_verify(
        seed in any::<u64>(),
        prover_seed in any::<u64>(),
        density in 0.0f64..1.0,
        owners in 1usize..200,
        beta_base in 0.05f64..0.95,
    ) {
        let raw_mat = random_matrix(3, owners, density, seed);
        let betas: Vec<f64> = (0..owners)
            .map(|j| (beta_base + (j % 4) as f64 / 20.0).min(1.0))
            .collect();
        let params = AuditParams { repetitions: 5 };
        for p in 0..3u32 {
            let provider = ProviderId(p);
            let raw = raw_mat.row_words(provider);
            let (column, commitment, proof) =
                serve_column(seed, provider, &betas, raw, None, &params, prover_seed);
            let stmt = ColumnStatement {
                epoch_seed: seed,
                provider,
                betas: &betas,
                published: &column,
            };
            prop_assert!(verify_column(&stmt, &commitment, &proof, &params).is_ok());
            // Re-proving under a different seed verifies too: soundness
            // never hinges on a particular prover tape.
            let reproof = prove_column(&stmt, raw, &params, prover_seed ^ 0x1234_5678);
            prop_assert!(verify_column(&stmt, &commitment, &reproof, &params).is_ok());
        }
    }

    /// A commitment binds the served column: any single flipped cell in
    /// what the auditor reads makes the published digest fail.
    #[test]
    fn commitments_bind_every_served_cell(
        seed in any::<u64>(),
        owners in 1usize..150,
        flip in any::<u32>(),
    ) {
        let mat = random_matrix(1, owners, 0.4, seed);
        let betas: Vec<f64> = vec![0.35; owners];
        let provider = ProviderId(0);
        let params = AuditParams { repetitions: 1 };
        let (column, commitment, _) =
            serve_column(seed, provider, &betas, mat.row_words(provider), None, &params, 9);
        commitment.verify(seed, &betas, &column).unwrap();
        let mut tampered = column.clone();
        let j = flip as usize % owners;
        tampered[j / 64] ^= 1u64 << (j % 64);
        prop_assert!(commitment.verify(seed, &betas, &tampered).is_err());
    }
}
