//! Property-based tests of the private (XOR-PIR) serve mode: for any
//! random published index, the two-replica private client must answer
//! every owner — single and batched, known and unknown — bit-for-bit
//! like the plaintext serve path, and must keep doing so while delta
//! epochs install mid-stream. A final property pins the obliviousness
//! invariant: the servers' scan volume never depends on which owner a
//! query targets.

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::core::rowstore::RowBackend;
use eppi::index::server::PpiServer;
use eppi::serve::{PrivateEngine, ServeConfig};
use eppi::telemetry::Registry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random published index with `providers × owners` membership at
/// density `fill` (percent) and arbitrary βs.
fn random_index(seed: u64, providers: usize, owners: usize, fill: u8) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = MembershipMatrix::new(providers, owners);
    let p = f64::from(fill.min(100)) / 100.0;
    for pr in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(p) {
                matrix.set(ProviderId(pr), OwnerId(o), true);
            }
        }
    }
    let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
    PublishedIndex::new(matrix, betas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Acceptance property: private answers are bit-identical to the
    /// plaintext `PpiServer` for every owner, across shard counts,
    /// matrix shapes (incl. multi-word rows), and densities.
    #[test]
    fn private_query_equals_plaintext_query(
        seed in any::<u64>(),
        providers in 1usize..90,
        owners in 1usize..120,
        shards in 1usize..=8,
        fill in 0u8..=100,
    ) {
        let index = random_index(seed, providers, owners, fill);
        let server = PpiServer::new(index.clone());
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(
            &index,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
            &registry,
        );
        let mut client = engine.client(seed ^ 0x5eed);
        for o in 0..owners as u32 {
            prop_assert_eq!(client.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        // Batched, with duplicates and an unknown owner mixed in.
        let mut batch: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        batch.push(OwnerId(0));
        batch.push(OwnerId(owners as u32 + 7));
        let got = client.query_batch(&batch);
        prop_assert_eq!(&got[..owners], &server.query_batch(&batch[..owners])[..]);
        prop_assert_eq!(&got[owners], &server.query(OwnerId(0)));
        prop_assert!(got[owners + 1].is_empty(), "unknown owner must answer empty");
        engine.shutdown();
    }

    /// Delta epochs installing mid-stream never produce a wrong or torn
    /// private answer: after each install, the private client agrees
    /// with a plaintext server holding the same epoch, including for
    /// the appended owner that did not exist at start.
    #[test]
    fn private_answers_track_delta_installs(
        seed in any::<u64>(),
        shards in 1usize..=4,
        epochs in 1u32..=5,
    ) {
        let providers = 40usize;
        let owners = 30usize;
        let base = random_index(seed, providers, owners, 30);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(
            &base,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
            &registry,
        );
        let mut client = engine.client(seed ^ 0xde17a);

        let mut current = base;
        for e in 1..=epochs {
            // Each epoch flips one pre-existing owner and appends one.
            let appended = OwnerId((owners as u32) + e - 1);
            let touched_old = OwnerId(u64::from(e) as u32 % owners as u32);
            let mut matrix = current.matrix().clone();
            matrix.grow_owners(appended.index() + 1);
            let p = ProviderId(u64::from(e) as u32 % providers as u32);
            matrix.set(p, touched_old, !matrix.get(p, touched_old));
            matrix.set(p, appended, true);
            let mut betas = current.betas().to_vec();
            betas.push(0.4);
            current = PublishedIndex::new(matrix, betas);

            let installed = engine.apply_delta(&current, &[touched_old, appended]).unwrap();
            prop_assert_eq!(installed, u64::from(e));

            let server = PpiServer::new(current.clone());
            for o in 0..=appended.0 {
                prop_assert_eq!(
                    client.query(OwnerId(o)),
                    server.query(OwnerId(o)),
                    "epoch {} owner {}", e, o
                );
            }
        }
        engine.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Obliviousness: whatever owner a private query targets — first,
    /// last, arbitrary, or unknown — the servers scan exactly the same
    /// number of words. Neither replica's work depends on the secret.
    #[test]
    fn scan_volume_is_target_independent(
        seed in any::<u64>(),
        providers in 1usize..100,
        owners in 2usize..100,
        shards in 1usize..=6,
    ) {
        let index = random_index(seed, providers, owners, 25);
        let registry = Registry::new();
        let engine = PrivateEngine::start_with_registry(
            &index,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
            &registry,
        );
        let mut client = engine.client(seed ^ 0x0b5);
        let probes = [
            OwnerId(0),
            OwnerId(owners as u32 - 1),
            OwnerId((seed % owners as u64) as u32),
            OwnerId(owners as u32 + 1_000), // unknown
        ];
        let mut volumes = Vec::new();
        for &o in &probes {
            let before = engine.stats().pir_scanned_words();
            client.query(o);
            volumes.push(engine.stats().pir_scanned_words() - before);
        }
        prop_assert!(
            volumes.windows(2).all(|w| w[0] == w[1]),
            "scan volume leaks the target: {:?}", volumes
        );
        engine.shutdown();
    }
}
