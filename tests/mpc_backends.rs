//! The three circuit-evaluation backends — cleartext reference,
//! in-process GMW, threaded GMW — must agree bit-for-bit on arbitrary
//! circuits and inputs.

use eppi::mpc::builder::{to_bits, CircuitBuilder};
use eppi::mpc::circuit::{Circuit, InputLayout};
use eppi::mpc::circuits::{lambda_threshold, CountBelowCircuit, MixDecisionCircuit};
use eppi::mpc::field::Modulus;
use eppi::mpc::gmw;
use eppi::mpc::share::split;
use eppi::protocol::threaded_gmw::execute_threaded;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random-ish arithmetic circuit over three party words.
fn build_circuit(width: usize) -> (Circuit, InputLayout) {
    let mut cb = CircuitBuilder::new();
    let a = cb.input_word(width);
    let b = cb.input_word(width);
    let c = cb.input_word(width);
    let ab = cb.add_words_expand(&a, &b);
    let c_wide = cb.resize_word(&c, width + 1);
    let lt = cb.lt_words(&c_wide, &ab);
    let eq = cb.eq_words(&a, &c);
    let sum = cb.add_words(&b, &c);
    let bits = sum.bits().to_vec();
    let parity = bits
        .iter()
        .copied()
        .reduce(|x, y| cb.xor(x, y))
        .expect("non-empty word");
    let and_all = cb.and(lt, parity);
    let or_mix = cb.or(eq, and_all);
    (
        cb.finish(vec![lt, eq, parity, or_mix]),
        InputLayout::new(vec![width, width, width]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_agree_on_random_inputs(
        a in 0u64..256,
        b in 0u64..256,
        c in 0u64..256,
        seed in any::<u64>(),
    ) {
        let (circuit, layout) = build_circuit(8);
        let inputs = vec![to_bits(a, 8), to_bits(b, 8), to_bits(c, 8)];
        let clear = circuit.eval(&layout.flatten(&inputs));
        let mut rng = StdRng::seed_from_u64(seed);
        let (in_process, _) = gmw::execute(&circuit, &layout, &inputs, &mut rng);
        let (threaded, _) = execute_threaded(&circuit, &layout, &inputs, seed);
        prop_assert_eq!(&in_process, &clear);
        prop_assert_eq!(&threaded, &clear);
    }
}

#[test]
fn count_below_backends_agree_over_many_seeds() {
    let thresholds = [40u64, 90, 10, 70];
    let width = 9usize;
    let q = Modulus::pow2(width as u32);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let freqs: Vec<u64> = (0..4).map(|_| rng.gen_range(0..128)).collect();
        let cc = CountBelowCircuit::build(3, &thresholds, width);
        let mut per = vec![vec![0u64; 4]; 3];
        for (j, &f) in freqs.iter().enumerate() {
            let s = split(f, 3, q, &mut rng);
            for (k, &v) in s.values().iter().enumerate() {
                per[k][j] = v;
            }
        }
        let inputs: Vec<Vec<bool>> = per.iter().map(|s| cc.encode_party_input(s)).collect();
        let expect = freqs
            .iter()
            .zip(&thresholds)
            .filter(|(f, t)| f >= t)
            .count() as u64;

        let clear = cc.decode_count(&cc.circuit().eval(&cc.layout().flatten(&inputs)));
        let (gout, _) = gmw::execute(cc.circuit(), cc.layout(), &inputs, &mut rng);
        let (tout, _) = execute_threaded(cc.circuit(), cc.layout(), &inputs, seed);
        assert_eq!(clear, expect, "seed {seed}");
        assert_eq!(cc.decode_count(&gout), expect, "seed {seed}");
        assert_eq!(cc.decode_count(&tout), expect, "seed {seed}");
    }
}

#[test]
fn mix_decision_coin_is_unbiased_across_backends() {
    // λ = 0.5 with fresh coins per identity: both backends agree exactly
    // (same seed-derived coins) and the rate is near λ.
    let n = 200usize;
    let thresholds = vec![1000u64; n];
    let width = 11usize;
    let q = Modulus::pow2(width as u32);
    let k = 10usize;
    let mc = MixDecisionCircuit::build(2, &thresholds, width, k, lambda_threshold(0.5, k));
    let mut rng = StdRng::seed_from_u64(77);
    let mut per = vec![vec![0u64; n]; 2];
    for j in 0..n {
        let s = split(1, 2, q, &mut rng);
        for (shares, &v) in per.iter_mut().zip(s.values()) {
            shares[j] = v;
        }
    }
    let inputs: Vec<Vec<bool>> = per
        .iter()
        .map(|s| {
            let coins: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << k))).collect();
            mc.encode_party_input(s, &coins)
        })
        .collect();
    let clear = mc.circuit().eval(&mc.layout().flatten(&inputs));
    let (threaded, _) = execute_threaded(mc.circuit(), mc.layout(), &inputs, 5);
    assert_eq!(clear, threaded);
    let rate = clear.iter().filter(|&&b| b).count() as f64 / n as f64;
    assert!((rate - 0.5).abs() < 0.12, "coin rate {rate}");
}

#[test]
fn gmw_stats_track_circuit_structure() {
    let (circuit, layout) = build_circuit(8);
    let stats = circuit.stats();
    let inputs = vec![to_bits(1, 8), to_bits(2, 8), to_bits(3, 8)];
    let mut rng = StdRng::seed_from_u64(1);
    let (_, gstats) = gmw::execute(&circuit, &layout, &inputs, &mut rng);
    assert_eq!(gstats.triples_used, stats.and_gates);
    assert!(
        gstats.rounds >= stats.and_depth,
        "rounds cover every AND layer"
    );
}
