//! The whole deployment in one test: trusted-party-free distributed
//! construction → binary serialization → locator service on the decoded
//! index → full recall for searchers → attacker confidence bounded.

use eppi::attacks::evaluate::evaluate;
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::core::privacy::PrivacyDegree;
use eppi::index::access::{AccessPolicy, SearcherId};
use eppi::index::codec::{decode, encode};
use eppi::index::search::{LocatorService, ProviderEndpoint};
use eppi::index::server::PpiServer;
use eppi::index::store::LocalStore;
use eppi::protocol::construct::{construct_distributed, ProtocolConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROVIDERS: usize = 80;
const OWNERS: usize = 24;

fn build_network() -> (MembershipMatrix, Vec<Epsilon>) {
    let mut rng = StdRng::seed_from_u64(0xf00d);
    let matrix = eppi::workload::collections::pinned_cohorts(
        PROVIDERS,
        &[
            eppi::workload::collections::Cohort {
                owners: OWNERS - 1,
                frequency: 6,
            },
            // One common identity to exercise mixing end to end.
            eppi::workload::collections::Cohort {
                owners: 1,
                frequency: PROVIDERS,
            },
        ],
        &mut rng,
    );
    let epsilons = vec![Epsilon::saturating(0.7); OWNERS];
    (matrix, epsilons)
}

#[test]
fn distributed_construct_serialize_serve_search_attack() {
    let (matrix, epsilons) = build_network();

    // 1. Trusted-party-free construction (SecSumShare + coordinator MPC).
    let out = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            seed: 42,
            ..ProtocolConfig::default()
        },
    )
    .expect("distributed construction");
    assert_eq!(
        out.common_count, 1,
        "the planted common identity is detected"
    );

    // 2. Ship the index: encode → decode must be lossless.
    let bytes = encode(&out.index);
    let served = decode(&bytes).expect("index deserializes");
    assert_eq!(served, out.index);

    // 3. Stand up the locator service on the decoded index.
    let endpoints: Vec<ProviderEndpoint> = matrix
        .provider_ids()
        .map(|p| {
            let mut store = LocalStore::new(p);
            for owner in matrix.owner_ids() {
                if matrix.get(p, owner) {
                    store.delegate(owner, epsilons[owner.index()], format!("{owner}@{p}"));
                }
            }
            ProviderEndpoint {
                store,
                policy: AccessPolicy::Open,
            }
        })
        .collect();
    let service = LocatorService::new(PpiServer::new(served), endpoints);

    // 4. Every owner's records are fully retrievable (100% recall).
    for owner in matrix.owner_ids() {
        let outcome = service.search(SearcherId(7), owner);
        assert_eq!(
            outcome.true_hits,
            matrix.frequency(owner),
            "recall for {owner}"
        );
    }

    // 5. The public index bounds the attacker.
    let ev = evaluate(&matrix, &out.index, &epsilons, None, 0.95, 0.15);
    assert_eq!(ev.primary_degree, PrivacyDegree::EpsPrivate);
    assert!(
        ev.primary_mean_confidence <= 0.3 + 0.1,
        "mean confidence {} above 1 − ε with slack",
        ev.primary_mean_confidence
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let (matrix, epsilons) = build_network();
    let run = |seed| {
        let out = construct_distributed(
            &matrix,
            &epsilons,
            &ProtocolConfig {
                seed,
                ..ProtocolConfig::default()
            },
        )
        .expect("construction");
        encode(&out.index)
    };
    assert_eq!(run(7), run(7), "same seed ⇒ identical serialized index");
    assert_ne!(run(7), run(8), "different seed ⇒ different coin flips");
}

#[test]
fn common_identity_broadcasts_through_the_whole_stack() {
    let (matrix, epsilons) = build_network();
    let out = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            seed: 11,
            ..ProtocolConfig::default()
        },
    )
    .expect("construction");
    let common = OwnerId((OWNERS - 1) as u32);
    // β = 1 all the way to the query answer.
    assert_eq!(out.index.query(common).len(), PROVIDERS);
    // And its row gives the common-identity attacker nothing beyond the
    // mixing bound (precision measured at the evaluate level; here we
    // just confirm the row is indistinguishable from a broadcast row).
    assert!(out.index.betas()[common.index()] >= 1.0 - 1e-12);
    let _ = ProviderId(0);
}
