//! Property-based tests of the serving subsystem: the sharded layout
//! and the concurrent engine must answer `QueryPPI` bit-for-bit like
//! the plain `PpiServer`, and sharding must be a lossless transform of
//! the published index (shown via codec round-trips on reassembled
//! indexes).

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::index::codec;
use eppi::index::server::PpiServer;
use eppi::serve::{ServeConfig, ServeEngine, ShardedIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random published index with `providers × owners` membership at
/// density `fill` (percent) and arbitrary βs.
fn random_index(seed: u64, providers: usize, owners: usize, fill: u8) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = MembershipMatrix::new(providers, owners);
    let p = f64::from(fill.min(100)) / 100.0;
    for pr in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(p) {
                matrix.set(ProviderId(pr), OwnerId(o), true);
            }
        }
    }
    let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
    PublishedIndex::new(matrix, betas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance property: for random matrices and every shard count
    /// 1..=16, the sharded layout answers every owner bit-identically
    /// to the unsharded server.
    #[test]
    fn sharded_query_equals_server_query(
        seed in any::<u64>(),
        providers in 1usize..90,
        owners in 1usize..140,
        shards in 1usize..=16,
        fill in 0u8..=100,
    ) {
        let index = random_index(seed, providers, owners, fill);
        let server = PpiServer::new(index.clone());
        let sharded = ShardedIndex::from_index(&index, shards);
        for o in 0..owners as u32 {
            prop_assert_eq!(sharded.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        prop_assert_eq!(sharded.query_batch(&all), server.query_batch(&all));
    }

    /// The full engine (threads + channels) preserves the same
    /// bit-for-bit answers, single and batched.
    #[test]
    fn engine_query_equals_server_query(
        seed in any::<u64>(),
        providers in 1usize..60,
        owners in 1usize..80,
        shards in 1usize..=8,
    ) {
        let index = random_index(seed, providers, owners, 30);
        let server = PpiServer::new(index.clone());
        let engine =
            ServeEngine::start(&index, ServeConfig { shards, queue_depth: 16, telemetry: false });
        let client = engine.client();
        let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        for &o in &all {
            prop_assert_eq!(client.query(o), server.query(o));
        }
        prop_assert_eq!(client.query_batch(&all), server.query_batch(&all));
        engine.shutdown();
    }

    /// Shard-then-reassemble is the identity on published indexes, and
    /// the reassembled index survives a codec round-trip unchanged —
    /// i.e. sharding loses no published bit and no β.
    #[test]
    fn shard_reassemble_codec_roundtrip(
        seed in any::<u64>(),
        providers in 1usize..80,
        owners in 1usize..100,
        shards in 1usize..=16,
        fill in 0u8..=100,
    ) {
        let index = random_index(seed, providers, owners, fill);
        let reassembled = ShardedIndex::from_index(&index, shards).reassemble();
        prop_assert_eq!(&reassembled, &index);
        let decoded = codec::decode(&codec::encode(&reassembled)).unwrap();
        prop_assert_eq!(&decoded, &index);
    }
}
