//! Property-based tests of the serving subsystem: the sharded layout
//! and the concurrent engine must answer `QueryPPI` bit-for-bit like
//! the plain `PpiServer`, sharding must be a lossless transform of
//! the published index (shown via codec round-trips on reassembled
//! indexes), and the copy-on-write delta install path must equal a
//! from-scratch build while never blocking or tearing readers.

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::core::rowstore::RowBackend;
use eppi::index::codec;
use eppi::index::server::PpiServer;
use eppi::serve::{shard_of, ServeConfig, ServeEngine, ShardedIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A random published index with `providers × owners` membership at
/// density `fill` (percent) and arbitrary βs.
fn random_index(seed: u64, providers: usize, owners: usize, fill: u8) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = MembershipMatrix::new(providers, owners);
    let p = f64::from(fill.min(100)) / 100.0;
    for pr in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(p) {
                matrix.set(ProviderId(pr), OwnerId(o), true);
            }
        }
    }
    let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
    PublishedIndex::new(matrix, betas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance property: for random matrices and every shard count
    /// 1..=16, the sharded layout answers every owner bit-identically
    /// to the unsharded server.
    #[test]
    fn sharded_query_equals_server_query(
        seed in any::<u64>(),
        providers in 1usize..90,
        owners in 1usize..140,
        shards in 1usize..=16,
        fill in 0u8..=100,
    ) {
        let index = random_index(seed, providers, owners, fill);
        let server = PpiServer::new(index.clone());
        let sharded = ShardedIndex::from_index(&index, shards);
        for o in 0..owners as u32 {
            prop_assert_eq!(sharded.query(OwnerId(o)), server.query(OwnerId(o)));
        }
        let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        prop_assert_eq!(sharded.query_batch(&all), server.query_batch(&all));
    }

    /// The full engine (threads + channels) preserves the same
    /// bit-for-bit answers, single and batched.
    #[test]
    fn engine_query_equals_server_query(
        seed in any::<u64>(),
        providers in 1usize..60,
        owners in 1usize..80,
        shards in 1usize..=8,
        compressed in any::<bool>(),
    ) {
        let backend = if compressed { RowBackend::Compressed } else { RowBackend::Dense };
        let index = random_index(seed, providers, owners, 30);
        let server = PpiServer::new(index.clone());
        let engine = ServeEngine::start(
            &index,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend },
        );
        let client = engine.client();
        let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        for &o in &all {
            prop_assert_eq!(client.query(o), server.query(o));
        }
        prop_assert_eq!(client.query_batch(&all), server.query_batch(&all));
        engine.shutdown();
    }

    /// Shard-then-reassemble is the identity on published indexes, and
    /// the reassembled index survives a codec round-trip unchanged —
    /// i.e. sharding loses no published bit and no β.
    #[test]
    fn shard_reassemble_codec_roundtrip(
        seed in any::<u64>(),
        providers in 1usize..80,
        owners in 1usize..100,
        shards in 1usize..=16,
        fill in 0u8..=100,
    ) {
        let index = random_index(seed, providers, owners, fill);
        let reassembled = ShardedIndex::from_index(&index, shards).reassemble();
        prop_assert_eq!(&reassembled, &index);
        let decoded = codec::decode(&codec::encode(&reassembled)).unwrap();
        prop_assert_eq!(&decoded, &index);
    }

    /// Copy-on-write delta install: for a random change batch (churned
    /// plus appended owners), `apply_delta` equals a from-scratch build
    /// of the new index under the same frozen shard map, routes every
    /// appended owner to append shards (never rebuilding a clean base
    /// shard for growth), and physically shares the row storage of
    /// every shard the batch does not touch.
    #[test]
    fn apply_delta_equals_rebuild_and_shares_untouched_rows(
        seed in any::<u64>(),
        providers in 1usize..60,
        owners in 1usize..80,
        shards in 1usize..=8,
        added in 0usize..=5,
        compressed in any::<bool>(),
    ) {
        let backend = if compressed { RowBackend::Compressed } else { RowBackend::Dense };
        let base = random_index(seed, providers, owners, 35);
        let next = random_index(seed ^ 0xd1f, providers, owners + added, 35);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ea);
        // Touched = random pre-existing subset plus every appended owner.
        let mut touched: Vec<OwnerId> = (0..owners as u32)
            .map(OwnerId)
            .filter(|_| rng.gen_bool(0.3))
            .collect();
        touched.extend((owners as u32..(owners + added) as u32).map(OwnerId));
        // Splice: untouched columns keep their base bits (the delta
        // contract — only touched columns may differ).
        let mut matrix = next.matrix().clone();
        for o in (0..owners as u32).map(OwnerId) {
            if !touched.contains(&o) {
                for p in (0..providers as u32).map(ProviderId) {
                    matrix.set(p, o, base.matrix().get(p, o));
                }
            }
        }
        let mut betas = next.betas().to_vec();
        for o in (0..owners as u32).map(OwnerId) {
            if !touched.contains(&o) {
                betas[o.index()] = base.betas()[o.index()];
            }
        }
        let spliced = PublishedIndex::new(matrix, betas);

        let old = ShardedIndex::from_index_with(&base, shards, backend, 1);
        let applied = old.apply_delta(&spliced, &touched, 2).unwrap();
        // A from-scratch build under the *frozen* base shard map is
        // bit-identical; a fresh map would rehash the appended owners.
        let rebuilt = ShardedIndex::from_index_mapped(&spliced, old.shard_map(), backend, 2);
        prop_assert_eq!(&applied, &rebuilt);
        // Growth lands in append shards past the base ones.
        prop_assert_eq!(
            applied.shard_count(),
            shards + usize::from(added > 0),
            "appended owners must open append shards, not rehash"
        );

        // Only pre-existing touched owners dirty base shards; appended
        // owners live beyond them.
        let dirty: BTreeSet<usize> = touched
            .iter()
            .filter(|o| (o.0 as usize) < owners)
            .map(|&o| shard_of(o, shards))
            .collect();
        for s in 0..shards {
            prop_assert_eq!(
                applied.shares_rows_with(&old, s),
                !dirty.contains(&s),
                "shard {} sharing disagrees with the touched set", s
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Readers are never blocked or torn by delta installs: while a
    /// reader thread hammers the engine, a sequence of delta installs
    /// churns one owner. Untouched owners must answer bit-identically
    /// to the base index throughout; the churned owner must always
    /// answer with some installed epoch's row, never a mix.
    #[test]
    fn queries_flow_during_delta_installs(
        seed in any::<u64>(),
        shards in 1usize..=4,
    ) {
        let providers = 40usize;
        let owners = 24usize;
        let epochs = 6u32;
        let base = random_index(seed, providers, owners, 30);
        let hot = OwnerId(0);

        // Precompute the per-epoch indexes (only `hot` ever changes) and
        // the set of rows the hot owner may legally answer with.
        let mut versions = vec![base.clone()];
        for e in 1..=epochs {
            let prev = versions.last().unwrap();
            let mut matrix = prev.matrix().clone();
            let p = ProviderId(u64::from(e) as u32 % providers as u32);
            matrix.set(p, hot, !matrix.get(p, hot));
            versions.push(PublishedIndex::new(matrix, prev.betas().to_vec()));
        }
        let legal_hot: BTreeSet<Vec<ProviderId>> =
            versions.iter().map(|v| v.query(hot)).collect();

        let engine = Arc::new(ServeEngine::start(
            &base,
            ServeConfig { shards, queue_depth: 16, telemetry: false, backend: RowBackend::Dense },
        ));
        // The stats counters live in the process-global registry and
        // accumulate across proptest cases; measure this case's delta.
        let deltas_before = engine.stats().delta_refreshes();
        let server = PpiServer::new(base.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let server = server.clone();
            let legal_hot = legal_hot.clone();
            std::thread::spawn(move || {
                let client = engine.client();
                let cold: Vec<OwnerId> = (1..owners as u32).map(OwnerId).collect();
                while !stop.load(Ordering::Relaxed) {
                    for &o in &cold {
                        assert_eq!(client.query(o), server.query(o), "cold row changed");
                    }
                    assert!(
                        legal_hot.contains(&client.query(hot)),
                        "hot row torn: not any installed epoch's row"
                    );
                }
            })
        };
        for version in &versions[1..] {
            engine.apply_delta(version, &[hot]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().expect("reader thread");
        prop_assert_eq!(
            engine.stats().delta_refreshes() - deltas_before,
            u64::from(epochs)
        );
        prop_assert_eq!(engine.current().reassemble(), versions.last().unwrap().clone());
        engine.shutdown();
    }
}
