//! End-to-end integration: workload synthesis → ε-PPI construction →
//! locator-service search → attack evaluation, across crates.

use eppi::attacks::evaluate::evaluate;
use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::model::{Epsilon, OwnerId};
use eppi::core::policy::PolicyKind;
use eppi::core::privacy::{success_ratio, PrivacyDegree};
use eppi::index::access::{AccessPolicy, SearcherId};
use eppi::index::search::{LocatorService, ProviderEndpoint};
use eppi::index::server::PpiServer;
use eppi::index::store::LocalStore;
use eppi::workload::collections::{uniform_epsilons, CollectionTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

const PROVIDERS: usize = 800;
const OWNERS: usize = 400;

fn build_world() -> (
    eppi::core::model::MembershipMatrix,
    Vec<Epsilon>,
    eppi::core::construct::Construction,
) {
    let mut rng = StdRng::seed_from_u64(0xe2e);
    let matrix = CollectionTable::new(PROVIDERS, OWNERS)
        .zipf_exponent(1.0)
        .max_frequency(40)
        .build(&mut rng);
    let epsilons = uniform_epsilons(OWNERS, &mut rng);
    let built = construct(
        &matrix,
        &epsilons,
        ConstructionConfig {
            policy: PolicyKind::Chernoff { gamma: 0.9 },
            mixing: true,
        },
        &mut rng,
    )
    .expect("construction succeeds");
    (matrix, epsilons, built)
}

#[test]
fn search_has_full_recall_for_every_owner() {
    let (matrix, epsilons, built) = build_world();
    let endpoints: Vec<ProviderEndpoint> = matrix
        .provider_ids()
        .map(|p| {
            let mut store = LocalStore::new(p);
            for owner in matrix.owner_ids() {
                if matrix.get(p, owner) {
                    store.delegate(owner, epsilons[owner.index()], format!("{owner}@{p}"));
                }
            }
            ProviderEndpoint {
                store,
                policy: AccessPolicy::Open,
            }
        })
        .collect();
    let service = LocatorService::new(PpiServer::new(built.index.clone()), endpoints);

    for owner in matrix.owner_ids() {
        let outcome = service.search(SearcherId(1), owner);
        let want = matrix.frequency(owner);
        assert_eq!(outcome.true_hits, want, "recall for {owner}");
        assert_eq!(outcome.records.len(), want, "records for {owner}");
    }
}

#[test]
fn privacy_success_ratio_meets_gamma() {
    let (matrix, epsilons, built) = build_world();
    let ratio = success_ratio(&matrix, &built.index, &epsilons, true);
    assert!(
        ratio >= 0.88,
        "success ratio {ratio} below γ = 0.9 (with slack)"
    );
}

#[test]
fn attack_evaluation_classifies_eppi_as_private() {
    let (matrix, epsilons, built) = build_world();
    let ev = evaluate(&matrix, &built.index, &epsilons, None, 0.95, 0.15);
    assert_eq!(ev.primary_degree, PrivacyDegree::EpsPrivate);
    // With uniform ε and the average owner demanding ε = 0.5, the mean
    // attacker confidence must sit well below certainty.
    assert!(
        ev.primary_mean_confidence < 0.6,
        "{}",
        ev.primary_mean_confidence
    );
}

#[test]
fn denied_searchers_retrieve_nothing_anywhere() {
    let (matrix, epsilons, built) = build_world();
    let endpoints: Vec<ProviderEndpoint> = matrix
        .provider_ids()
        .map(|p| {
            let mut store = LocalStore::new(p);
            for owner in matrix.owner_ids() {
                if matrix.get(p, owner) {
                    store.delegate(owner, epsilons[owner.index()], "secret");
                }
            }
            ProviderEndpoint {
                store,
                policy: AccessPolicy::Deny,
            }
        })
        .collect();
    let service = LocatorService::new(PpiServer::new(built.index.clone()), endpoints);
    for owner in matrix.owner_ids().take(20) {
        let outcome = service.search(SearcherId(5), owner);
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.denied, outcome.providers_contacted);
    }
}

#[test]
fn epsilon_zero_owners_cost_nothing_extra() {
    let mut rng = StdRng::seed_from_u64(0xe20);
    let matrix = CollectionTable::new(300, 50)
        .max_frequency(10)
        .build(&mut rng);
    let epsilons = vec![Epsilon::ZERO; 50];
    let built = construct(&matrix, &epsilons, ConstructionConfig::default(), &mut rng)
        .expect("construction succeeds");
    for owner in matrix.owner_ids() {
        assert_eq!(
            built.index.query(owner).len(),
            matrix.frequency(owner),
            "ε = 0 must publish exactly the truth for {owner}"
        );
    }
}

#[test]
fn query_answer_grows_with_epsilon() {
    let mut rng = StdRng::seed_from_u64(0xe21);
    let matrix = CollectionTable::new(600, 40)
        .min_frequency(5)
        .max_frequency(5)
        .build(&mut rng);
    let sizes: Vec<f64> = [0.2, 0.5, 0.8]
        .iter()
        .map(|&e| {
            let eps = vec![Epsilon::saturating(e); 40];
            let mut rng = StdRng::seed_from_u64(0xbeef);
            let built = construct(&matrix, &eps, ConstructionConfig::default(), &mut rng)
                .expect("construction succeeds");
            (0..40u32)
                .map(|j| built.index.query(OwnerId(j)).len() as f64)
                .sum::<f64>()
                / 40.0
        })
        .collect();
    assert!(
        sizes[0] < sizes[1] && sizes[1] < sizes[2],
        "sizes {sizes:?} must grow with ε"
    );
}
