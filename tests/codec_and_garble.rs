//! Property tests for the index codec and the garbled-circuit backend.

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::index::codec::{decode, encode};
use eppi::mpc::builder::{to_bits, CircuitBuilder};
use eppi::mpc::garble::two_party_run;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Any index round-trips through the binary codec.
    #[test]
    fn codec_roundtrip(
        providers in 1usize..40,
        owners in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers {
            for o in 0..owners {
                if next() % 4 == 0 {
                    matrix.set(ProviderId(p as u32), OwnerId(o as u32), true);
                }
            }
        }
        let betas: Vec<f64> = (0..owners).map(|_| (next() % 1001) as f64 / 1000.0).collect();
        let index = PublishedIndex::new(matrix, betas);
        let bytes = encode(&index);
        let back = decode(&bytes).expect("roundtrip");
        prop_assert_eq!(back, index);
    }

    /// Decoding never panics on mutated/truncated bytes — it errors or
    /// yields some valid index.
    #[test]
    fn codec_is_panic_free_on_corruption(
        cut in 0usize..200,
        flip_at in 0usize..200,
        flip_with in any::<u8>(),
    ) {
        let mut matrix = MembershipMatrix::new(7, 9);
        matrix.set(ProviderId(2), OwnerId(3), true);
        let index = PublishedIndex::new(matrix, vec![0.5; 9]);
        let mut bytes = encode(&index);
        if flip_at < bytes.len() {
            bytes[flip_at] ^= flip_with;
        }
        let cut = cut.min(bytes.len());
        let _ = decode(&bytes[..cut]); // must not panic
        let _ = decode(&bytes);        // must not panic
    }

    /// The garbled evaluation of a random arithmetic circuit matches
    /// cleartext for arbitrary party inputs.
    #[test]
    fn garbled_matches_cleartext(
        a in 0u64..64,
        b in 0u64..64,
        seed in any::<u64>(),
    ) {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(6);
        let wb = cb.input_word(6);
        let prod = cb.mul_words(&wa, &wb);
        let bits = prod.bits().to_vec();
        let parity = bits.iter().copied().reduce(|x, y| cb.xor(x, y)).expect("bits");
        let lt = cb.lt_words(&wa, &wb);
        let circuit = cb.finish(vec![parity, lt]);

        let expect = circuit.eval(&{
            let mut v = to_bits(a, 6);
            v.extend(to_bits(b, 6));
            v
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let got = two_party_run(&circuit, &to_bits(a, 6), &to_bits(b, 6), &mut rng);
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn codec_scales_to_realistic_indexes() {
    // A 2,000 × 500 index: encode/decode under a second, exact match.
    let mut rng = StdRng::seed_from_u64(5);
    let matrix = eppi::workload::collections::CollectionTable::new(2000, 500)
        .max_frequency(40)
        .build(&mut rng);
    let betas = vec![0.1; 500];
    let index = PublishedIndex::new(matrix, betas);
    let bytes = encode(&index);
    assert_eq!(decode(&bytes).expect("roundtrip"), index);
    // Density check: 1M cells → 125 KB bitmap + 4 KB betas + header.
    assert!(
        bytes.len() < 140_000,
        "unexpected encoding size {}",
        bytes.len()
    );
}
