//! Property-based tests of the pluggable row storage (DESIGN.md §14):
//! the EWAH-style compressed store must be observationally identical
//! to the dense packed layout at every surface — raw row reads,
//! provider decoding, whole-store round-trips, sharded queries across
//! delta epochs — while staying inside its documented worst-case size
//! bound, and shard-map growth must append without rewriting (or
//! copying) any base shard in either backend.

use eppi::core::model::{MembershipMatrix, OwnerId, ProviderId, PublishedIndex};
use eppi::core::rows::row_words;
use eppi::core::rowstore::{CompressedRows, DenseRows, RowBackend, RowBlock, RowStore};
use eppi::serve::ShardedIndex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A slot-major dense word block with a mix of pathological rows:
/// all-zero, all-one, and random fills (the run/literal transitions
/// the compressed format has to get right).
fn random_block(seed: u64, providers: usize, rows: usize) -> Vec<u64> {
    let wpr = row_words(providers);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words = vec![0u64; rows * wpr];
    let tail_bits = providers % 64;
    for s in 0..rows {
        let row = &mut words[s * wpr..(s + 1) * wpr];
        match rng.gen_range(0..4u8) {
            0 => {} // all-zero: one empty-run marker
            1 => {
                // All-one within the provider universe.
                for w in row.iter_mut() {
                    *w = u64::MAX;
                }
            }
            2 => {
                // Sparse: a few scattered bits.
                for _ in 0..rng.gen_range(0usize..4) {
                    let p = rng.gen_range(0..providers);
                    row[p / 64] |= 1 << (p % 64);
                }
            }
            _ => {
                for w in row.iter_mut() {
                    *w = rng.gen();
                }
            }
        }
        // Keep bits inside the provider universe, as the membership
        // transpose guarantees.
        if tail_bits != 0 {
            row[wpr - 1] &= (1u64 << tail_bits) - 1;
        }
    }
    words
}

/// A random published index at the given fill percent.
fn random_index(seed: u64, providers: usize, owners: usize, fill: u8) -> PublishedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = MembershipMatrix::new(providers, owners);
    let p = f64::from(fill.min(100)) / 100.0;
    for pr in 0..providers as u32 {
        for o in 0..owners as u32 {
            if rng.gen_bool(p) {
                matrix.set(ProviderId(pr), OwnerId(o), true);
            }
        }
    }
    let betas: Vec<f64> = (0..owners).map(|_| rng.gen::<f64>()).collect();
    PublishedIndex::new(matrix, betas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compressed store is a lossless encoding of any dense block:
    /// every row reads back word-identical, decodes to the same
    /// provider list, the whole block round-trips, and the token
    /// stream never exceeds the documented 2× worst case.
    #[test]
    fn compressed_store_is_bit_identical_to_dense(
        seed in any::<u64>(),
        providers in 1usize..200,
        rows in 0usize..40,
    ) {
        let words = random_block(seed, providers, rows);
        let dense = DenseRows::from_words(words.clone(), providers);
        let compressed = CompressedRows::from_dense_words(&words, providers);

        prop_assert_eq!(compressed.rows(), rows);
        prop_assert_eq!(compressed.providers(), providers);
        prop_assert_eq!(compressed.words_per_row(), dense.words_per_row());

        let wpr = row_words(providers);
        let mut out = vec![0u64; wpr];
        for s in 0..rows {
            compressed.read_row_into(s, &mut out);
            prop_assert_eq!(&out[..], dense.row(s), "row {} words", s);
            prop_assert_eq!(
                compressed.providers_in_slot(s),
                dense.providers_in_slot(s),
                "row {} provider decode", s
            );
        }

        // Whole-block round-trip through the RowBlock facade.
        let block = RowBlock::build(RowBackend::Compressed, words.clone(), providers);
        prop_assert_eq!(block.backend(), RowBackend::Compressed);
        prop_assert!(block.as_dense().is_none());
        prop_assert_eq!(block.to_dense_words(), words.clone());

        // Worst-case bound: a row of w uncompressed words costs at
        // most one marker plus w literals, so the stream stays within
        // 2x the dense word count.
        prop_assert!(
            compressed.stream().len() <= 2 * words.len().max(rows),
            "stream {} tokens vs {} dense words", compressed.stream().len(), words.len()
        );
    }

    /// `from_parts` accepts exactly the (stream, offsets) pairs the
    /// encoder produces and rejects structural corruption of the
    /// offset table.
    #[test]
    fn from_parts_accepts_own_encoding_and_rejects_corruption(
        seed in any::<u64>(),
        providers in 1usize..120,
        rows in 1usize..24,
    ) {
        let words = random_block(seed, providers, rows);
        let compressed = CompressedRows::from_dense_words(&words, providers);
        let stream = compressed.stream().to_vec();
        let offsets = compressed.offsets().to_vec();

        let rebuilt = CompressedRows::from_parts(stream.clone(), offsets.clone(), providers)
            .expect("own parts must re-validate");
        prop_assert_eq!(&rebuilt, &compressed);

        // Offset table not ending at the stream length.
        let mut bad = offsets.clone();
        *bad.last_mut().unwrap() += 1;
        prop_assert!(CompressedRows::from_parts(stream.clone(), bad, providers).is_err());

        // Non-monotone offsets (needs at least one interior entry).
        if offsets.len() > 2 && offsets[1] < offsets[offsets.len() - 1] {
            let mut bad = offsets.clone();
            bad[1] = offsets[offsets.len() - 1] + 1;
            prop_assert!(CompressedRows::from_parts(stream.clone(), bad, providers).is_err());
        }

        // A truncated stream no longer covers the rows.
        if !stream.is_empty() {
            let short = stream[..stream.len() - 1].to_vec();
            prop_assert!(CompressedRows::from_parts(short, offsets, providers).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two backends are interchangeable at the query surface:
    /// identical single and batch answers on the base epoch and again
    /// after the same delta lands on both.
    #[test]
    fn backends_answer_identically_across_delta_epochs(
        seed in any::<u64>(),
        providers in 1usize..70,
        owners in 1usize..60,
        shards in 1usize..=6,
        added in 0usize..=4,
        fill in 0u8..=100,
    ) {
        let base = random_index(seed, providers, owners, fill);
        let dense = ShardedIndex::from_index_with(&base, shards, RowBackend::Dense, 1);
        let packed = ShardedIndex::from_index_with(&base, shards, RowBackend::Compressed, 1);
        let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
        for &o in &all {
            prop_assert_eq!(dense.query(o), packed.query(o));
        }
        prop_assert_eq!(dense.query_batch(&all), packed.query_batch(&all));

        // Grow by `added` owners and churn one pre-existing owner; the
        // same delta must keep the backends in lockstep.
        let grown = random_index(seed ^ 0x9e37, providers, owners + added, fill);
        let mut matrix = grown.matrix().clone();
        let mut betas = grown.betas().to_vec();
        let mut touched: Vec<OwnerId> =
            (owners as u32..(owners + added) as u32).map(OwnerId).collect();
        touched.push(OwnerId(0));
        for o in (1..owners as u32).map(OwnerId) {
            for p in (0..providers as u32).map(ProviderId) {
                matrix.set(p, o, base.matrix().get(p, o));
            }
            betas[o.index()] = base.betas()[o.index()];
        }
        let next = PublishedIndex::new(matrix, betas);

        let dense2 = dense.apply_delta(&next, &touched, 2).unwrap();
        let packed2 = packed.apply_delta(&next, &touched, 2).unwrap();
        let all2: Vec<OwnerId> = (0..(owners + added) as u32).map(OwnerId).collect();
        for &o in &all2 {
            prop_assert_eq!(dense2.query(o), packed2.query(o));
        }
        prop_assert_eq!(dense2.query_batch(&all2), packed2.query_batch(&all2));
        prop_assert_eq!(dense2.shard_count(), packed2.shard_count());
    }

    /// Pure growth (only appended owners touched) leaves every base
    /// shard physically shared with the old epoch — in both backends
    /// the install is an append, never a rewrite.
    #[test]
    fn pure_growth_shares_every_base_shard(
        seed in any::<u64>(),
        providers in 1usize..50,
        owners in 1usize..40,
        shards in 1usize..=6,
        added in 1usize..=6,
        compressed in any::<bool>(),
    ) {
        let backend = if compressed { RowBackend::Compressed } else { RowBackend::Dense };
        let base = random_index(seed, providers, owners, 40);
        let grown = random_index(seed ^ 0x51de, providers, owners + added, 40);
        // Splice so pre-existing columns are untouched (the delta
        // contract) and only the appended owners differ.
        let mut matrix = grown.matrix().clone();
        let mut betas = grown.betas().to_vec();
        for o in (0..owners as u32).map(OwnerId) {
            for p in (0..providers as u32).map(ProviderId) {
                matrix.set(p, o, base.matrix().get(p, o));
            }
            betas[o.index()] = base.betas()[o.index()];
        }
        let next = PublishedIndex::new(matrix, betas);
        let touched: Vec<OwnerId> =
            (owners as u32..(owners + added) as u32).map(OwnerId).collect();

        let old = ShardedIndex::from_index_with(&base, shards, backend, 1);
        let applied = old.apply_delta(&next, &touched, 2).unwrap();
        prop_assert_eq!(applied.shard_count(), shards + 1, "growth opens one append shard");
        for s in 0..shards {
            prop_assert!(
                applied.shares_rows_with(&old, s),
                "base shard {} was rewritten by a pure append", s
            );
        }
        // And the appended owners answer from the new epoch.
        for &o in &touched {
            prop_assert_eq!(applied.query(o), eppi::index::server::PpiServer::new(next.clone()).query(o));
        }
    }
}

/// At locator-network sparsity the compressed backend's resident
/// bytes are well under half the dense layout's — the deterministic
/// counterpart of the benchmark's memory gate.
#[test]
fn sparse_index_compresses_below_half_dense() {
    let providers = 5_000usize;
    let owners = 2_000usize;
    let mut rng = StdRng::seed_from_u64(0xc0_ffee);
    let mut matrix = MembershipMatrix::new(providers, owners);
    for o in 0..owners as u32 {
        for _ in 0..rng.gen_range(4usize..=16) {
            matrix.set(
                ProviderId(rng.gen_range(0..providers as u32)),
                OwnerId(o),
                true,
            );
        }
    }
    let index = PublishedIndex::new(matrix, vec![0.1; owners]);
    let dense = ShardedIndex::from_index_with(&index, 4, RowBackend::Dense, 1);
    let packed = ShardedIndex::from_index_with(&index, 4, RowBackend::Compressed, 1);
    let (d, c) = (dense.resident_bytes(), packed.resident_bytes());
    assert!(
        (c as f64) < 0.5 * d as f64,
        "compressed {c} bytes vs dense {d} bytes"
    );
    // Same answers, of course.
    let all: Vec<OwnerId> = (0..owners as u32).map(OwnerId).collect();
    assert_eq!(dense.query_batch(&all), packed.query_batch(&all));
}
