//! Property-based tests of the workspace invariants (proptest).

use eppi::core::construct::{construct, ConstructionConfig};
use eppi::core::mixing::lambda_for;
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::core::policy::{BasicPolicy, BetaPolicy, ChernoffPolicy, IncrementedPolicy, PolicyKind};
use eppi::core::privacy::owner_privacy;
use eppi::core::publish::publish_matrix;
use eppi::mpc::builder::{to_bits, word_value, CircuitBuilder};
use eppi::mpc::field::Modulus;
use eppi::mpc::share::{add_shares, recombine, split};
use eppi::workload::zipf::Zipf;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Theorem 4.1 recoverability: any (value, c, q) roundtrips.
    #[test]
    fn share_split_recombine_roundtrip(
        value in 0u64..1_000_000,
        c in 1usize..10,
        qbits in 1u32..40,
        seed in any::<u64>(),
    ) {
        let q = Modulus::pow2(qbits);
        let mut rng = StdRng::seed_from_u64(seed);
        let shares = split(value, c, q, &mut rng);
        prop_assert_eq!(recombine(&shares), value % q.value());
    }

    /// Additive homomorphism of the sharing scheme.
    #[test]
    fn share_addition_is_homomorphic(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        c in 1usize..8,
        seed in any::<u64>(),
    ) {
        let q = Modulus::pow2(24);
        let mut rng = StdRng::seed_from_u64(seed);
        let sa = split(a, c, q, &mut rng);
        let sb = split(b, c, q, &mut rng);
        prop_assert_eq!(recombine(&add_shares(&sa, &sb)), (a + b) % q.value());
    }

    /// The circuit adder implements u64 addition modulo 2^w.
    #[test]
    fn circuit_adder_matches_u64(a in any::<u16>(), b in any::<u16>()) {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(16);
        let wb = cb.input_word(16);
        let sum = cb.add_words(&wa, &wb);
        let exact = cb.add_words_expand(&wa, &wb);
        let mut outs = sum.bits().to_vec();
        outs.extend_from_slice(exact.bits());
        let circ = cb.finish(outs);
        let mut inputs = to_bits(a as u64, 16);
        inputs.extend(to_bits(b as u64, 16));
        let out = circ.eval(&inputs);
        prop_assert_eq!(word_value(&out[..16]), (a as u64 + b as u64) & 0xffff);
        prop_assert_eq!(word_value(&out[16..]), a as u64 + b as u64);
    }

    /// The circuit comparator implements u64 ordering.
    #[test]
    fn circuit_comparator_matches_u64(a in any::<u16>(), b in any::<u16>()) {
        let mut cb = CircuitBuilder::new();
        let wa = cb.input_word(16);
        let wb = cb.input_word(16);
        let lt = cb.lt_words(&wa, &wb);
        let ge = cb.ge_words(&wa, &wb);
        let eq = cb.eq_words(&wa, &wb);
        let circ = cb.finish(vec![lt, ge, eq]);
        let mut inputs = to_bits(a as u64, 16);
        inputs.extend(to_bits(b as u64, 16));
        let out = circ.eval(&inputs);
        prop_assert_eq!(out, vec![a < b, a >= b, a == b]);
    }

    /// β policies are clamped into [0, 1] and ordered:
    /// basic ≤ incremented and basic ≤ chernoff.
    #[test]
    fn beta_policy_ordering(
        sigma in 0.0f64..1.0,
        e in 0.0f64..1.0,
        m in 10usize..10_000,
    ) {
        let eps = Epsilon::saturating(e);
        let basic = BasicPolicy.beta(sigma, eps, m);
        let inc = IncrementedPolicy::new(0.02).unwrap().beta(sigma, eps, m);
        let chern = ChernoffPolicy::new(0.9).unwrap().beta(sigma, eps, m);
        prop_assert!((0.0..=1.0).contains(&basic));
        prop_assert!((0.0..=1.0).contains(&inc));
        prop_assert!((0.0..=1.0).contains(&chern));
        prop_assert!(basic <= inc + 1e-12);
        if sigma > 0.0 && e > 0.0 {
            prop_assert!(basic <= chern + 1e-12);
        }
    }

    /// Randomized publication never loses a true positive (100% recall,
    /// Eq. 2's truthful rule), for any β vector.
    #[test]
    fn publication_preserves_recall(
        seed in any::<u64>(),
        providers in 1usize..40,
        owners in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers {
            for j in 0..owners {
                if (p * 31 + j * 7 + seed as usize).is_multiple_of(3) {
                    matrix.set(ProviderId(p as u32), OwnerId(j as u32), true);
                }
            }
        }
        let betas: Vec<f64> = (0..owners).map(|j| j as f64 / owners as f64).collect();
        let published = publish_matrix(&matrix, &betas, &mut rng);
        for p in matrix.provider_ids() {
            for o in matrix.owner_ids() {
                if matrix.get(p, o) {
                    prop_assert!(published.matrix().get(p, o));
                }
            }
        }
    }

    /// λ of Eq. 7 is a probability and grows with both ξ and the common
    /// count.
    #[test]
    fn lambda_is_probability_and_monotone(
        commons in 0usize..50,
        extra in 1usize..1000,
        xi in 0.0f64..1.0,
    ) {
        let n = commons + extra;
        let l = lambda_for(commons, n, xi);
        prop_assert!((0.0..=1.0).contains(&l));
        let l_more_commons = lambda_for((commons + 1).min(n), n, xi);
        prop_assert!(l_more_commons + 1e-12 >= l);
        let l_more_xi = lambda_for(commons, n, (xi + 0.1).min(1.0));
        prop_assert!(l_more_xi + 1e-12 >= l);
    }

    /// Zipf pmf is a distribution for arbitrary parameters.
    #[test]
    fn zipf_pmf_is_distribution(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Construction accepts any consistent input and yields one β per
    /// owner, each in [0, 1].
    #[test]
    fn construction_yields_valid_betas(
        seed in any::<u64>(),
        providers in 2usize..60,
        owners in 1usize..8,
        e in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrix = MembershipMatrix::new(providers, owners);
        for p in 0..providers {
            for j in 0..owners {
                if (p + j * 3) % 4 == 0 {
                    matrix.set(ProviderId(p as u32), OwnerId(j as u32), true);
                }
            }
        }
        let epsilons = vec![Epsilon::saturating(e); owners];
        let built = construct(
            &matrix,
            &epsilons,
            ConstructionConfig { policy: PolicyKind::Basic, mixing: true },
            &mut rng,
        ).unwrap();
        prop_assert_eq!(built.index.betas().len(), owners);
        for &b in built.index.betas() {
            prop_assert!((0.0..=1.0).contains(&b));
        }
        // Published frequency never drops below the true frequency.
        for o in matrix.owner_ids() {
            let m = owner_privacy(&matrix, &built.index, o);
            prop_assert!(m.published_frequency >= m.true_frequency);
        }
    }
}
