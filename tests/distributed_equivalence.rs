//! The trusted-party-free protocol must compute exactly what the
//! trusted, centralized constructor computes — same common identities,
//! same β values for unmixed identities, same guarantees — while never
//! pooling the private vectors.

use eppi::core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::core::policy::{BetaPolicy, PolicyKind};
use eppi::core::privacy::success_ratio;
use eppi::mpc::field::Modulus;
use eppi::mpc::share::recombine_raw;
use eppi::net::sim::LinkModel;
use eppi::protocol::construct::{construct_distributed, frequency_thresholds, ProtocolConfig};
use eppi::protocol::countbelow::Backend;
use eppi::protocol::epoch::{construct_delta, construct_epoch};
use eppi::protocol::pure_mpc::{construct_pure_mpc, PureMpcConfig};
use eppi::protocol::secsum::secsumshare_sim;

fn eps(v: f64) -> Epsilon {
    Epsilon::saturating(v)
}

fn matrix_with_freqs(m: usize, freqs: &[usize]) -> MembershipMatrix {
    let mut mat = MembershipMatrix::new(m, freqs.len());
    for (j, &f) in freqs.iter().enumerate() {
        for p in 0..f {
            mat.set(
                ProviderId(((p * 7 + j) % m) as u32),
                OwnerId(j as u32),
                true,
            );
        }
    }
    mat
}

#[test]
fn secsum_reconstructs_frequencies_at_scale() {
    // A 2,000-provider network — the protocol must stay constant-round.
    let m = 2000usize;
    let freqs: Vec<usize> = (0..24).map(|j| (j * 83) % 600).collect();
    let matrix = matrix_with_freqs(m, &freqs);
    let vectors: Vec<_> = matrix.provider_ids().map(|p| matrix.row(p)).collect();
    let q = Modulus::pow2(16);
    let out = secsumshare_sim(&vectors, 3, q, LinkModel::LAN, 99);
    assert_eq!(out.stats.rounds, 2, "SecSumShare is constant-round");
    let truth = matrix.frequencies();
    for j in 0..24 {
        let parts: Vec<u64> = out.coordinator_shares.iter().map(|v| v[j]).collect();
        assert_eq!(recombine_raw(&parts, q), truth[j] as u64, "identity {j}");
    }
}

#[test]
fn distributed_count_matches_cleartext_threshold_count() {
    let m = 200usize;
    let freqs = vec![150usize, 120, 90, 30, 10, 190];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.5); 6];
    let policy = PolicyKind::Chernoff { gamma: 0.9 };

    let out = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            policy,
            seed: 3,
            ..ProtocolConfig::default()
        },
    )
    .expect("construction");

    // Ground truth: identities whose raw β* ≥ 1.
    let expected = matrix
        .owner_ids()
        .filter(|&o| policy.raw_beta(matrix.sigma(o), epsilons[o.index()], m) >= 1.0)
        .count() as u64;
    assert_eq!(out.common_count, expected);

    // And the MPC threshold agrees with the policy's σ'.
    let thresholds = frequency_thresholds(policy, &epsilons, m);
    let by_threshold = matrix
        .frequencies()
        .iter()
        .zip(&thresholds)
        .filter(|(&f, &t)| f as u64 >= t)
        .count() as u64;
    assert_eq!(out.common_count, by_threshold);
}

#[test]
fn distributed_betas_match_policy_for_unmixed_identities() {
    let m = 300usize;
    let freqs = vec![12usize, 40, 7, 90, 55];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.3), eps(0.5), eps(0.7), eps(0.2), eps(0.6)];
    for policy in [
        PolicyKind::Basic,
        PolicyKind::Incremented { delta: 0.02 },
        PolicyKind::Chernoff { gamma: 0.9 },
    ] {
        let out = construct_distributed(
            &matrix,
            &epsilons,
            &ProtocolConfig {
                policy,
                seed: 11,
                ..ProtocolConfig::default()
            },
        )
        .expect("construction");
        for owner in matrix.owner_ids() {
            let j = owner.index();
            if out.decisions[j] {
                assert_eq!(out.index.betas()[j], 1.0);
            } else {
                let expect = policy.beta(matrix.sigma(owner), epsilons[j], m);
                let got = out.index.betas()[j];
                assert!(
                    (got - expect).abs() < 1e-12,
                    "{}: identity {j} β {got} vs {expect}",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn distributed_construction_meets_epsilon_statistically() {
    let m = 700usize;
    let freqs = vec![35usize; 30];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.5); 30];
    let out = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            seed: 21,
            ..ProtocolConfig::default()
        },
    )
    .expect("construction");
    let ratio = success_ratio(&matrix, &out.index, &epsilons, true);
    assert!(ratio >= 0.85, "distributed success ratio {ratio}");
}

#[test]
fn pure_mpc_and_reduced_protocol_agree_on_commons_and_betas() {
    let m = 14usize;
    let freqs = vec![13usize, 4, 2];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.5); 3];
    let policy = PolicyKind::Basic;

    let reduced = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            policy,
            seed: 5,
            ..ProtocolConfig::default()
        },
    )
    .expect("reduced");
    let pure = construct_pure_mpc(
        &matrix,
        &epsilons,
        &PureMpcConfig {
            policy,
            seed: 5,
            lambda: reduced.lambda,
            ..PureMpcConfig::default()
        },
    )
    .expect("pure");

    assert_eq!(reduced.common_count, pure.common_count);
    for j in 0..3 {
        if !reduced.decisions[j] && !pure.decisions[j] {
            assert!(
                (reduced.index.betas()[j] - pure.index.betas()[j]).abs() < 1e-12,
                "identity {j}"
            );
        }
    }
}

#[test]
fn threaded_backend_matches_in_process_backend() {
    let m = 50usize;
    let freqs = vec![45usize, 10, 3];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.6); 3];
    let base = ProtocolConfig {
        seed: 9,
        ..ProtocolConfig::default()
    };
    let a = construct_distributed(&matrix, &epsilons, &base).expect("in-process");
    let b = construct_distributed(
        &matrix,
        &epsilons,
        &ProtocolConfig {
            backend: Backend::Threaded,
            ..base
        },
    )
    .expect("threaded");
    assert_eq!(a.common_count, b.common_count);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.index.betas(), b.index.betas());
    assert_eq!(a.index.matrix(), b.index.matrix());
}

/// The epoch lifecycle's delta path must compute exactly what a
/// from-scratch construction computes for the touched columns, while
/// carrying untouched columns over verbatim.
#[test]
fn delta_construction_reproduces_full_construction_columns() {
    let m = 80usize;
    let freqs = vec![60usize, 25, 8, 3, 70, 40];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.4), eps(0.6), eps(0.3), eps(0.8), eps(0.5), eps(0.7)];
    let config = ProtocolConfig {
        seed: 17,
        ..ProtocolConfig::default()
    };
    let epoch0 = construct_epoch(&matrix, &epsilons, &config).expect("epoch 0");

    // Churn owners 1 and 3, append owner 6.
    let new_freqs = vec![60usize, 31, 8, 1, 70, 40, 12];
    let next = matrix_with_freqs(m, &new_freqs);
    let mut next_eps = epsilons.clone();
    next_eps[1] = eps(0.9);
    next_eps.push(eps(0.5));
    let mut delta = IndexDelta::new(6);
    for (owner, change) in [
        (OwnerId(1), ColumnChange::Changed),
        (OwnerId(3), ColumnChange::Changed),
        (OwnerId(6), ColumnChange::Added),
    ] {
        delta.record(DeltaEntry {
            owner,
            change,
            epsilon: next_eps[owner.index()],
        });
    }

    let built = construct_delta(&epoch0, &next, &delta).expect("delta");
    let full = construct_distributed(&next, &next_eps, &config).expect("full");

    assert_eq!(built.epoch.common_count(), full.common_count);
    assert_eq!(built.report.epoch, 1);
    assert_eq!(built.report.columns, 3);
    for owner in next.owner_ids() {
        let j = owner.index();
        if delta.contains(owner) {
            assert_eq!(
                built.epoch.index().matrix().column_words(owner),
                full.index.matrix().column_words(owner),
                "touched owner {j} diverges from the from-scratch build"
            );
            assert_eq!(built.epoch.index().betas()[j], full.index.betas()[j]);
        } else {
            assert_eq!(
                built.epoch.index().matrix().column_words(owner),
                epoch0.index().matrix().column_words(owner),
                "untouched owner {j} was re-randomized"
            );
        }
    }
}

/// The secure stages of a delta run are sized by the change batch `k`
/// alone: growing the untouched owner population tenfold changes
/// neither the MPC circuits nor the SecSumShare message count.
#[test]
fn delta_cost_is_independent_of_untouched_owner_count() {
    let m = 60usize;
    let config = ProtocolConfig {
        seed: 29,
        ..ProtocolConfig::default()
    };
    let touched = [OwnerId(0), OwnerId(1), OwnerId(2)];

    let mut reports = Vec::new();
    for n in [12usize, 120] {
        let freqs: Vec<usize> = (0..n).map(|j| (j * 13) % 50 + 1).collect();
        let matrix = matrix_with_freqs(m, &freqs);
        let epsilons = vec![eps(0.5); n];
        let epoch0 = construct_epoch(&matrix, &epsilons, &config).expect("epoch 0");

        // The same three-column change batch in both networks.
        let mut new_freqs = freqs.clone();
        for o in touched {
            new_freqs[o.index()] = 20 + o.index();
        }
        let next = matrix_with_freqs(m, &new_freqs);
        let mut delta = IndexDelta::new(n);
        for o in touched {
            delta.record(DeltaEntry {
                owner: o,
                change: ColumnChange::Changed,
                epsilon: eps(0.5),
            });
        }
        let built = construct_delta(&epoch0, &next, &delta).expect("delta");
        assert_eq!(built.report.columns, touched.len());
        reports.push(built.report);
    }

    let (small, large) = (&reports[0], &reports[1]);
    assert_eq!(
        small.count_stage.circuit.total_gates, large.count_stage.circuit.total_gates,
        "CountBelow circuit must be sized by k, not n"
    );
    assert_eq!(
        small.mix_stage.circuit.total_gates, large.mix_stage.circuit.total_gates,
        "mix-decision circuit must be sized by k, not n"
    );
    assert_eq!(
        small.secsum.messages, large.secsum.messages,
        "SecSumShare messages depend on m and c only"
    );
}

#[test]
fn larger_collusion_tolerance_still_correct() {
    let m = 40usize;
    let freqs = vec![36usize, 8];
    let matrix = matrix_with_freqs(m, &freqs);
    let epsilons = vec![eps(0.5); 2];
    for c in [2usize, 3, 5, 8] {
        let out = construct_distributed(
            &matrix,
            &epsilons,
            &ProtocolConfig {
                c,
                seed: c as u64,
                ..ProtocolConfig::default()
            },
        )
        .expect("construction");
        assert_eq!(out.common_count, 1, "c = {c}");
        assert_eq!(
            out.index.query(OwnerId(0)).len(),
            m,
            "c = {c}: common broadcasts"
        );
    }
}
