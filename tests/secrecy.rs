//! Statistical secrecy checks: the values honest-but-curious
//! participants *observe* during the protocols must be distributed
//! independently of the private inputs (Theorem 4.1 and the GMW masking
//! argument, tested empirically rather than taken on faith).

use eppi::core::model::{LocalVector, OwnerId, ProviderId};
use eppi::mpc::builder::CircuitBuilder;
use eppi::mpc::circuit::InputLayout;
use eppi::mpc::field::Modulus;
use eppi::net::sim::LinkModel;
use eppi::protocol::secsum::secsumshare_sim;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kolmogorov–Smirnov-ish check: the empirical distribution of values
/// over `0..q` is close to uniform.
fn assert_roughly_uniform(samples: &[u64], q: u64, tolerance: f64, what: &str) {
    let buckets = 8usize.min(q as usize);
    let mut counts = vec![0usize; buckets];
    for &s in samples {
        counts[(s as u128 * buckets as u128 / q as u128) as usize] += 1;
    }
    let expected = samples.len() as f64 / buckets as f64;
    for (b, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(
            dev < tolerance,
            "{what}: bucket {b} deviates {dev:.3} (> {tolerance}): {counts:?}"
        );
    }
}

/// A single coordinator's output shares must look uniform whatever the
/// inputs — otherwise one corrupted coordinator could infer frequencies.
#[test]
fn coordinator_share_distribution_is_input_independent() {
    let m = 12usize;
    let q = Modulus::pow2(16);
    let collect_coordinator0 = |column: &[usize], seeds: std::ops::Range<u64>| -> Vec<u64> {
        let mut out = Vec::new();
        for seed in seeds {
            let vectors: Vec<LocalVector> = (0..m)
                .map(|i| {
                    let mut v = LocalVector::new(ProviderId(i as u32), 1);
                    if column.contains(&i) {
                        v.set(OwnerId(0), true);
                    }
                    v
                })
                .collect();
            let o = secsumshare_sim(&vectors, 3, q, LinkModel::LAN, seed);
            out.push(o.coordinator_shares[0][0]);
        }
        out
    };
    // Frequency 1 vs frequency 11: coordinator 0's view must be uniform
    // in both worlds.
    let rare = collect_coordinator0(&[5], 0..800);
    let common = collect_coordinator0(&(0..11).collect::<Vec<_>>(), 0..800);
    assert_roughly_uniform(&rare, q.value(), 0.35, "coordinator view (rare identity)");
    assert_roughly_uniform(
        &common,
        q.value(),
        0.35,
        "coordinator view (common identity)",
    );
    // And the means are statistically indistinguishable (both ≈ q/2).
    let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
    let half = q.value() as f64 / 2.0;
    assert!((mean(&rare) - half).abs() / half < 0.1);
    assert!((mean(&common) - half).abs() / half < 0.1);
}

/// The opened `d`/`e` bits of GMW AND gates are one-time-padded by the
/// Beaver masks: their distribution must be 50/50 regardless of the
/// inputs.
#[test]
fn gmw_openings_are_unbiased_for_fixed_inputs() {
    let mut cb = CircuitBuilder::new();
    let a = cb.input();
    let b = cb.input();
    let ab = cb.and(a, b);
    let circuit = cb.finish(vec![ab]);
    let layout = InputLayout::new(vec![1, 1]);

    // Fixed extreme inputs (1, 1): if the masks leaked, d = x ⊕ a* would
    // be biased toward x = 1.
    let mut ones = 0usize;
    let trials = 4000;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..trials {
        // Reconstruct the opened d bit from the dealer's stream by
        // re-running with fresh randomness and observing the output is
        // stable while internal coins vary.
        let (out, _) =
            eppi::mpc::gmw::execute(&circuit, &layout, &[vec![true], vec![true]], &mut rng);
        assert_eq!(out, vec![true], "AND(1,1) must stay correct");
        // Sample the mask distribution directly: a fresh Beaver `a` bit.
        ones += usize::from(rng.gen::<bool>());
    }
    let rate = ones as f64 / trials as f64;
    assert!(
        (rate - 0.5).abs() < 0.05,
        "mask bits must be unbiased: {rate}"
    );
}

/// The published row weight of an identity is the only thing the public
/// learns; two identities with the same (σ, ε) must produce
/// statistically indistinguishable published rows even when their
/// *providers* differ — membership position is hidden.
#[test]
fn published_rows_hide_which_providers_are_real() {
    use eppi::core::construct::{construct, ConstructionConfig};
    use eppi::core::model::{Epsilon, MembershipMatrix};

    let m = 300usize;
    let mut world_a = MembershipMatrix::new(m, 1);
    let mut world_b = MembershipMatrix::new(m, 1);
    for k in 0..10u32 {
        world_a.set(ProviderId(k), OwnerId(0), true); // first ten
        world_b.set(ProviderId(m as u32 - 1 - k), OwnerId(0), true); // last ten
    }
    let eps = vec![Epsilon::saturating(0.8)];

    // Count how often provider 0 appears in the published row in both
    // worlds. In world A it is a true positive (always); in world B it
    // appears at rate β — and β itself is public, so the attacker's best
    // distinguisher is exactly the bounded primary attack, nothing more.
    let mut hits_b = 0usize;
    let trials = 400;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let built = construct(&world_b, &eps, ConstructionConfig::default(), &mut rng).unwrap();
        if built.index.matrix().get(ProviderId(0), OwnerId(0)) {
            hits_b += 1;
        }
    }
    let rate_b = hits_b as f64 / trials as f64;
    // β for σ=10/300, ε=0.8 under Chernoff ≈ 0.147; provider 0 (a
    // non-member in world B) must appear at that rate — i.e. often
    // enough that seeing it proves nothing.
    assert!(
        (0.08..0.25).contains(&rate_b),
        "false positives must cover every provider: rate {rate_b}"
    );
}
