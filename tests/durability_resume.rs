//! End-to-end resume equivalence: a lineage driven through the
//! durability store with restarts (drop + recover) after every epoch
//! must be **bit-identical** to the same lineage run uninterrupted in
//! memory — across every MPC backend. This is the anti-intersection
//! invariant extended to crashes: recovery replays the journaled
//! constructions with the same deterministic coins, so an archiving
//! adversary learns nothing from a restart boundary.

use eppi::core::delta::{ColumnChange, DeltaEntry, IndexDelta};
use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
use eppi::durability::{encode_epoch, DurableStore};
use eppi::protocol::construct::construct_distributed_with_registry;
use eppi::protocol::{construct_delta, construct_epoch, Backend, ProtocolConfig};
use eppi::telemetry::Registry;
use std::path::PathBuf;

fn base_matrix() -> (MembershipMatrix, Vec<Epsilon>) {
    let mut matrix = MembershipMatrix::new(24, 6);
    for o in 0..6u32 {
        for p in 0..(2 + 3 * o) {
            matrix.set(ProviderId(p % 24), OwnerId(o), true);
        }
    }
    let epsilons = [0.3, 0.5, 0.7, 0.2, 0.9, 0.6]
        .iter()
        .map(|&v| Epsilon::new(v).unwrap())
        .collect();
    (matrix, epsilons)
}

/// A deterministic churn script: `(matrix after step i, delta i)`.
fn churn_script(mut matrix: MembershipMatrix, steps: u32) -> Vec<(MembershipMatrix, IndexDelta)> {
    (0..steps)
        .map(|step| {
            let owner = OwnerId(step % 6);
            let provider = ProviderId((step * 5 + 1) % 24);
            matrix.set(provider, owner, !matrix.get(provider, owner));
            let mut delta = IndexDelta::new(matrix.owners());
            delta.record(DeltaEntry {
                owner,
                change: ColumnChange::Changed,
                epsilon: Epsilon::new(0.45).unwrap(),
            });
            (matrix.clone(), delta)
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eppi-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the script uninterrupted and through a restart-after-every-
/// epoch store, comparing the serialized lineage byte for byte.
fn resume_matches_uninterrupted(backend: Backend, tag: &str) {
    let (matrix, epsilons) = base_matrix();
    let cfg = ProtocolConfig {
        seed: 2024,
        backend,
        ..ProtocolConfig::default()
    };
    let script = churn_script(matrix.clone(), 4);

    // Uninterrupted in-memory lineage.
    let epoch0 = construct_epoch(&matrix, &epsilons, &cfg).expect("epoch 0");
    let mut expected = vec![encode_epoch(&epoch0)];
    let mut live = epoch0.clone();
    for (m, d) in &script {
        live = construct_delta(&live, m, d)
            .expect("uninterrupted delta")
            .epoch;
        expected.push(encode_epoch(&live));
    }

    // The same lineage, but dropped and recovered before every epoch.
    let dir = tmp_dir(tag);
    let registry = Registry::new();
    drop(DurableStore::create_with_registry(&dir, &epoch0, &registry).expect("create"));
    for (i, (m, d)) in script.iter().enumerate() {
        let (mut store, recovery) =
            DurableStore::open_with_registry(&dir, &registry).expect("recover");
        assert_eq!(
            recovery.replayed, i,
            "every prior epoch replays from the log"
        );
        assert!(recovery.tail_defect.is_none());
        assert_eq!(
            encode_epoch(store.head()),
            expected[i],
            "backend {backend:?}: recovered epoch {i} diverged from the uninterrupted run"
        );
        let built = store
            .advance_with_registry(m, d, &registry)
            .expect("advance");
        assert_eq!(
            encode_epoch(&built.epoch),
            expected[i + 1],
            "backend {backend:?}: epoch {} diverged after resume",
            i + 1
        );
    }
    let (store, recovery) = DurableStore::open_with_registry(&dir, &registry).expect("final");
    assert_eq!(recovery.replayed, script.len());
    assert_eq!(encode_epoch(store.head()), expected[script.len()]);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_is_bit_identical_in_process() {
    resume_matches_uninterrupted(Backend::InProcess, "inproc");
}

#[test]
fn resume_is_bit_identical_threaded() {
    resume_matches_uninterrupted(Backend::Threaded, "threaded");
}

#[test]
fn resume_is_bit_identical_simulated() {
    resume_matches_uninterrupted(Backend::Simulated, "simulated");
}

/// The no-rebuild guarantee: advancing after a recovery runs the
/// O(k)-column incremental circuit, not a full reconstruction.
#[test]
fn post_recovery_advance_runs_the_delta_circuit_only() {
    let (matrix, epsilons) = base_matrix();
    let cfg = ProtocolConfig {
        seed: 77,
        ..ProtocolConfig::default()
    };
    let script = churn_script(matrix.clone(), 2);
    let dir = tmp_dir("gates");
    let registry = Registry::new();
    let epoch0 = construct_epoch(&matrix, &epsilons, &cfg).expect("epoch 0");
    let mut store = DurableStore::create_with_registry(&dir, &epoch0, &registry).expect("create");
    let (m0, d0) = &script[0];
    store
        .advance_with_registry(m0, d0, &registry)
        .expect("advance");
    drop(store);

    let (mut store, _) = DurableStore::open_with_registry(&dir, &registry).expect("recover");
    let (m1, d1) = &script[1];
    let built = store
        .advance_with_registry(m1, d1, &registry)
        .expect("advance");
    let full = construct_distributed_with_registry(m1, &epsilons, &cfg, &Registry::new())
        .expect("full rebuild");
    assert!(
        built.report.circuit_size() < full.report.circuit_size(),
        "post-recovery delta circuit ({}) must be smaller than a rebuild ({})",
        built.report.circuit_size(),
        full.report.circuit_size()
    );
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}
