//! # eppi — personalized privacy-preserving index for information networks
//!
//! A from-scratch Rust reproduction of *"ε-PPI: Locator Service in
//! Information Networks with Personalized Privacy Preservation"*
//! (Tang, Liu, Iyengar, Lee, Zhang — ICDCS 2014).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the ε-PPI computation model: β policies, identity
//!   mixing, randomized publication, privacy metrics.
//! * [`mpc`] — secure-computation substrate: additive secret sharing,
//!   Boolean circuits, a GMW-style MPC engine (the FairplayMP stand-in).
//! * [`net`] — simulated and threaded provider-network runtimes.
//! * [`protocol`] — the trusted-party-free two-phase construction
//!   protocol (SecSumShare + CountBelow) and the pure-MPC baseline.
//! * [`index`] — the locator service: `QueryPPI` + `AuthSearch`.
//! * [`baselines`] — grouping PPI and SS-PPI comparators.
//! * [`attacks`] — the primary and common-identity attacks, privacy
//!   evaluation, and the cheating-provider models exercised against the
//!   publication audit.
//! * [`audit`] — verifiable publication: hash commitments over served
//!   columns plus ZKBoo-style MPC-in-the-head proofs that each
//!   published cell follows the committed β flip rule.
//! * [`workload`] — synthetic information-network workloads.
//! * [`serve`] — the serving front-end: sharded index layout, a
//!   worker-per-shard concurrent query engine, lock-free snapshot
//!   refresh for re-publication, and the two-replica private
//!   (XOR-PIR) serve mode.
//! * [`pir`] — the information-theoretic 2-server PIR primitives the
//!   private serve mode is built on: selection vectors, query-pair
//!   generation, and branchless oblivious XOR-scan kernels.
//! * [`durability`] — the crash-safe epoch lineage store: write-ahead
//!   delta log, atomic checkpoints, warm recovery and re-anchoring.
//! * [`telemetry`] — the workspace-wide metrics layer: lock-free
//!   counters/gauges, mergeable log-linear histograms with per-thread
//!   recorders, span timers, and a labeled registry with text/JSON
//!   exporters.
//! * [`trace`] — causal span tracing: request-scoped trace ids over
//!   per-thread ring buffers, cross-thread propagation through serve
//!   jobs / transports / recovery, and text + Chrome `trace_event`
//!   exporters with a trace-obliviousness guarantee in private mode.
//!
//! See `examples/quickstart.rs` for a guided tour, and the `eppi-bench`
//! crate for the binaries that regenerate every table and figure of the
//! paper.
//!
//! ```
//! use eppi::core::construct::{construct, ConstructionConfig};
//! use eppi::core::model::{Epsilon, MembershipMatrix, OwnerId, ProviderId};
//! use rand::SeedableRng;
//!
//! let mut m = MembershipMatrix::new(100, 1);
//! m.set(ProviderId(7), OwnerId(0), true);
//! let eps = vec![Epsilon::new(0.9)?];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let built = construct(&m, &eps, ConstructionConfig::default(), &mut rng)?;
//! // The one true provider hides among at least nine false positives.
//! assert!(built.index.query(OwnerId(0)).len() >= 10);
//! # Ok::<(), eppi::core::error::EppiError>(())
//! ```

#![warn(missing_docs)]

pub use eppi_attacks as attacks;
pub use eppi_audit as audit;
pub use eppi_baselines as baselines;
pub use eppi_core as core;
pub use eppi_durability as durability;
pub use eppi_index as index;
pub use eppi_mpc as mpc;
pub use eppi_net as net;
pub use eppi_pir as pir;
pub use eppi_protocol as protocol;
pub use eppi_serve as serve;
pub use eppi_telemetry as telemetry;
pub use eppi_trace as trace;
pub use eppi_workload as workload;
